"""Instance-based constraints (``R_I``): properties of group instances.

An *instance* of a group is one per-trace occurrence of the group's
classes (cf. :mod:`repro.core.instances`).  These constraints require a
pass over the event log and are therefore checked after class-based
ones.  Table II's catalog is covered:

* aggregates over event attributes per instance (sum / avg / min / max /
  count / distinct) with lower or upper thresholds,
* instance duration and consecutive-event gaps,
* per-class cardinalities within an instance,
* loose variants via :class:`repro.constraints.base.AtLeastFraction`.

The paper's experimental sets map directly: **A** is
``MaxDistinctInstanceAttribute("org:role", 3)``, **M** is
``MinInstanceAggregate("duration", "sum", 101)``, **N** is
``MaxInstanceAggregate("duration", "avg", 5e5)``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.constraints import aggregates
from repro.constraints.base import InstanceConstraint, Monotonicity
from repro.eventlog.events import Event
from repro.exceptions import ConstraintError

_LOWER_IS_MONOTONIC = ("sum", "count", "distinct", "max")


class MinInstanceAggregate(InstanceConstraint):
    """``agg(instance.key) >= threshold`` for every instance.

    For non-decreasing aggregates (``sum`` of non-negative values,
    ``count``, ``distinct``, ``max``) a lower bound is monotonic: adding
    classes adds events, which can only raise the aggregate.  For
    ``avg`` and ``min`` the constraint is non-monotonic (Table II).
    Instances without a carrier of the attribute are skipped (vacuous).
    """

    def __init__(self, key: str, how: str, threshold: float):
        if how not in aggregates.SUPPORTED_AGGREGATES:
            raise ConstraintError(f"unsupported aggregate {how!r}")
        self.key = key
        self.how = how
        self.threshold = float(threshold)
        if how in _LOWER_IS_MONOTONIC:
            self.monotonicity = Monotonicity.MONOTONIC
        else:
            self.monotonicity = Monotonicity.NON_MONOTONIC

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        value = aggregates.aggregate(instance, self.key, self.how)
        if value is None:
            return True
        return value >= self.threshold

    def describe(self) -> str:
        return f"{self.how}(g.{self.key}) >= {self.threshold:g}"


class MaxInstanceAggregate(InstanceConstraint):
    """``agg(instance.key) <= threshold`` for every instance.

    Upper bounds on non-decreasing aggregates are anti-monotonic (e.g.
    Table II's "the cost of a group instance must be at most 500$"),
    whereas upper bounds on ``avg``/``min`` are non-monotonic (Table
    II's average-duration example).
    """

    def __init__(self, key: str, how: str, threshold: float):
        if how not in aggregates.SUPPORTED_AGGREGATES:
            raise ConstraintError(f"unsupported aggregate {how!r}")
        self.key = key
        self.how = how
        self.threshold = float(threshold)
        if how in _LOWER_IS_MONOTONIC:
            self.monotonicity = Monotonicity.ANTI_MONOTONIC
        else:
            self.monotonicity = Monotonicity.NON_MONOTONIC

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        value = aggregates.aggregate(instance, self.key, self.how)
        if value is None:
            return True
        return value <= self.threshold

    def describe(self) -> str:
        return f"{self.how}(g.{self.key}) <= {self.threshold:g}"


class MaxDistinctInstanceAttribute(InstanceConstraint):
    """At most ``bound`` distinct values of ``key`` per instance.

    The paper's constraint set **A** (``|g.role| <= 3``) is this with
    ``key="org:role"``, ``bound=3``.  Anti-monotonic.
    """

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, key: str, bound: int):
        if bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {bound}")
        self.key = key
        self.bound = bound

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        return len(aggregates.distinct_values(instance, self.key)) <= self.bound

    def describe(self) -> str:
        return f"|g.{self.key}| <= {self.bound}"


class MinDistinctInstanceAttribute(InstanceConstraint):
    """At least ``bound`` distinct values of ``key`` per instance (monotonic).

    Table II: "at least 2 distinct document codes must be associated
    with a group instance".
    """

    monotonicity = Monotonicity.MONOTONIC

    def __init__(self, key: str, bound: int):
        if bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {bound}")
        self.key = key
        self.bound = bound

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        return len(aggregates.distinct_values(instance, self.key)) >= self.bound

    def describe(self) -> str:
        return f"|g.{self.key}| >= {self.bound}"


class MaxInstanceDuration(InstanceConstraint):
    """Every instance spans at most ``seconds`` of wall-clock time.

    Anti-monotonic: adding classes can only widen an instance's span.
    Instances with fewer than two timestamps are vacuously satisfied.
    """

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ConstraintError(f"duration bound must be >= 0, got {seconds}")
        self.seconds = float(seconds)

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        duration = aggregates.instance_duration_seconds(instance)
        if duration is None:
            return True
        return duration <= self.seconds

    def describe(self) -> str:
        return f"duration(instance) <= {self.seconds:g}s"


class MinInstanceDuration(InstanceConstraint):
    """Every instance spans at least ``seconds`` (monotonic)."""

    monotonicity = Monotonicity.MONOTONIC

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ConstraintError(f"duration bound must be >= 0, got {seconds}")
        self.seconds = float(seconds)

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        duration = aggregates.instance_duration_seconds(instance)
        if duration is None:
            return True
        return duration >= self.seconds

    def describe(self) -> str:
        return f"duration(instance) >= {self.seconds:g}s"


class MaxConsecutiveGap(InstanceConstraint):
    """Consecutive events within an instance are at most ``seconds`` apart.

    Table II: "the time between consecutive events in a group instance
    must at most be 10 minutes" is ``MaxConsecutiveGap(600)``.
    Anti-monotonic.
    """

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ConstraintError(f"gap bound must be >= 0, got {seconds}")
        self.seconds = float(seconds)

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        gap = aggregates.max_gap_seconds(instance)
        if gap is None:
            return True
        return gap <= self.seconds

    def describe(self) -> str:
        return f"gap(consecutive events) <= {self.seconds:g}s"


class MaxEventsPerClass(InstanceConstraint):
    """Each instance contains at most ``bound`` events per event class.

    Table II's last cardinality example with ``bound=1``.  Anti-monotonic
    in the sense used by the paper: splitting policies aside, adding
    classes never reduces per-class multiplicity.
    """

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, bound: int):
        if bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {bound}")
        self.bound = bound

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        counts = aggregates.events_per_class(instance)
        return all(count <= self.bound for count in counts.values())

    def describe(self) -> str:
        return f"instance contains <= {self.bound} events per class"


class MinEventsPerClass(InstanceConstraint):
    """Each instance contains at least ``bound`` events of every group class.

    Expresses cardinality requirements such as "each group instance
    should contain at least 2 events of a particular event class"
    (paper §IV-A).  Classes of the group missing from the instance count
    as zero.  Monotonic is *not* claimed — adding a class to the group
    adds a new zero-count requirement — so this is non-monotonic.
    """

    monotonicity = Monotonicity.NON_MONOTONIC

    def __init__(self, bound: int, classes: Sequence[str] | None = None):
        if bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {bound}")
        self.bound = bound
        self.classes = frozenset(classes) if classes is not None else None

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        counts = aggregates.events_per_class(instance)
        targets = self.classes & group if self.classes is not None else group
        return all(counts.get(cls, 0) >= self.bound for cls in targets)

    def describe(self) -> str:
        scope = "every group class" if self.classes is None else f"classes {sorted(self.classes)}"
        return f"instance contains >= {self.bound} events of {scope}"
