"""Constraint framework: the paper's R_G, R_C and R_I constraint types."""

from repro.constraints.base import (
    AtLeastFraction,
    Category,
    CheckingMode,
    ClassConstraint,
    Constraint,
    GroupingConstraint,
    InstanceConstraint,
    Monotonicity,
    infer_checking_mode,
)
from repro.constraints.classbased import (
    CannotLink,
    MaxDistinctClassAttribute,
    MaxGroupSize,
    MinDistinctClassAttribute,
    MinGroupSize,
    MustLink,
    RequiredClasses,
)
from repro.constraints.grouping import ExactGroups, MaxGroups, MinGroups
from repro.constraints.instancebased import (
    MaxConsecutiveGap,
    MaxDistinctInstanceAttribute,
    MaxEventsPerClass,
    MaxInstanceAggregate,
    MaxInstanceDuration,
    MinDistinctInstanceAttribute,
    MinEventsPerClass,
    MinInstanceAggregate,
    MinInstanceDuration,
)
from repro.constraints.parser import (
    known_constraint_types,
    parse_constraint,
    parse_constraints,
)
from repro.constraints.suggestion import Suggestion, suggest_constraints
from repro.constraints.sets import (
    ClassAttributeView,
    ConstraintSet,
    InfeasibilityReport,
    class_attribute_view,
)

__all__ = [
    "AtLeastFraction",
    "Category",
    "CheckingMode",
    "ClassConstraint",
    "Constraint",
    "GroupingConstraint",
    "InstanceConstraint",
    "Monotonicity",
    "infer_checking_mode",
    "CannotLink",
    "MaxDistinctClassAttribute",
    "MaxGroupSize",
    "MinDistinctClassAttribute",
    "MinGroupSize",
    "MustLink",
    "RequiredClasses",
    "ExactGroups",
    "MaxGroups",
    "MinGroups",
    "MaxConsecutiveGap",
    "MaxDistinctInstanceAttribute",
    "MaxEventsPerClass",
    "MaxInstanceAggregate",
    "MaxInstanceDuration",
    "MinDistinctInstanceAttribute",
    "MinEventsPerClass",
    "MinInstanceAggregate",
    "MinInstanceDuration",
    "known_constraint_types",
    "parse_constraint",
    "parse_constraints",
    "Suggestion",
    "suggest_constraints",
    "ClassAttributeView",
    "ConstraintSet",
    "InfeasibilityReport",
    "class_attribute_view",
]
