"""Grouping constraints (``R_G``): bounds on the number of groups.

These constraints are not checked per candidate group; they become
cardinality side-constraints of the Step-2 MIP (paper Eq. 5).
"""

from __future__ import annotations

from repro.constraints.base import GroupingConstraint, Monotonicity
from repro.exceptions import ConstraintError


class MaxGroups(GroupingConstraint):
    """There may be at most ``bound`` groups in the final grouping."""

    monotonicity = Monotonicity.NON_MONOTONIC  # n/a per Table II

    def __init__(self, bound: int):
        if bound < 1:
            raise ConstraintError(f"MaxGroups bound must be >= 1, got {bound}")
        self.bound = bound

    def check(self, num_groups: int) -> bool:
        return num_groups <= self.bound

    @property
    def max_groups(self) -> int:
        return self.bound

    def describe(self) -> str:
        return f"|G| <= {self.bound}"


class MinGroups(GroupingConstraint):
    """There must be at least ``bound`` groups in the final grouping."""

    monotonicity = Monotonicity.NON_MONOTONIC  # n/a per Table II

    def __init__(self, bound: int):
        if bound < 1:
            raise ConstraintError(f"MinGroups bound must be >= 1, got {bound}")
        self.bound = bound

    def check(self, num_groups: int) -> bool:
        return num_groups >= self.bound

    @property
    def min_groups(self) -> int:
        return self.bound

    def describe(self) -> str:
        return f"|G| >= {self.bound}"


class ExactGroups(GroupingConstraint):
    """There must be exactly ``count`` groups (used by baseline BL4).

    The paper's BL4 constraint ``|G| = |C_L| / 2`` halves the number of
    event classes; at library level it is simply an exact cardinality.
    """

    monotonicity = Monotonicity.NON_MONOTONIC

    def __init__(self, count: int):
        if count < 1:
            raise ConstraintError(f"ExactGroups count must be >= 1, got {count}")
        self.count = count

    def check(self, num_groups: int) -> bool:
        return num_groups == self.count

    @property
    def max_groups(self) -> int:
        return self.count

    @property
    def min_groups(self) -> int:
        return self.count

    def describe(self) -> str:
        return f"|G| = {self.count}"
