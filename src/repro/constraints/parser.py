"""Declarative constraint specifications (JSON-friendly dictionaries).

The CLI — and any user who prefers configuration files over code —
describes constraints as a list of dictionaries::

    [
        {"type": "max_group_size", "bound": 8},
        {"type": "max_distinct_class_attribute", "key": "origin", "bound": 1},
        {"type": "max_instance_aggregate", "key": "cost", "how": "sum",
         "threshold": 500, "fraction": 0.95}
    ]

``fraction`` wraps an instance constraint into the loose
:class:`~repro.constraints.base.AtLeastFraction` form.  Unknown types
or missing fields raise :class:`~repro.exceptions.ConstraintError` with
the offending specification in the message.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.constraints.base import AtLeastFraction, Constraint, InstanceConstraint
from repro.constraints.classbased import (
    CannotLink,
    MaxDistinctClassAttribute,
    MaxGroupSize,
    MinDistinctClassAttribute,
    MinGroupSize,
    MustLink,
    RequiredClasses,
)
from repro.constraints.grouping import ExactGroups, MaxGroups, MinGroups
from repro.constraints.instancebased import (
    MaxConsecutiveGap,
    MaxDistinctInstanceAttribute,
    MaxEventsPerClass,
    MaxInstanceAggregate,
    MaxInstanceDuration,
    MinDistinctInstanceAttribute,
    MinEventsPerClass,
    MinInstanceAggregate,
    MinInstanceDuration,
)
from repro.constraints.sets import ConstraintSet
from repro.exceptions import ConstraintError

#: type tag -> (constructor, required argument names)
_REGISTRY: dict[str, tuple[type, tuple[str, ...]]] = {
    "max_groups": (MaxGroups, ("bound",)),
    "min_groups": (MinGroups, ("bound",)),
    "exact_groups": (ExactGroups, ("count",)),
    "max_group_size": (MaxGroupSize, ("bound",)),
    "min_group_size": (MinGroupSize, ("bound",)),
    "cannot_link": (CannotLink, ("class_a", "class_b")),
    "must_link": (MustLink, ("class_a", "class_b")),
    "max_distinct_class_attribute": (MaxDistinctClassAttribute, ("key", "bound")),
    "min_distinct_class_attribute": (MinDistinctClassAttribute, ("key", "bound")),
    "required_classes": (RequiredClasses, ("allowed",)),
    "max_instance_aggregate": (MaxInstanceAggregate, ("key", "how", "threshold")),
    "min_instance_aggregate": (MinInstanceAggregate, ("key", "how", "threshold")),
    "max_distinct_instance_attribute": (MaxDistinctInstanceAttribute, ("key", "bound")),
    "min_distinct_instance_attribute": (MinDistinctInstanceAttribute, ("key", "bound")),
    "max_instance_duration": (MaxInstanceDuration, ("seconds",)),
    "min_instance_duration": (MinInstanceDuration, ("seconds",)),
    "max_consecutive_gap": (MaxConsecutiveGap, ("seconds",)),
    "max_events_per_class": (MaxEventsPerClass, ("bound",)),
    "min_events_per_class": (MinEventsPerClass, ("bound",)),
}

#: Optional arguments accepted beyond the required ones, per type.
_OPTIONAL: dict[str, tuple[str, ...]] = {
    "min_events_per_class": ("classes",),
}


def parse_constraint(spec: Mapping[str, Any]) -> Constraint:
    """Build one constraint from its dictionary specification."""
    if "type" not in spec:
        raise ConstraintError(f"constraint specification lacks 'type': {dict(spec)}")
    type_tag = spec["type"]
    if type_tag not in _REGISTRY:
        raise ConstraintError(
            f"unknown constraint type {type_tag!r}; known types: "
            + ", ".join(sorted(_REGISTRY))
        )
    constructor, required = _REGISTRY[type_tag]
    allowed = set(required) | set(_OPTIONAL.get(type_tag, ())) | {"type", "fraction"}
    unknown = set(spec) - allowed
    if unknown:
        raise ConstraintError(
            f"unknown fields {sorted(unknown)} for constraint type {type_tag!r}"
        )
    missing = [name for name in required if name not in spec]
    if missing:
        raise ConstraintError(
            f"constraint type {type_tag!r} is missing fields {missing}"
        )
    kwargs = {
        name: spec[name]
        for name in (*required, *_OPTIONAL.get(type_tag, ()))
        if name in spec
    }
    constraint = constructor(**kwargs)
    if "fraction" in spec:
        if not isinstance(constraint, InstanceConstraint):
            raise ConstraintError(
                "'fraction' applies only to instance-based constraints, "
                f"not {type_tag!r}"
            )
        constraint = AtLeastFraction(constraint, float(spec["fraction"]))
    return constraint


def parse_constraints(specs: Sequence[Mapping[str, Any]]) -> ConstraintSet:
    """Build a :class:`ConstraintSet` from a list of specifications."""
    return ConstraintSet([parse_constraint(spec) for spec in specs])


def known_constraint_types() -> list[str]:
    """All type tags the parser accepts (for CLI help output)."""
    return sorted(_REGISTRY)


#: Constraint class -> type tag (inverse of :data:`_REGISTRY`).
_TYPE_TAGS: dict[type, str] = {
    constructor: tag for tag, (constructor, _required) in _REGISTRY.items()
}

#: Attribute values that need a canonical JSON rendering per field.
_FIELD_NORMALIZERS = {
    "allowed": lambda value: sorted(value),
    "classes": lambda value: None if value is None else sorted(value),
}


def constraint_to_spec(constraint: Constraint) -> dict[str, Any]:
    """Render a constraint back to its dictionary specification.

    The exact inverse of :func:`parse_constraint`:
    ``parse_constraint(constraint_to_spec(c))`` reconstructs an
    equivalent constraint for every registered type.  Set-valued fields
    are rendered sorted so equal constraints yield equal specifications
    (the service layer fingerprints jobs by this rendering).
    """
    if isinstance(constraint, AtLeastFraction):
        spec = constraint_to_spec(constraint.inner)
        spec["fraction"] = constraint.fraction
        return spec
    type_tag = _TYPE_TAGS.get(type(constraint))
    if type_tag is None:
        raise ConstraintError(
            f"constraint type {type(constraint).__name__} has no registered "
            "specification; add it to the parser registry"
        )
    _constructor, required = _REGISTRY[type_tag]
    spec: dict[str, Any] = {"type": type_tag}
    for name in (*required, *_OPTIONAL.get(type_tag, ())):
        value = getattr(constraint, name)
        if name in _FIELD_NORMALIZERS:
            value = _FIELD_NORMALIZERS[name](value)
        if value is None and name in _OPTIONAL.get(type_tag, ()):
            continue
        spec[name] = value
    return spec
