"""Constraint sets: joint evaluation, checking modes, and diagnostics.

A :class:`ConstraintSet` bundles the user's constraints ``R`` and
implements the per-group part of the paper's ``holds`` predicate.
Class-based constraints are always evaluated before instance-based ones
(Alg. 1/2: they need no pass over the log).  Instance-based evaluation
receives the group's instances from the caller so that the expensive
``inst`` computation (owned by :mod:`repro.core.instances`) happens at
most once per group.

When Step 2 finds no feasible grouping, :meth:`ConstraintSet.diagnose`
produces the infeasibility report the paper describes in §V-C: which
event classes cannot be covered by any candidate, which classes violate
class-based constraints even as singletons, and for instance-based
constraints the fraction of traces in which the singleton group of each
class violates them.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.constraints.base import (
    Category,
    CheckingMode,
    ClassConstraint,
    Constraint,
    GroupingConstraint,
    InstanceConstraint,
    infer_checking_mode,
)
from repro.eventlog.events import Event, EventLog
from repro.exceptions import ConstraintError

#: ``class -> attribute key -> frozenset of observed values``.
ClassAttributeView = dict[str, dict[str, frozenset]]

#: Provider of a group's instances, injected by the core layer.
InstanceProvider = Callable[[frozenset], Sequence[Sequence[Event]]]


def class_attribute_view(log: EventLog) -> ClassAttributeView:
    """Collect the class-level attribute values of a log.

    For every event class the view records, per attribute key, the set
    of values observed on events of that class.  Class-based constraints
    over class attributes (e.g. ``|g.origin| <= 1``) are evaluated
    against this view; a class attribute is simply an event attribute
    that happens to be constant per class.
    """
    view: dict[str, dict[str, set]] = {}
    for trace in log:
        for event in trace:
            slot = view.setdefault(event.event_class, {})
            for key, value in event.attributes.items():
                try:
                    slot.setdefault(key, set()).add(value)
                except TypeError:
                    # Unhashable attribute values cannot participate in
                    # distinct-value constraints; skip them.
                    continue
    return {
        cls: {key: frozenset(values) for key, values in slots.items()}
        for cls, slots in view.items()
    }


class ConstraintSet:
    """The user's constraint set ``R``, split by category.

    Constraints are partitioned on construction into class-based,
    instance-based, and grouping constraints (the categories of the
    paper's Table II); the cheap class-based checks always run before
    the instance-based ones, which need a pass over the log.  The set
    also carries the runtime's canonical serialization:
    :meth:`to_json` is order- and whitespace-stable, so equal sets —
    built in any order, in any process — digest to the same content
    fingerprint.

    Parameters
    ----------
    constraints:
        An iterable of :class:`~repro.constraints.base.Constraint`
        objects (e.g. :class:`~repro.constraints.grouping.MaxGroupSize`,
        parsed specs from :func:`repro.constraints.parser.parse_constraints`).

    Example
    -------
    >>> from repro.constraints import ConstraintSet, MaxGroupSize
    >>> len(ConstraintSet([MaxGroupSize(3)]))
    1
    """

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self.constraints: list[Constraint] = list(constraints)
        for constraint in self.constraints:
            if not isinstance(constraint, Constraint):
                raise ConstraintError(
                    f"expected Constraint, got {type(constraint).__name__}"
                )
        self.grouping: list[GroupingConstraint] = [
            c for c in self.constraints if isinstance(c, GroupingConstraint)
        ]
        self.class_based: list[ClassConstraint] = [
            c for c in self.constraints if isinstance(c, ClassConstraint)
        ]
        self.instance_based: list[InstanceConstraint] = [
            c for c in self.constraints if isinstance(c, InstanceConstraint)
        ]

    # -- structural properties -------------------------------------------

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    @property
    def checking_mode(self) -> CheckingMode:
        """The pruning mode implied by this set (Alg. 1 line 1)."""
        return infer_checking_mode(self.constraints)

    @property
    def max_groups(self) -> int | None:
        """Tightest upper bound on ``|G|`` across grouping constraints."""
        bounds = [c.max_groups for c in self.grouping if c.max_groups is not None]
        return min(bounds) if bounds else None

    @property
    def min_groups(self) -> int | None:
        """Tightest lower bound on ``|G|`` across grouping constraints."""
        bounds = [c.min_groups for c in self.grouping if c.min_groups is not None]
        return max(bounds) if bounds else None

    @property
    def needs_instances(self) -> bool:
        """Whether evaluating this set requires computing group instances."""
        return bool(self.instance_based)

    # -- per-group evaluation (the ``holds`` predicate) --------------------

    def check_class_constraints(
        self,
        group: frozenset[str],
        class_attributes: Mapping[str, Mapping[str, frozenset]] | None,
    ) -> bool:
        """Evaluate all class-based constraints on ``group``."""
        return all(
            constraint.check(group, class_attributes)
            for constraint in self.class_based
        )

    def check_instance_constraints(
        self,
        group: frozenset[str],
        instances: Sequence[Sequence[Event]],
    ) -> bool:
        """Evaluate all instance-based constraints on the group's instances."""
        return all(
            constraint.check_instances(instances, group)
            for constraint in self.instance_based
        )

    def holds_for_group(
        self,
        group: frozenset[str],
        class_attributes: Mapping[str, Mapping[str, frozenset]] | None,
        instance_provider: InstanceProvider | None,
    ) -> bool:
        """The per-group ``holds(g, L, R)`` predicate.

        Class-based constraints are checked first (cheap, no log pass);
        instances are requested from ``instance_provider`` only when
        instance-based constraints are present.
        """
        if not self.check_class_constraints(group, class_attributes):
            return False
        if self.instance_based:
            if instance_provider is None:
                raise ConstraintError(
                    "instance-based constraints present but no instance "
                    "provider supplied"
                )
            instances = instance_provider(group)
            if not self.check_instance_constraints(group, instances):
                return False
        return True

    def check_grouping_size(self, num_groups: int) -> bool:
        """Evaluate the grouping constraints against ``|G| = num_groups``."""
        return all(constraint.check(num_groups) for constraint in self.grouping)

    # -- diagnostics --------------------------------------------------------

    def diagnose(
        self,
        log: EventLog,
        class_attributes: Mapping[str, Mapping[str, frozenset]] | None,
        instance_provider: InstanceProvider | None,
        candidates: Iterable[frozenset[str]] = (),
    ) -> "InfeasibilityReport":
        """Explain why no feasible grouping exists (paper §V-C).

        The report lists event classes not covered by any candidate,
        classes whose singleton group already violates a class-based
        constraint, and — per instance-based constraint — the fraction
        of instance-bearing traces in which each class's singleton group
        violates it.
        """
        covered: set[str] = set()
        for candidate in candidates:
            covered.update(candidate)
        uncovered = sorted(log.classes - covered)

        class_violations: dict[str, list[str]] = {}
        for cls in sorted(log.classes):
            singleton = frozenset([cls])
            failing = [
                constraint.describe()
                for constraint in self.class_based
                if not constraint.check(singleton, class_attributes)
            ]
            if failing:
                class_violations[cls] = failing

        instance_violation_fractions: dict[str, dict[str, float]] = {}
        if self.instance_based and instance_provider is not None:
            for constraint in self.instance_based:
                per_class: dict[str, float] = {}
                for cls in sorted(log.classes):
                    singleton = frozenset([cls])
                    instances = instance_provider(singleton)
                    if not instances:
                        continue
                    violated = sum(
                        1
                        for instance in instances
                        if not constraint.check_instance(instance, singleton)
                    )
                    if violated:
                        per_class[cls] = violated / len(instances)
                if per_class:
                    instance_violation_fractions[constraint.describe()] = per_class

        return InfeasibilityReport(
            uncovered_classes=uncovered,
            class_constraint_violations=class_violations,
            instance_violation_fractions=instance_violation_fractions,
        )

    # -- canonical serialization -------------------------------------------

    def to_specs(self) -> list[dict]:
        """The constraints as canonically ordered specification dicts.

        Specifications are sorted by their canonical JSON rendering, so
        two sets built from the same constraints in different orders
        produce identical output (required for stable job fingerprints
        in :mod:`repro.service`).
        """
        from repro.constraints.parser import constraint_to_spec

        specs = [constraint_to_spec(constraint) for constraint in self.constraints]
        return sorted(
            specs, key=lambda spec: json.dumps(spec, sort_keys=True, default=str)
        )

    def to_json(self) -> str:
        """Canonical JSON: order- and whitespace-stable for equal sets."""
        return json.dumps(
            self.to_specs(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "ConstraintSet":
        """Rebuild a set from :meth:`to_json` output."""
        from repro.constraints.parser import parse_constraints

        return parse_constraints(json.loads(text))

    def describe(self) -> str:
        """One line per constraint, for logs and error messages."""
        if not self.constraints:
            return "(no constraints)"
        return "; ".join(constraint.describe() for constraint in self.constraints)

    def __repr__(self) -> str:
        return f"ConstraintSet({self.describe()})"


@dataclass
class InfeasibilityReport:
    """Diagnostics attached to an infeasible abstraction problem (§V-C)."""

    uncovered_classes: list[str] = field(default_factory=list)
    class_constraint_violations: dict[str, list[str]] = field(default_factory=dict)
    instance_violation_fractions: dict[str, dict[str, float]] = field(
        default_factory=dict
    )

    def summary(self) -> str:
        """A readable multi-line summary of the report."""
        lines = []
        if self.uncovered_classes:
            lines.append(
                "classes not covered by any candidate group: "
                + ", ".join(self.uncovered_classes)
            )
        for cls, failures in self.class_constraint_violations.items():
            lines.append(f"class {cls!r} violates: {'; '.join(failures)}")
        for constraint, fractions in self.instance_violation_fractions.items():
            worst = sorted(fractions.items(), key=lambda item: -item[1])[:5]
            rendered = ", ".join(f"{cls} ({frac:.0%})" for cls, frac in worst)
            lines.append(f"constraint {constraint!r} violated for: {rendered}")
        return "\n".join(lines) if lines else "no diagnostic findings"
