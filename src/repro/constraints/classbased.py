"""Class-based constraints (``R_C``): properties of a group's classes.

These constraints are checkable for a group in isolation, without a
pass over the event log — Algorithms 1 and 2 therefore evaluate them
before any instance-based constraint.  Table II's examples are all
covered: group-size bounds, cannot-link / must-link pairs, and bounds
over class-level attributes (e.g. "all classes of a group stem from the
same origin system", ``|g.origin| <= 1``, used in the §VI-D case study).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.constraints.base import ClassConstraint, Monotonicity
from repro.exceptions import ConstraintError

ClassAttributes = Mapping[str, Mapping[str, frozenset]]


class MinGroupSize(ClassConstraint):
    """Each group must contain at least ``bound`` event classes (monotonic)."""

    monotonicity = Monotonicity.MONOTONIC

    def __init__(self, bound: int):
        if bound < 1:
            raise ConstraintError(f"MinGroupSize bound must be >= 1, got {bound}")
        self.bound = bound

    def check(self, group, class_attributes=None) -> bool:
        return len(group) >= self.bound

    def describe(self) -> str:
        return f"|g| >= {self.bound}"


class MaxGroupSize(ClassConstraint):
    """Each group may contain at most ``bound`` event classes (anti-monotonic)."""

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, bound: int):
        if bound < 1:
            raise ConstraintError(f"MaxGroupSize bound must be >= 1, got {bound}")
        self.bound = bound

    def check(self, group, class_attributes=None) -> bool:
        return len(group) <= self.bound

    def describe(self) -> str:
        return f"|g| <= {self.bound}"


class CannotLink(ClassConstraint):
    """Two event classes must not end up in the same group (anti-monotonic)."""

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, class_a: str, class_b: str):
        if class_a == class_b:
            raise ConstraintError("CannotLink needs two distinct event classes")
        self.class_a = class_a
        self.class_b = class_b

    def check(self, group, class_attributes=None) -> bool:
        return not (self.class_a in group and self.class_b in group)

    def describe(self) -> str:
        return f"cannotLink({self.class_a}, {self.class_b})"


class MustLink(ClassConstraint):
    """Two event classes must be members of the same group (non-monotonic).

    A group violates the constraint when it contains exactly one of the
    two classes; groups containing neither or both satisfy it.
    """

    monotonicity = Monotonicity.NON_MONOTONIC

    def __init__(self, class_a: str, class_b: str):
        if class_a == class_b:
            raise ConstraintError("MustLink needs two distinct event classes")
        self.class_a = class_a
        self.class_b = class_b

    def check(self, group, class_attributes=None) -> bool:
        return (self.class_a in group) == (self.class_b in group)

    def describe(self) -> str:
        return f"mustLink({self.class_a}, {self.class_b})"


class MaxDistinctClassAttribute(ClassConstraint):
    """At most ``bound`` distinct values of a class-level attribute per group.

    ``MaxDistinctClassAttribute("org:role", 1)`` expresses the running
    example's "each activity comprises only events performed by the same
    role"; ``MaxDistinctClassAttribute("origin", 1)`` is the case
    study's ``|g.origin| <= 1``.  Anti-monotonic: adding classes can
    only add attribute values.
    """

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, key: str, bound: int):
        if bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {bound}")
        self.key = key
        self.bound = bound

    def _values(self, group, class_attributes: ClassAttributes | None) -> set:
        if class_attributes is None:
            raise ConstraintError(
                f"constraint on class attribute {self.key!r} requires class "
                "attribute data (is the attribute present in the log?)"
            )
        values: set = set()
        for cls in group:
            values.update(class_attributes.get(cls, {}).get(self.key, frozenset()))
        return values

    def check(self, group, class_attributes=None) -> bool:
        return len(self._values(group, class_attributes)) <= self.bound

    def describe(self) -> str:
        return f"|g.{self.key}| <= {self.bound}"


class MinDistinctClassAttribute(ClassConstraint):
    """At least ``bound`` distinct values of a class-level attribute (monotonic)."""

    monotonicity = Monotonicity.MONOTONIC

    def __init__(self, key: str, bound: int):
        if bound < 1:
            raise ConstraintError(f"bound must be >= 1, got {bound}")
        self.key = key
        self.bound = bound

    def check(self, group, class_attributes=None) -> bool:
        if class_attributes is None:
            raise ConstraintError(
                f"constraint on class attribute {self.key!r} requires class "
                "attribute data (is the attribute present in the log?)"
            )
        values: set = set()
        for cls in group:
            values.update(class_attributes.get(cls, {}).get(self.key, frozenset()))
        return len(values) >= self.bound

    def describe(self) -> str:
        return f"|g.{self.key}| >= {self.bound}"


class RequiredClasses(ClassConstraint):
    """The group must be drawn from a given class whitelist (anti-monotonic)."""

    monotonicity = Monotonicity.ANTI_MONOTONIC

    def __init__(self, allowed: Iterable[str]):
        self.allowed = frozenset(allowed)
        if not self.allowed:
            raise ConstraintError("RequiredClasses needs a non-empty whitelist")

    def check(self, group, class_attributes=None) -> bool:
        return frozenset(group) <= self.allowed

    def describe(self) -> str:
        preview = ", ".join(sorted(self.allowed)[:4])
        return f"g ⊆ {{{preview}{', ...' if len(self.allowed) > 4 else ''}}}"
