"""Constraint suggestion: propose interesting constraints for a log.

The paper's conclusion names this as future work: *"we aim to develop
an approach to suggest interesting constraints to users for a given
log."*  This module implements that idea with transparent, data-driven
heuristics:

* **Partitioning attributes** — a categorical event attribute that is
  constant per event class and splits the classes into a handful of
  blocks (like ``org:role`` in the running example or ``origin`` in the
  case study) suggests ``MaxDistinctClassAttribute(key, 1)``.
* **Instance diversity** — a categorical attribute that varies within
  traces suggests a bound on its per-instance diversity
  (``MaxDistinctInstanceAttribute``), sized from the observed per-trace
  diversity.
* **Numeric attributes** — numeric event attributes suggest
  per-instance aggregate caps at a high percentile of observed
  per-trace sums (``MaxInstanceAggregate``), loose by construction.
* **Duration** — timestamped logs suggest a per-instance duration cap
  at a percentile of the observed trace durations.
* **Size bounds** — the class-universe size suggests ``|g| <= ceil(sqrt(|C_L|)) + 1``
  and ``|G| <= ceil(|C_L| / 2)``, mirroring how the paper's evaluation
  bounds problem size.

Every suggestion carries a rationale and an estimated *selectivity* (a
rough fraction of singleton groups already satisfying it) so users can
judge restrictiveness before running GECCO.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime

from repro.constraints.base import Constraint
from repro.constraints.classbased import MaxDistinctClassAttribute, MaxGroupSize
from repro.constraints.grouping import MaxGroups
from repro.constraints.instancebased import (
    MaxDistinctInstanceAttribute,
    MaxInstanceAggregate,
    MaxInstanceDuration,
)
from repro.constraints.sets import class_attribute_view
from repro.eventlog.events import TIMESTAMP_KEY, EventLog

#: Attribute keys never suggested on (identifiers, timestamps, internals).
_EXCLUDED_KEYS = {TIMESTAMP_KEY, "concept:name"}

#: Maximum number of blocks for an attribute to count as partitioning.
_MAX_PARTITION_BLOCKS = 8


@dataclass(frozen=True)
class Suggestion:
    """One suggested constraint with its rationale."""

    constraint: Constraint
    rationale: str
    selectivity: float  # 0 = unrestrictive, 1 = extremely restrictive

    def describe(self) -> str:
        """Constraint description plus rationale, for CLI output."""
        return f"{self.constraint.describe()}  [{self.rationale}]"


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[position]


def _attribute_kinds(log: EventLog) -> tuple[dict[str, bool], dict[str, bool]]:
    """Classify attribute keys: categorical (str) and numeric carriers."""
    categorical: dict[str, bool] = {}
    numeric: dict[str, bool] = {}
    for trace in log:
        for event in trace:
            for key, value in event.attributes.items():
                if key in _EXCLUDED_KEYS:
                    continue
                if isinstance(value, bool):
                    categorical[key] = categorical.get(key, True)
                elif isinstance(value, (int, float)):
                    numeric[key] = numeric.get(key, True)
                elif isinstance(value, str):
                    categorical[key] = categorical.get(key, True)
                elif isinstance(value, datetime):
                    continue
                else:
                    categorical[key] = False
                    numeric[key] = False
    return (
        {key: ok for key, ok in categorical.items() if ok},
        {key: ok for key, ok in numeric.items() if ok},
    )


def _suggest_partitioning(log: EventLog, categorical: dict[str, bool]) -> list[Suggestion]:
    view = class_attribute_view(log)
    suggestions = []
    num_classes = len(log.classes)
    for key in sorted(categorical):
        per_class = [view.get(cls, {}).get(key, frozenset()) for cls in log.classes]
        if not all(len(values) == 1 for values in per_class):
            continue  # not constant per class
        blocks = {next(iter(values)) for values in per_class}
        if not 2 <= len(blocks) <= _MAX_PARTITION_BLOCKS:
            continue
        suggestions.append(
            Suggestion(
                constraint=MaxDistinctClassAttribute(key, 1),
                rationale=(
                    f"attribute {key!r} is constant per class and partitions "
                    f"the {num_classes} classes into {len(blocks)} blocks"
                ),
                selectivity=1.0 - 1.0 / len(blocks),
            )
        )
    return suggestions


def _suggest_instance_diversity(
    log: EventLog, categorical: dict[str, bool]
) -> list[Suggestion]:
    suggestions = []
    for key in sorted(categorical):
        per_trace = []
        for trace in log:
            values = {
                event.attributes[key]
                for event in trace
                if key in event.attributes
            }
            if values:
                per_trace.append(len(values))
        if not per_trace:
            continue
        typical = int(_percentile([float(v) for v in per_trace], 0.9))
        if typical < 2:
            continue  # constant within traces; the partitioning rule covers it
        suggestions.append(
            Suggestion(
                constraint=MaxDistinctInstanceAttribute(key, typical),
                rationale=(
                    f"90% of traces involve at most {typical} distinct "
                    f"values of {key!r}"
                ),
                selectivity=0.3,
            )
        )
    return suggestions


def _suggest_numeric_caps(log: EventLog, numeric: dict[str, bool]) -> list[Suggestion]:
    suggestions = []
    for key in sorted(numeric):
        per_trace_sums = []
        for trace in log:
            values = [
                float(event.attributes[key])
                for event in trace
                if isinstance(event.attributes.get(key), (int, float))
                and not isinstance(event.attributes.get(key), bool)
            ]
            if values:
                per_trace_sums.append(sum(values))
        if len(per_trace_sums) < 2:
            continue
        cap = _percentile(per_trace_sums, 0.95)
        if cap <= 0:
            continue
        suggestions.append(
            Suggestion(
                constraint=MaxInstanceAggregate(key, "sum", round(cap, 2)),
                rationale=(
                    f"95% of traces have sum({key}) <= {cap:.2f}; group "
                    "instances are sub-traces, so this is loose by design"
                ),
                selectivity=0.1,
            )
        )
    return suggestions


def _suggest_duration_cap(log: EventLog) -> list[Suggestion]:
    durations = []
    for trace in log:
        stamps = [
            event.timestamp
            for event in trace
            if isinstance(event.attributes.get(TIMESTAMP_KEY), datetime)
        ]
        if len(stamps) >= 2:
            durations.append((max(stamps) - min(stamps)).total_seconds())
    if len(durations) < 2:
        return []
    cap = _percentile(durations, 0.95)
    if cap <= 0:
        return []
    return [
        Suggestion(
            constraint=MaxInstanceDuration(round(cap, 1)),
            rationale=(
                f"95% of traces span at most {cap:.0f}s; instances are "
                "sub-traces, so this caps only outlier activities"
            ),
            selectivity=0.1,
        )
    ]


def _suggest_size_bounds(log: EventLog) -> list[Suggestion]:
    num_classes = len(log.classes)
    if num_classes < 4:
        return []
    group_cap = int(math.ceil(math.sqrt(num_classes))) + 1
    return [
        Suggestion(
            constraint=MaxGroupSize(group_cap),
            rationale=(
                f"sqrt-sized groups keep activities interpretable for a "
                f"{num_classes}-class log (the paper's evaluation uses |g| <= 8)"
            ),
            selectivity=0.2,
        ),
        Suggestion(
            constraint=MaxGroups(max(2, num_classes // 2)),
            rationale="halving the class count guarantees visible abstraction",
            selectivity=0.3,
        ),
    ]


def suggest_constraints(log: EventLog, limit: int | None = None) -> list[Suggestion]:
    """Propose constraints for ``log``, most structural first.

    Ordering: partitioning attributes (the strongest signal, they mirror
    the paper's role/origin use cases), then size bounds, instance
    diversity, duration and numeric caps.  ``limit`` truncates the list.
    """
    categorical, numeric = _attribute_kinds(log)
    suggestions = (
        _suggest_partitioning(log, categorical)
        + _suggest_size_bounds(log)
        + _suggest_instance_diversity(log, categorical)
        + _suggest_duration_cap(log)
        + _suggest_numeric_caps(log, numeric)
    )
    return suggestions if limit is None else suggestions[:limit]
