"""Constraint framework foundations: categories, monotonicity, base classes.

The paper (§IV-A) distinguishes three constraint categories:

* **grouping constraints** (``R_G``) — bound the number of groups in the
  final grouping and are enforced during Step 2 (MIP selection);
* **class-based constraints** (``R_C``) — properties of an individual
  group's event classes, checkable without touching the log's traces;
* **instance-based constraints** (``R_I``) — properties every *instance*
  of a group (a per-trace occurrence of the group, cf.
  :mod:`repro.core.instances`) must satisfy.

Each non-grouping constraint further carries a *monotonicity*: monotonic
constraints can never become violated by adding classes to a group,
anti-monotonic ones can never become violated by removing classes, and
non-monotonic ones give no such guarantee.  Algorithms 1 and 2 derive
their pruning strategy (the *checking mode*) from these labels.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from typing import Any

from repro.eventlog.events import Event


class Category(enum.Enum):
    """Constraint category per paper §IV-A."""

    GROUPING = "grouping"
    CLASS = "class"
    INSTANCE = "instance"


class Monotonicity(enum.Enum):
    """Monotonicity of a constraint under group growth (Table II)."""

    MONOTONIC = "monotonic"
    ANTI_MONOTONIC = "anti-monotonic"
    NON_MONOTONIC = "non-monotonic"


class CheckingMode(enum.Enum):
    """Constraint-checking mode used for search-space pruning.

    Derived from a constraint set by ``setCheckingMode`` (Alg. 1
    line 1): ``ANTI_MONOTONIC`` if any per-group constraint is
    anti-monotonic, ``MONOTONIC`` if all per-group constraints are
    monotonic, otherwise ``NON_MONOTONIC``.
    """

    MONOTONIC = "monotonic"
    ANTI_MONOTONIC = "anti-monotonic"
    NON_MONOTONIC = "non-monotonic"


class Constraint(ABC):
    """Base class of all GECCO constraints.

    Subclasses declare their :attr:`category` and :attr:`monotonicity`
    and implement the check method of their category's signature.  A
    human-readable :meth:`describe` powers infeasibility diagnostics.
    """

    category: Category
    monotonicity: Monotonicity = Monotonicity.NON_MONOTONIC

    @abstractmethod
    def describe(self) -> str:
        """A one-line, user-facing description of the constraint."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self.describe()}>"


class GroupingConstraint(Constraint):
    """A constraint on the grouping as a whole (``R_G``), e.g. ``|G| <= 10``."""

    category = Category.GROUPING

    @abstractmethod
    def check(self, num_groups: int) -> bool:
        """Return ``True`` iff a grouping of ``num_groups`` groups satisfies this."""

    @property
    def max_groups(self) -> int | None:
        """Upper bound on ``|G|`` implied by this constraint, if any."""
        return None

    @property
    def min_groups(self) -> int | None:
        """Lower bound on ``|G|`` implied by this constraint, if any."""
        return None


class ClassConstraint(Constraint):
    """A constraint on one group's event classes (``R_C``).

    Satisfaction is checked against the group in isolation, optionally
    consulting class-level attribute values (e.g. the role assigned to
    each event class) through ``class_attributes``: a mapping
    ``class -> attribute key -> frozenset of observed values``.
    """

    category = Category.CLASS

    @abstractmethod
    def check(
        self,
        group: frozenset[str],
        class_attributes: Mapping[str, Mapping[str, frozenset]] | None = None,
    ) -> bool:
        """Return ``True`` iff ``group`` satisfies this constraint."""


class InstanceConstraint(Constraint):
    """A constraint every instance of a group must satisfy (``R_I``).

    ``check_instance`` judges a single group instance (an ordered list
    of events from one trace).  ``check_instances`` aggregates over all
    instances of a group in the log; the default requires *every*
    instance to pass, while loose constraints (e.g. "95% of instances
    must ...") override it.  Constraints are vacuously satisfied when a
    group has no instances (paper §IV-A).
    """

    category = Category.INSTANCE

    @abstractmethod
    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        """Return ``True`` iff the single ``instance`` satisfies this constraint."""

    def check_instances(
        self, instances: Sequence[Sequence[Event]], group: frozenset[str]
    ) -> bool:
        """Return ``True`` iff the set of instances jointly satisfies this."""
        return all(self.check_instance(instance, group) for instance in instances)


class AtLeastFraction(InstanceConstraint):
    """Loose wrapper: at least ``fraction`` of instances satisfy ``inner``.

    Example from Table II: *"at least 95% of the group instances must
    have a cost below 500$"* is
    ``AtLeastFraction(MaxInstanceAggregate("cost", "sum", 500), 0.95)``.

    The wrapper inherits its monotonicity from the wrapped constraint:
    if a group change can only make ``inner`` easier per instance, it
    can only raise the satisfied fraction.
    """

    def __init__(self, inner: InstanceConstraint, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not isinstance(inner, InstanceConstraint):
            raise TypeError("inner must be an InstanceConstraint")
        self.inner = inner
        self.fraction = fraction
        self.monotonicity = inner.monotonicity

    def check_instance(self, instance: Sequence[Event], group: frozenset[str]) -> bool:
        return self.inner.check_instance(instance, group)

    def check_instances(
        self, instances: Sequence[Sequence[Event]], group: frozenset[str]
    ) -> bool:
        if not instances:
            return True
        satisfied = sum(
            1 for instance in instances if self.inner.check_instance(instance, group)
        )
        return satisfied / len(instances) >= self.fraction

    def describe(self) -> str:
        return (
            f"at least {self.fraction:.0%} of group instances satisfy: "
            f"{self.inner.describe()}"
        )


def infer_checking_mode(constraints: Sequence[Constraint]) -> CheckingMode:
    """Derive the checking mode of a constraint collection (Alg. 1 line 1).

    Grouping constraints are excluded — they are not checked per group.
    """
    per_group = [c for c in constraints if c.category is not Category.GROUPING]
    if any(c.monotonicity is Monotonicity.ANTI_MONOTONIC for c in per_group):
        return CheckingMode.ANTI_MONOTONIC
    if per_group and all(
        c.monotonicity is Monotonicity.MONOTONIC for c in per_group
    ):
        return CheckingMode.MONOTONIC
    return CheckingMode.NON_MONOTONIC
