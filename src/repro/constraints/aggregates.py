"""Aggregation helpers over group instances.

Instance-based constraints (Table II) are almost always of the form
*"<aggregate> of <attribute> over the instance's events <comparator>
<threshold>"*.  This module centralizes those aggregates so constraint
classes stay declarative.

All aggregates skip events that lack the attribute; an instance with no
carrier of the attribute yields ``None`` (the constraint then decides —
by default such instances are treated as satisfying, mirroring the
paper's vacuous-satisfaction convention).

Extraction is memoized per ``(instance, key)``: constraint sets that
bound several aggregates of the same attribute (e.g. the evaluation's
``M`` + ``N`` both over ``duration``) scan each instance's events once
per key instead of once per constraint.  The memo is identity-keyed —
entries hold a reference to the instance, so a cache hit is guaranteed
to be the same (unmutated-by-convention) event list — and resets when
it reaches its size bound (the idiom of the repo's other unbounded-
workload caches; entry-wise LRU would thrash to a 0% hit rate on the
cyclic access pattern of re-scanning a huge group).  Entries pin their
instance lists alive, so long-lived processes that retire whole logs
(the service workers) call :func:`clear_extraction_cache` at job
boundaries.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from datetime import datetime
from typing import Any

from repro.eventlog.events import TIMESTAMP_KEY, Event

#: Memoized extractions before the cache resets (covers the M+N reuse
#: pattern for groups of up to ~16k instances across a few keys).
_EXTRACTION_CACHE_LIMIT = 1 << 15

#: ``(id(instance), key) -> (instance, values)``; the stored instance
#: reference pins the id (no stale-id collisions) and is compared by
#: identity on lookup.
_extraction_cache: "dict[tuple, tuple[Any, list]]" = {}


def clear_extraction_cache() -> None:
    """Drop all memoized extractions (releases the pinned instances).

    Called at service-job boundaries so retired logs' event lists do
    not outlive their job in long-running workers.
    """
    _extraction_cache.clear()


def _memoized(instance, key, extract):
    token = (id(instance), key)
    hit = _extraction_cache.get(token)
    if hit is not None and hit[0] is instance:
        return hit[1]
    values = extract()
    if len(_extraction_cache) >= _EXTRACTION_CACHE_LIMIT:
        _extraction_cache.clear()
    _extraction_cache[token] = (instance, values)
    return values


def attribute_values(instance: Sequence[Event], key: str) -> list[Any]:
    """All values of attribute ``key`` over the instance's events, in order."""
    return _memoized(
        instance,
        key,
        lambda: [
            event.attributes[key]
            for event in instance
            if key in event.attributes
        ],
    )


def numeric_values(instance: Sequence[Event], key: str) -> list[float]:
    """Numeric values of ``key`` over the instance (non-numerics skipped)."""

    def extract():
        values = []
        for value in attribute_values(instance, key):
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                values.append(float(value))
        return values

    return _memoized(instance, ("numeric", key), extract)


def aggregate(instance: Sequence[Event], key: str, how: str) -> float | None:
    """Apply aggregate ``how`` to attribute ``key`` over the instance.

    Supported aggregates: ``sum``, ``avg``, ``min``, ``max``, ``count``
    (number of events carrying the attribute) and ``distinct`` (number
    of distinct values, any type).  Returns ``None`` when no event
    carries the attribute (except ``count``/``distinct``, which return 0).
    """
    if how == "count":
        return float(len(attribute_values(instance, key)))
    if how == "distinct":
        return float(len(distinct_values(instance, key)))
    values = numeric_values(instance, key)
    if not values:
        return None
    if how == "sum":
        return sum(values)
    if how == "avg":
        return sum(values) / len(values)
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    raise ValueError(f"unknown aggregate {how!r}")

#: Aggregates accepted by :func:`aggregate`.
SUPPORTED_AGGREGATES = ("sum", "avg", "min", "max", "count", "distinct")


def distinct_values(instance: Sequence[Event], key: str) -> set:
    """Distinct values of attribute ``key`` over the instance's events."""
    values = set()
    for value in attribute_values(instance, key):
        values.add(value)
    return values


def _timestamps(instance: Sequence[Event]) -> list[datetime]:
    """The instance's ``datetime`` stamps in order (memoized)."""
    return _memoized(
        instance,
        ("timestamps", TIMESTAMP_KEY),
        lambda: [
            event.timestamp
            for event in instance
            if isinstance(event.attributes.get(TIMESTAMP_KEY), datetime)
        ],
    )


def instance_duration_seconds(instance: Sequence[Event]) -> float | None:
    """Wall-clock span of an instance: last minus first timestamp, seconds.

    ``None`` when fewer than one event carries a timestamp; 0.0 for a
    single timestamped event.
    """
    stamps = _timestamps(instance)
    if not stamps:
        return None
    return (max(stamps) - min(stamps)).total_seconds()


def max_gap_seconds(instance: Sequence[Event]) -> float | None:
    """Largest gap between consecutive timestamped events, in seconds.

    Supports Table II's *"time between consecutive events in a group
    instance must be at most 10 minutes"*.  ``None`` when fewer than two
    events carry timestamps.
    """
    stamps = _timestamps(instance)
    if len(stamps) < 2:
        return None
    return max(
        (later - earlier).total_seconds()
        for earlier, later in zip(stamps, stamps[1:])
    )


def events_per_class(instance: Sequence[Event]) -> dict[str, int]:
    """Number of events per event class within the instance.

    Supports cardinality constraints such as Table II's *"each group
    instance may contain at most 1 event per event class"*.
    """
    return dict(Counter(event.event_class for event in instance))
