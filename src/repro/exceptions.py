"""Exception hierarchy for the GECCO reproduction package.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch the package's failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EventLogError(ReproError):
    """Raised for malformed event logs or invalid log operations."""


class XESParseError(EventLogError):
    """Raised when an XES document cannot be parsed into an event log."""


class ConstraintError(ReproError):
    """Raised for invalid constraint definitions or parameters."""


class GroupingError(ReproError):
    """Raised when a grouping is structurally invalid (not an exact cover)."""


class InfeasibleProblemError(ReproError):
    """Raised when no grouping can satisfy the imposed constraints.

    Carries a :class:`repro.constraints.sets.InfeasibilityReport` in
    :attr:`report` when diagnostics are available, so users can refine
    their constraints (cf. paper §V-C).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class SolverError(ReproError):
    """Raised when a MIP backend fails for reasons other than infeasibility."""


class DiscoveryError(ReproError):
    """Raised when process discovery cannot produce a model."""
