"""Synthetic loan-application log for the case study (paper §VI-D).

The case study uses a BPI-2017-like loan-application log: 24 event
classes originating from three IT systems — the application-handling
system (``A``), the offer system (``O``) and a workflow system (``W``)
— with heavily intertwined behavior (the original's DFG has 160 edges
and stays spaghetti even at an 80/20 filter, Fig. 1).  Imposing
``|g.origin| <= 1`` yields seven high-level activities whose DFG
exposes the inter-system flow (Fig. 8).

This module simulates that process with a hand-written, seeded
generator: an application phase, an offer loop, a validation loop with
incomplete-file callbacks, and alternative outcomes (accept / refuse /
cancel / fraud assessment), with workflow events interleaved into the
other systems' phases.  Every event carries ``origin`` (``A``/``O``/
``W``), ``org:role``, ``duration``, ``cost`` and a timestamp.
"""

from __future__ import annotations

import math
import random
from datetime import datetime, timedelta, timezone

from repro.eventlog.events import CLASS_KEY, ROLE_KEY, TIMESTAMP_KEY, Event, EventLog, Trace

#: Event classes per origin system (10 + 8 + 6 = 24 classes).
A_CLASSES = [
    "A_Create", "A_Submitted", "A_Concept", "A_Accepted", "A_Complete",
    "A_Validating", "A_Incomplete", "A_Denied", "A_Pending", "A_Cancelled",
]
O_CLASSES = [
    "O_Create", "O_Created", "O_SentMail", "O_SentOnline",
    "O_Returned", "O_Accepted", "O_Refused", "O_Cancelled",
]
W_CLASSES = [
    "W_HandleLeads", "W_CompleteApp", "W_ValidateApp",
    "W_CallIncomplete", "W_CallOffers", "W_AssessFraud",
]

ALL_CLASSES = A_CLASSES + O_CLASSES + W_CLASSES

ORIGIN_OF = {cls: cls.split("_", 1)[0] for cls in ALL_CLASSES}
ROLE_OF_ORIGIN = {"A": "application_officer", "O": "offer_system", "W": "workflow_user"}


def _simulate_case(rng: random.Random) -> list[str]:
    """One loan application, as a class sequence."""
    trace: list[str] = ["A_Create", "A_Submitted", "A_Concept"]
    if rng.random() < 0.3:
        trace.append("W_HandleLeads")

    # Offer loop: one to three offers are created and sent.
    for _ in range(1 + (rng.random() < 0.35) + (rng.random() < 0.15)):
        trace.extend(["O_Create", "O_Created"])
        trace.append("O_SentMail" if rng.random() < 0.8 else "O_SentOnline")
        if rng.random() < 0.2:
            trace.append("W_CallOffers")

    trace.extend(["W_CompleteApp", "A_Accepted", "A_Complete"])

    # Validation loop with incomplete-file callbacks.
    while True:
        trace.append("A_Validating")
        if rng.random() < 0.25:
            trace.append("W_ValidateApp")
        if rng.random() < 0.45:
            trace.extend(["O_Returned", "A_Incomplete", "W_CallIncomplete"])
            if rng.random() < 0.5:
                continue
        break

    # Outcome.  The offer-system outcome and the application-system
    # outcome are correlated, but — as in real logs — a noise fraction
    # of cases records a mismatching application outcome (manual
    # overrides, data-entry races).  This noise makes the three
    # outcomes of each system proper behavioral alternatives, which is
    # what lets constraint-driven abstraction fold them together.
    if rng.random() < 0.05:
        trace.append("W_AssessFraud")
    o_outcome, a_outcome = rng.choices(
        [
            ("O_Accepted", "A_Pending"),
            ("O_Refused", "A_Denied"),
            ("O_Cancelled", "A_Cancelled"),
        ],
        weights=[0.55, 0.2, 0.25],
        k=1,
    )[0]
    if rng.random() < 0.15:
        a_outcome = rng.choice(
            [o for o in ("A_Pending", "A_Denied", "A_Cancelled") if o != a_outcome]
        )
    trace.extend([o_outcome, a_outcome])
    return trace


def loan_application_log(num_traces: int = 300, seed: int = 17) -> EventLog:
    """Generate the case-study log (seeded, deterministic)."""
    rng = random.Random(seed)
    start = datetime(2021, 1, 4, 8, 0, tzinfo=timezone.utc)
    traces = []
    for case_index in range(num_traces):
        classes = _simulate_case(rng)
        clock = start + timedelta(hours=case_index)
        events = []
        for cls in classes:
            origin = ORIGIN_OF[cls]
            duration = rng.lognormvariate(math.log(300.0), 0.8)
            clock = clock + timedelta(seconds=duration)
            events.append(
                Event(
                    cls,
                    {
                        "origin": origin,
                        ROLE_KEY: ROLE_OF_ORIGIN[origin],
                        "duration": round(duration, 1),
                        "cost": round(rng.uniform(5.0, 150.0), 2),
                        TIMESTAMP_KEY: clock,
                    },
                )
            )
        traces.append(Trace(events, {CLASS_KEY: f"application_{case_index}"}))
    return EventLog(traces, {CLASS_KEY: "loan-application"})
