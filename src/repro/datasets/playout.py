"""Stochastic play-out of process trees into event logs.

Given a process tree, play-out simulates cases: XOR nodes draw a child
according to their weights, AND nodes interleave their children's
sub-traces by a random merge, and LOOP nodes redo their body with the
node's repeat probability (geometrically distributed, capped).  The
result is a list of class sequences that
:mod:`repro.datasets.attributes` turns into fully attributed traces.

Play-out is seeded and therefore deterministic per (tree, seed).
"""

from __future__ import annotations

import random

from repro.datasets.process_tree import Operator, ProcessTree
from repro.eventlog.events import CLASS_KEY, Event, EventLog, Trace
from repro.exceptions import EventLogError

#: Hard cap on loop unrollings per node per case.
MAX_LOOP_REPEATS = 5


def _interleave(rng: random.Random, parts: list[list[str]]) -> list[str]:
    """Random order-preserving merge of several sequences."""
    pools = [list(part) for part in parts if part]
    merged: list[str] = []
    while pools:
        weights = [len(pool) for pool in pools]
        chosen = rng.choices(range(len(pools)), weights=weights, k=1)[0]
        merged.append(pools[chosen].pop(0))
        if not pools[chosen]:
            pools.pop(chosen)
    return merged


def simulate_case(tree: ProcessTree, rng: random.Random) -> list[str]:
    """Simulate one case: the class sequence of a single trace."""
    if tree.is_leaf:
        return [tree.label]
    if tree.operator is Operator.SEQ:
        sequence: list[str] = []
        for child in tree.children:
            sequence.extend(simulate_case(child, rng))
        return sequence
    if tree.operator is Operator.XOR:
        weights = tree.weights or [1.0] * len(tree.children)
        child = rng.choices(tree.children, weights=weights, k=1)[0]
        return simulate_case(child, rng)
    if tree.operator is Operator.AND:
        parts = [simulate_case(child, rng) for child in tree.children]
        return _interleave(rng, parts)
    if tree.operator is Operator.LOOP:
        do, redo = tree.children
        sequence = simulate_case(do, rng)
        repeats = 0
        while repeats < MAX_LOOP_REPEATS and rng.random() < tree.repeat_probability:
            sequence.extend(simulate_case(redo, rng))
            sequence.extend(simulate_case(do, rng))
            repeats += 1
        return sequence
    raise EventLogError(f"unknown operator {tree.operator!r}")  # pragma: no cover


def simulate_variants(
    tree: ProcessTree, num_traces: int, seed: int = 0
) -> list[list[str]]:
    """Simulate ``num_traces`` cases (class sequences only)."""
    rng = random.Random(seed)
    return [simulate_case(tree, rng) for _ in range(num_traces)]


def playout(
    tree: ProcessTree,
    num_traces: int,
    seed: int = 0,
    case_prefix: str = "case",
) -> EventLog:
    """Play ``tree`` out into a bare event log (no attributes yet)."""
    traces = []
    for case_index, variant in enumerate(simulate_variants(tree, num_traces, seed)):
        events = [Event(cls) for cls in variant]
        traces.append(Trace(events, {CLASS_KEY: f"{case_prefix}_{case_index}"}))
    return EventLog(traces)
