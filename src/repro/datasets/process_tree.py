"""Process trees: the control-flow skeletons of the synthetic logs.

The paper evaluates on 13 public BPI/4TU logs; this offline
reproduction replaces them with logs *played out* from randomly
generated process trees whose statistics are tuned to Table III.
Process trees are the standard block-structured formalism: leaves are
activities, inner nodes are operators —

* ``SEQ``  — children in order,
* ``XOR``  — exactly one child (weighted choice),
* ``AND``  — children interleaved,
* ``LOOP`` — first child, then with probability ``repeat_probability``
  the second child followed by the first again.

Random generation is fully seeded and parameterized by a target
activity count and operator mix, so every log in the collection is
reproducible bit-for-bit.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.exceptions import EventLogError


class Operator(enum.Enum):
    """Inner-node operators of a process tree."""

    SEQ = "seq"
    XOR = "xor"
    AND = "and"
    LOOP = "loop"


@dataclass
class ProcessTree:
    """A process-tree node.

    Leaves have a ``label`` and no children; inner nodes have an
    ``operator`` and at least one child.  ``weights`` parameterize XOR
    choices; ``repeat_probability`` parameterizes LOOP redo chances.
    """

    label: str | None = None
    operator: Operator | None = None
    children: list["ProcessTree"] = field(default_factory=list)
    weights: list[float] | None = None
    repeat_probability: float = 0.3

    def __post_init__(self):
        if self.label is None and self.operator is None:
            raise EventLogError("process-tree node needs a label or an operator")
        if self.label is not None and self.operator is not None:
            raise EventLogError("process-tree node cannot be both leaf and operator")
        if self.operator is Operator.LOOP and len(self.children) != 2:
            raise EventLogError("LOOP nodes need exactly two children (do, redo)")
        if self.operator is not None and not self.children:
            raise EventLogError(f"{self.operator.value} node needs children")
        if self.weights is not None and len(self.weights) != len(self.children):
            raise EventLogError("weights must parallel children")

    @property
    def is_leaf(self) -> bool:
        return self.label is not None

    def leaves(self) -> list[str]:
        """All activity labels in the subtree, in document order."""
        if self.is_leaf:
            return [self.label]
        labels: list[str] = []
        for child in self.children:
            labels.extend(child.leaves())
        return labels

    def depth(self) -> int:
        """Height of the subtree (leaves have depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def __repr__(self) -> str:
        if self.is_leaf:
            return self.label
        inner = ", ".join(repr(child) for child in self.children)
        return f"{self.operator.value}({inner})"


# -- convenience constructors ------------------------------------------------


def leaf(label: str) -> ProcessTree:
    """An activity leaf."""
    return ProcessTree(label=label)


def seq(*children: ProcessTree) -> ProcessTree:
    """A sequence node."""
    return ProcessTree(operator=Operator.SEQ, children=list(children))


def xor(*children: ProcessTree, weights: list[float] | None = None) -> ProcessTree:
    """An exclusive-choice node."""
    return ProcessTree(operator=Operator.XOR, children=list(children), weights=weights)


def par(*children: ProcessTree) -> ProcessTree:
    """A parallel node."""
    return ProcessTree(operator=Operator.AND, children=list(children))


def loop(do: ProcessTree, redo: ProcessTree, repeat_probability: float = 0.3) -> ProcessTree:
    """A loop node (``do``, optionally ``redo`` + ``do`` again)."""
    return ProcessTree(
        operator=Operator.LOOP,
        children=[do, redo],
        repeat_probability=repeat_probability,
    )


# -- random generation ---------------------------------------------------------


@dataclass(frozen=True)
class TreeSpec:
    """Parameters of random tree generation.

    ``operator_mix`` gives the relative odds of SEQ/XOR/AND/LOOP when
    an inner node is created; ``max_branch`` bounds the fan-out.
    """

    num_activities: int
    operator_mix: tuple[float, float, float, float] = (0.45, 0.30, 0.15, 0.10)
    max_branch: int = 4
    label_prefix: str = "act"


def random_tree(spec: TreeSpec, seed: int = 0) -> ProcessTree:
    """Generate a random process tree with exactly ``spec.num_activities`` leaves."""
    if spec.num_activities < 1:
        raise EventLogError("need at least one activity")
    rng = random.Random(seed)
    labels = [f"{spec.label_prefix}_{index:02d}" for index in range(spec.num_activities)]

    def build(slots: list[str], depth: int = 1) -> ProcessTree:
        if len(slots) == 1:
            return leaf(slots[0])
        operators = [Operator.SEQ, Operator.XOR, Operator.AND, Operator.LOOP]
        # Real processes are sequences of phases: pin the root to SEQ so
        # traces exercise several parts of the model (a XOR root would
        # yield one-branch traces and degenerate average lengths).
        if depth == 0:
            operator = Operator.SEQ
        else:
            operator = rng.choices(operators, weights=spec.operator_mix, k=1)[0]
        if operator is Operator.LOOP:
            if len(slots) < 2:
                operator = Operator.SEQ
            else:
                split = rng.randint(1, len(slots) - 1)
                return loop(
                    build(slots[:split], depth + 1),
                    build(slots[split:], depth + 1),
                    repeat_probability=rng.uniform(0.1, 0.4),
                )
        branch = min(len(slots), rng.randint(2, spec.max_branch))
        # Partition the slots into `branch` contiguous chunks.
        cut_points = sorted(rng.sample(range(1, len(slots)), branch - 1))
        chunks = []
        previous = 0
        for cut in cut_points + [len(slots)]:
            chunks.append(slots[previous:cut])
            previous = cut
        children = [build(chunk, depth + 1) for chunk in chunks]
        if operator is Operator.XOR:
            weights = [rng.uniform(0.5, 2.0) for _ in children]
            return xor(*children, weights=weights)
        if operator is Operator.AND:
            return par(*children)
        return seq(*children)

    return build(labels, depth=0)
