"""Attribute enrichment of played-out logs.

The constraint sets of the evaluation (Table IV) need categorical and
numerical event attributes: an executing role (``org:role``), an origin
system (``origin``), a per-event ``duration`` and a ``cost``, plus
timestamps.  This module attaches them deterministically:

* roles and origins are *class-level* attributes — every class is
  assigned one role/origin (classes are partitioned round-robin after a
  seeded shuffle), mirroring real logs where a process step belongs to
  one role/system;
* durations are drawn per event from a class-specific log-normal
  distribution (heavy-tailed, like real service times);
* costs are drawn per event from a class-specific uniform band;
* timestamps accumulate the durations along each trace from a fixed
  epoch, so duration- and gap-constraints see realistic values.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

from repro.eventlog.events import ROLE_KEY, TIMESTAMP_KEY, EventLog

#: Attribute key of the origin system (the case study's ``g.origin``).
ORIGIN_KEY = "origin"


@dataclass(frozen=True)
class AttributeSpec:
    """Parameters of the attribute enrichment.

    ``duration_scale`` is the median event duration in seconds;
    ``duration_sigma`` the log-normal shape (tail heaviness).
    """

    num_roles: int = 3
    num_origins: int = 3
    duration_scale: float = 600.0
    duration_sigma: float = 1.0
    waiting_class_fraction: float = 0.05
    waiting_scale_factor: float = 1200.0
    cost_range: tuple[float, float] = (10.0, 200.0)
    start: datetime = datetime(2021, 1, 4, 8, 0, tzinfo=timezone.utc)
    case_interarrival_seconds: float = 3600.0


def assign_class_attribute(
    classes: list[str], values: list[str], seed: int
) -> dict[str, str]:
    """Partition ``classes`` over ``values`` (seeded shuffle, round-robin)."""
    ordered = sorted(classes)
    rng = random.Random(seed)
    rng.shuffle(ordered)
    return {
        cls: values[index % len(values)] for index, cls in enumerate(ordered)
    }


def enrich_log(
    log: EventLog, spec: AttributeSpec | None = None, seed: int = 0
) -> EventLog:
    """Return a copy of ``log`` with roles, origins, durations, costs, timestamps."""
    spec = spec or AttributeSpec()
    rng = random.Random(seed + 1)
    classes = sorted(log.classes)

    roles = assign_class_attribute(
        classes, [f"role_{i}" for i in range(spec.num_roles)], seed + 2
    )
    origins = assign_class_attribute(
        classes, [f"sys_{i}" for i in range(spec.num_origins)], seed + 3
    )
    # Class-specific duration medians: spread around the global scale.
    # A fraction of classes are heavy-tailed "waiting" steps (queueing
    # for review, customer response times), whose day-scale durations
    # mirror the public BPI logs — these are what make the paper's
    # avg-duration constraint (set N, avg <= 5*10^5 s) actually bind.
    class_scale = {}
    for cls in classes:
        scale = spec.duration_scale * math.exp(rng.uniform(-1.0, 1.0))
        if rng.random() < spec.waiting_class_fraction:
            scale *= spec.waiting_scale_factor
        class_scale[cls] = scale
    class_cost_band = {
        cls: (
            rng.uniform(*spec.cost_range),
            rng.uniform(*spec.cost_range),
        )
        for cls in classes
    }

    enriched = log.copy()
    for case_index, trace in enumerate(enriched):
        clock = spec.start + timedelta(
            seconds=case_index * spec.case_interarrival_seconds
        )
        for event in trace:
            cls = event.event_class
            duration = rng.lognormvariate(
                math.log(class_scale[cls]), spec.duration_sigma
            )
            low, high = class_cost_band[cls]
            cost = rng.uniform(min(low, high), max(low, high))
            clock = clock + timedelta(seconds=duration)
            event.attributes[ROLE_KEY] = roles[cls]
            event.attributes[ORIGIN_KEY] = origins[cls]
            event.attributes["duration"] = round(duration, 1)
            event.attributes["cost"] = round(cost, 2)
            event.attributes[TIMESTAMP_KEY] = clock
    return enriched
