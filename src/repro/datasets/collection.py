"""The synthetic counterpart of the paper's 13-log collection (Table III).

Each entry mirrors one public 4TU/BPI log by its Table III key
statistics: number of event classes, traces, and (roughly, via the
generated tree's shape) average trace length and variant diversity.
The logs themselves are played out from seeded random process trees and
enriched with the attributes the constraint sets need — see DESIGN.md
for why this substitution preserves the behaviors GECCO exercises.

Because the paper's full trace counts (up to 150k) are testbed-scale,
:func:`build_collection` takes a ``max_traces`` cap (default 150) and a
``max_classes`` cap (default ``None``); the benchmark harness uses the
capped collection, and EXPERIMENTS.md reports results at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.attributes import AttributeSpec, enrich_log
from repro.datasets.playout import playout
from repro.datasets.process_tree import TreeSpec, random_tree
from repro.eventlog.events import EventLog


@dataclass(frozen=True)
class LogSpec:
    """One row of Table III, as generation parameters.

    ``operator_mix`` tunes SEQ/XOR/AND/LOOP odds so the generated log
    approximates the original's variability and trace length.
    """

    name: str
    reference: str
    num_classes: int
    num_traces: int
    paper_variants: int
    paper_avg_length: float
    operator_mix: tuple[float, float, float, float] = (0.45, 0.30, 0.15, 0.10)
    seed: int = 0


#: The 13 logs of Table III (references [14]–[26] of the paper).
TABLE_III_SPECS: list[LogSpec] = [
    LogSpec("road_fines", "[14]", 11, 150370, 231, 3.73, (0.55, 0.40, 0.03, 0.02), seed=114),
    LogSpec("bpic19", "[15]", 40, 75928, 3453, 6.35, (0.50, 0.35, 0.10, 0.05), seed=115),
    LogSpec("bpic14", "[16]", 39, 46616, 22632, 10.01, (0.35, 0.30, 0.20, 0.15), seed=116),
    LogSpec("bpic17", "[17]", 24, 31509, 5946, 16.41, (0.40, 0.25, 0.20, 0.15), seed=117),
    LogSpec("bpic18", "[18]", 39, 14550, 8627, 52.48, (0.30, 0.20, 0.20, 0.30), seed=118),
    LogSpec("bpic12", "[19]", 24, 13087, 4366, 20.04, (0.40, 0.25, 0.15, 0.20), seed=119),
    LogSpec("credit", "[20]", 8, 10035, 1, 15.00, (1.00, 0.00, 0.00, 0.00), seed=120),
    LogSpec("bpic20", "[21]", 51, 7065, 1478, 12.25, (0.50, 0.30, 0.12, 0.08), seed=121),
    LogSpec("bpic13", "[22]", 4, 1487, 183, 4.47, (0.40, 0.30, 0.15, 0.15), seed=122),
    LogSpec("wabo", "[23]", 27, 1434, 116, 5.98, (0.55, 0.35, 0.06, 0.04), seed=123),
    LogSpec("sepsis", "[24]", 16, 1050, 846, 14.49, (0.30, 0.30, 0.20, 0.20), seed=124),
    LogSpec("bpic15", "[25]", 70, 902, 295, 24.00, (0.55, 0.25, 0.12, 0.08), seed=125),
    LogSpec("ccc19", "[26]", 29, 20, 20, 69.70, (0.25, 0.15, 0.20, 0.40), seed=126),
]


def build_log(
    spec: LogSpec,
    max_traces: int | None = 150,
    max_classes: int | None = None,
    attribute_spec: AttributeSpec | None = None,
) -> EventLog:
    """Generate one collection log from its spec (seeded, deterministic)."""
    num_classes = spec.num_classes
    if max_classes is not None:
        num_classes = min(num_classes, max_classes)
    num_traces = spec.num_traces
    if max_traces is not None:
        num_traces = min(num_traces, max_traces)
    tree = random_tree(
        TreeSpec(
            num_activities=num_classes,
            operator_mix=spec.operator_mix,
            label_prefix=spec.name,
        ),
        seed=spec.seed,
    )
    log = playout(tree, num_traces, seed=spec.seed, case_prefix=spec.name)
    log = enrich_log(log, attribute_spec, seed=spec.seed)
    log.attributes["concept:name"] = spec.name
    log.attributes["gecco:reference"] = spec.reference
    return log


def build_collection(
    max_traces: int | None = 150,
    max_classes: int | None = None,
    specs: list[LogSpec] | None = None,
) -> dict[str, EventLog]:
    """Generate the full (scaled) 13-log collection, keyed by name."""
    return {
        spec.name: build_log(spec, max_traces=max_traces, max_classes=max_classes)
        for spec in (specs or TABLE_III_SPECS)
    }
