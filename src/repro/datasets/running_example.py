"""The paper's running example (Table I): a request-handling process.

Four traces over eight event classes.  Clerk steps: receive request
(``rcp``), casual/thorough check (``ckc``/``ckt``), assign priority
(``prio``), inform customer (``inf``), archive (``arv``).  Manager
steps: accept (``acc``) or reject (``rej``).  Trace ``σ4`` loops: a
rejected request is resubmitted and accepted in the second round.

Events carry ``org:role`` (clerk/manager), a numeric ``duration``
(minutes) and evenly spaced timestamps so every constraint category can
be demonstrated on this log.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

from repro.eventlog.events import CLASS_KEY, ROLE_KEY, TIMESTAMP_KEY, Event, EventLog, Trace

#: The role performing each process step.
ROLES: dict[str, str] = {
    "rcp": "clerk",
    "ckc": "clerk",
    "ckt": "clerk",
    "prio": "clerk",
    "inf": "clerk",
    "arv": "clerk",
    "acc": "manager",
    "rej": "manager",
}

#: Nominal duration (minutes) of each step, used by duration constraints.
DURATIONS: dict[str, float] = {
    "rcp": 5.0,
    "ckc": 10.0,
    "ckt": 30.0,
    "acc": 15.0,
    "rej": 15.0,
    "prio": 5.0,
    "inf": 10.0,
    "arv": 5.0,
}

#: The four traces of Table I.
VARIANTS: list[list[str]] = [
    ["rcp", "ckc", "acc", "prio", "inf", "arv"],
    ["rcp", "ckt", "rej", "prio", "arv", "inf"],
    ["rcp", "ckc", "acc", "inf", "arv"],
    ["rcp", "ckc", "rej", "rcp", "ckt", "acc", "prio", "arv", "inf"],
]

#: The grouping GECCO finds for the role constraint (paper §II / Fig. 7).
PAPER_OPTIMAL_GROUPS: list[frozenset[str]] = [
    frozenset({"rcp", "ckc", "ckt"}),
    frozenset({"prio", "inf", "arv"}),
    frozenset({"acc"}),
    frozenset({"rej"}),
]

#: The distance the paper reports for that grouping (Fig. 7).
PAPER_OPTIMAL_DISTANCE = 3.08


def running_example_log() -> EventLog:
    """Build the Table I log with roles, durations and timestamps."""
    base = datetime(2021, 3, 1, 9, 0, tzinfo=timezone.utc)
    traces = []
    for case_index, variant in enumerate(VARIANTS):
        events = []
        for step_index, cls in enumerate(variant):
            events.append(
                Event(
                    cls,
                    {
                        ROLE_KEY: ROLES[cls],
                        "duration": DURATIONS[cls],
                        TIMESTAMP_KEY: base
                        + timedelta(days=case_index, hours=step_index),
                    },
                )
            )
        traces.append(Trace(events, {CLASS_KEY: f"sigma_{case_index + 1}"}))
    return EventLog(traces, {CLASS_KEY: "running-example"})


def interleaving_trace() -> Trace:
    """The paper's ``σ5`` (§V-D): clerk activities interleave with ``acc``."""
    base = datetime(2021, 3, 10, 9, 0, tzinfo=timezone.utc)
    variant = ["rcp", "ckc", "prio", "acc", "inf", "arv"]
    events = [
        Event(
            cls,
            {
                ROLE_KEY: ROLES[cls],
                "duration": DURATIONS[cls],
                TIMESTAMP_KEY: base + timedelta(hours=index),
            },
        )
        for index, cls in enumerate(variant)
    ]
    return Trace(events, {CLASS_KEY: "sigma_5"})
