"""Datasets: running example, synthetic collection, and case-study log."""

from repro.datasets.attributes import ORIGIN_KEY, AttributeSpec, enrich_log
from repro.datasets.collection import (
    TABLE_III_SPECS,
    LogSpec,
    build_collection,
    build_log,
)
from repro.datasets.loan_process import loan_application_log
from repro.datasets.playout import playout, simulate_variants
from repro.datasets.process_tree import (
    Operator,
    ProcessTree,
    TreeSpec,
    leaf,
    loop,
    par,
    random_tree,
    seq,
    xor,
)
from repro.datasets.running_example import (
    PAPER_OPTIMAL_DISTANCE,
    PAPER_OPTIMAL_GROUPS,
    ROLES,
    interleaving_trace,
    running_example_log,
)

__all__ = [
    "ORIGIN_KEY",
    "AttributeSpec",
    "enrich_log",
    "TABLE_III_SPECS",
    "LogSpec",
    "build_collection",
    "build_log",
    "loan_application_log",
    "playout",
    "simulate_variants",
    "Operator",
    "ProcessTree",
    "TreeSpec",
    "leaf",
    "loop",
    "par",
    "random_tree",
    "seq",
    "xor",
    "PAPER_OPTIMAL_DISTANCE",
    "PAPER_OPTIMAL_GROUPS",
    "ROLES",
    "interleaving_trace",
    "running_example_log",
]
