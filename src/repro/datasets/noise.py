"""Noise injection for robustness experiments.

Real logs are noisy: events get logged out of order, duplicated,
dropped, or attributed to the wrong case.  These seeded operators
corrupt a clean log in controlled ways so robustness of abstraction
(and of the drift detector) can be quantified:

* :func:`swap_noise` — swap adjacent events within traces;
* :func:`drop_noise` — remove events;
* :func:`duplicate_noise` — duplicate events in place;
* :func:`insert_noise` — insert spurious events of existing classes at
  random positions;
* :func:`apply_noise` — a composite with per-operator rates.

All operators preserve determinism per seed and never produce empty
traces (a corrupted trace keeps at least one event).
"""

from __future__ import annotations

import random

from repro.eventlog.events import EventLog, Trace
from repro.exceptions import EventLogError


def _validated_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise EventLogError(f"noise rate must be in [0, 1], got {rate}")
    return rate


def swap_noise(log: EventLog, rate: float, seed: int = 0) -> EventLog:
    """Swap each adjacent event pair with probability ``rate``."""
    _validated_rate(rate)
    rng = random.Random(seed)
    traces = []
    for trace in log:
        events = [event.copy() for event in trace]
        position = 0
        while position < len(events) - 1:
            if rng.random() < rate:
                events[position], events[position + 1] = (
                    events[position + 1],
                    events[position],
                )
                position += 2  # do not re-swap the moved event
            else:
                position += 1
        traces.append(Trace(events, dict(trace.attributes)))
    return EventLog(traces, dict(log.attributes))


def drop_noise(log: EventLog, rate: float, seed: int = 0) -> EventLog:
    """Drop each event with probability ``rate`` (keeping >= 1 per trace)."""
    _validated_rate(rate)
    rng = random.Random(seed)
    traces = []
    for trace in log:
        events = [event.copy() for event in trace if rng.random() >= rate]
        if not events and len(trace):
            events = [trace[0].copy()]
        traces.append(Trace(events, dict(trace.attributes)))
    return EventLog(traces, dict(log.attributes))


def duplicate_noise(log: EventLog, rate: float, seed: int = 0) -> EventLog:
    """Duplicate each event in place with probability ``rate``."""
    _validated_rate(rate)
    rng = random.Random(seed)
    traces = []
    for trace in log:
        events = []
        for event in trace:
            events.append(event.copy())
            if rng.random() < rate:
                events.append(event.copy())
        traces.append(Trace(events, dict(trace.attributes)))
    return EventLog(traces, dict(log.attributes))


def insert_noise(log: EventLog, rate: float, seed: int = 0) -> EventLog:
    """Insert a random existing-class event per position with probability ``rate``."""
    _validated_rate(rate)
    rng = random.Random(seed)
    classes = sorted(log.classes)
    if not classes:
        return log.copy()
    # Sample prototype events per class so inserted events carry
    # realistic attributes.
    prototypes = {}
    for trace in log:
        for event in trace:
            prototypes.setdefault(event.event_class, event)
    traces = []
    for trace in log:
        events = []
        for event in trace:
            if rng.random() < rate:
                events.append(prototypes[rng.choice(classes)].copy())
            events.append(event.copy())
        traces.append(Trace(events, dict(trace.attributes)))
    return EventLog(traces, dict(log.attributes))


def apply_noise(
    log: EventLog,
    swap: float = 0.0,
    drop: float = 0.0,
    duplicate: float = 0.0,
    insert: float = 0.0,
    seed: int = 0,
) -> EventLog:
    """Apply all four operators in a fixed order (swap, drop, dup, insert)."""
    noisy = swap_noise(log, swap, seed=seed) if swap else log.copy()
    if drop:
        noisy = drop_noise(noisy, drop, seed=seed + 1)
    if duplicate:
        noisy = duplicate_noise(noisy, duplicate, seed=seed + 2)
    if insert:
        noisy = insert_noise(noisy, insert, seed=seed + 3)
    return noisy
