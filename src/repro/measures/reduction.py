"""Abstraction-degree measures: size reduction and complexity reduction.

* **Size reduction** compares the number of high-level activities to
  the number of original event classes: ``1 - |G| / |C_L|`` (a log
  abstracted from 24 classes to 8 groups scores 0.67).
* **Complexity reduction** compares the control-flow complexity of
  models discovered (with the same algorithm and parameters) from the
  original and the abstracted log: ``1 - CFC(L') / CFC(L)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.eventlog.events import EventLog
from repro.mining.complexity import control_flow_complexity
from repro.mining.discovery import DiscoveryParameters, discover_model


def size_reduction(num_groups: int, num_classes: int) -> float:
    """``1 - |G| / |C_L|`` (0 when nothing was merged)."""
    if num_classes <= 0:
        return 0.0
    return 1.0 - num_groups / num_classes


def size_reduction_of(grouping: Iterable[Iterable[str]], log: EventLog) -> float:
    """Size reduction of an explicit grouping over ``log``."""
    groups = list(grouping)
    return size_reduction(len(groups), len(log.classes))


def variant_reduction(original: EventLog, abstracted: EventLog) -> float:
    """``1 - variants(L') / variants(L)``.

    Behavioral variability is what makes low-level logs unreadable
    (§II); grouping classes collapses variants, and this measure
    quantifies by how much.  0 when nothing collapsed; negative values
    are impossible for completion-only abstraction of the same traces.
    """
    from repro.eventlog.variants import variant_count

    original_variants = variant_count(original)
    if original_variants == 0:
        return 0.0
    return 1.0 - variant_count(abstracted) / original_variants


def complexity_reduction(
    original: EventLog,
    abstracted: EventLog,
    parameters: DiscoveryParameters | None = None,
) -> float:
    """``1 - CFC(model(L')) / CFC(model(L))``.

    When the original model already has zero complexity (a purely
    sequential process), the reduction is 0 by convention.  The value
    can be negative if abstraction *added* complexity (observed for
    poor baselines).
    """
    parameters = parameters or DiscoveryParameters()
    original_cfc = control_flow_complexity(discover_model(original, parameters))
    abstracted_cfc = control_flow_complexity(discover_model(abstracted, parameters))
    if original_cfc == 0:
        return 0.0
    return 1.0 - abstracted_cfc / original_cfc
