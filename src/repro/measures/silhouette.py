"""Silhouette coefficient of a grouping (cluster-quality measure).

For each event class ``i`` in group ``A``:

* ``a(i)`` — mean distance to the other members of ``A``;
* ``b(i)`` — the smallest, over other groups ``B``, mean distance to
  the members of ``B``;
* ``s(i) = (b(i) - a(i)) / max(a(i), b(i))``.

Classes in singleton groups contribute ``s(i) = 0`` (the standard
convention).  The grouping's coefficient is the mean over all classes;
values near 1 indicate cohesive, well-separated groups, values below 0
indicate classes closer to another group than to their own (the paper's
BL_Q baseline lands there).
"""

from __future__ import annotations

from collections.abc import Iterable

try:  # pragma: no cover - exercised by the numpy-absent CI smoke
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.eventlog.events import EventLog
from repro.exceptions import GroupingError
from repro.measures.positional import positional_distance_matrix


def silhouette_from_matrix(
    grouping: Iterable[Iterable[str]],
    classes: list[str],
    matrix: np.ndarray,
) -> float:
    """Silhouette coefficient from a precomputed distance matrix."""
    if np is None:
        raise ImportError("the silhouette measures require numpy")
    groups = [frozenset(group) for group in grouping]
    index = {cls: position for position, cls in enumerate(classes)}
    for group in groups:
        unknown = [cls for cls in group if cls not in index]
        if unknown:
            raise GroupingError(f"classes missing from distance matrix: {unknown}")
    if len(groups) <= 1:
        return 0.0

    scores: list[float] = []
    for group in groups:
        members = [index[cls] for cls in group]
        others = [
            [index[cls] for cls in other] for other in groups if other != group
        ]
        for i in members:
            if len(members) == 1:
                scores.append(0.0)
                continue
            within = [matrix[i, j] for j in members if j != i]
            a_i = float(np.mean(within))
            b_i = min(
                float(np.mean([matrix[i, j] for j in other])) for other in others
            )
            denominator = max(a_i, b_i)
            scores.append(0.0 if denominator == 0 else (b_i - a_i) / denominator)
    return float(np.mean(scores)) if scores else 0.0


def silhouette_coefficient(
    log: EventLog, grouping: Iterable[Iterable[str]]
) -> float:
    """Silhouette coefficient of ``grouping`` over ``log``'s classes."""
    classes, matrix = positional_distance_matrix(log)
    return silhouette_from_matrix(grouping, classes, matrix)
