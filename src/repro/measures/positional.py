"""Pairwise positional distance between event classes.

The paper's silhouette coefficient is computed over a "standard measure
for the pair-wise distance between event classes, which considers their
average positional distance" (following the fuzzy-miner proximity of
Günther & van der Aalst).  For two classes ``a`` and ``b`` the distance
is the average absolute difference between their mean positions within
the traces where both occur.  Class pairs that never co-occur receive
the largest observed distance plus one, making them maximally
dissimilar without distorting the scale.
"""

from __future__ import annotations

import itertools

try:  # pragma: no cover - exercised by the numpy-absent CI smoke
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.eventlog.events import EventLog


def class_position_profiles(log: EventLog) -> list[dict[str, float]]:
    """Per trace, the mean event position of each occurring class."""
    profiles = []
    for trace in log:
        positions: dict[str, list[int]] = {}
        for index, event in enumerate(trace):
            positions.setdefault(event.event_class, []).append(index)
        profiles.append(
            {cls: sum(values) / len(values) for cls, values in positions.items()}
        )
    return profiles


def positional_distance_matrix(
    log: EventLog,
) -> "tuple[list[str], np.ndarray]":
    """The symmetric positional-distance matrix over the log's classes.

    Returns the class ordering and an ``(n, n)`` array; the diagonal is
    zero.  Never-co-occurring pairs get ``max(observed) + 1``.
    """
    if np is None:
        raise ImportError("the positional-distance measures require numpy")
    classes = sorted(log.classes)
    index = {cls: position for position, cls in enumerate(classes)}
    n = len(classes)
    totals = np.zeros((n, n))
    counts = np.zeros((n, n))
    for profile in class_position_profiles(log):
        present = sorted(profile)
        for cls_a, cls_b in itertools.combinations(present, 2):
            i, j = index[cls_a], index[cls_b]
            difference = abs(profile[cls_a] - profile[cls_b])
            totals[i, j] += difference
            totals[j, i] += difference
            counts[i, j] += 1
            counts[j, i] += 1

    matrix = np.zeros((n, n))
    observed = counts > 0
    matrix[observed] = totals[observed] / counts[observed]
    if observed.any():
        penalty = matrix[observed].max() + 1.0
    else:
        penalty = 1.0
    never = ~observed
    np.fill_diagonal(never, False)
    matrix[never] = penalty
    return classes, matrix
