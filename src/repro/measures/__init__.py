"""Evaluation measures: size/complexity reduction and silhouette."""

from repro.measures.positional import (
    class_position_profiles,
    positional_distance_matrix,
)
from repro.measures.reduction import (
    complexity_reduction,
    size_reduction,
    size_reduction_of,
    variant_reduction,
)
from repro.measures.silhouette import silhouette_coefficient, silhouette_from_matrix

__all__ = [
    "class_position_profiles",
    "positional_distance_matrix",
    "complexity_reduction",
    "size_reduction",
    "size_reduction_of",
    "variant_reduction",
    "silhouette_coefficient",
    "silhouette_from_matrix",
]
