"""GECCO: constraint-driven abstraction of low-level event logs.

A from-scratch reproduction of Rebmann, Weidlich & van der Aa,
*GECCO: Constraint-driven Abstraction of Low-level Event Logs*,
ICDE 2022 (arXiv:2112.01897).

The top-level namespace re-exports the public API; see ``README.md``
for a tour and ``DESIGN.md`` for the system inventory.
"""

from repro.constraints import ConstraintSet
from repro.core import (
    AbstractionResult,
    Gecco,
    GeccoConfig,
    Grouping,
    abstract_log,
    dfg_candidates,
    exhaustive_candidates,
)
from repro.core.distance import DistanceFunction
from repro.eventlog import Event, EventLog, Trace, compute_dfg

__version__ = "1.1.0"

__all__ = [
    "ConstraintSet",
    "AbstractionResult",
    "Gecco",
    "GeccoConfig",
    "Grouping",
    "abstract_log",
    "dfg_candidates",
    "exhaustive_candidates",
    "DistanceFunction",
    "Event",
    "EventLog",
    "Trace",
    "compute_dfg",
    "__version__",
]
