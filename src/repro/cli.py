"""Command-line interface: ``gecco`` / ``python -m repro``.

Subcommands
-----------
``abstract``
    Abstract a log (XES or CSV) under a JSON constraint specification
    and write the abstracted log::

        gecco abstract log.xes --constraints constraints.json \
            --strategy dfg --output abstracted.xes

``stats``
    Print the Table III statistics of a log.

``dfg``
    Print a log's DFG as DOT (optionally 80/20-filtered).

``demo``
    Run the paper's running example end to end and print the groups.

``constraint-types``
    List the constraint types accepted in JSON specifications.

``batch``
    Run a JSONL manifest of abstraction jobs through the service
    runtime (:mod:`repro.service`) — multi-core, cache-backed::

        gecco batch jobs.jsonl --workers 4 --output results.jsonl

``serve``
    Long-lived line-JSON request/response loop (stdin/stdout, or a TCP
    socket with ``--port``) over a warm artifact cache.

``worker``
    Join a distributed fleet: claim and run jobs from a broker queue
    until stopped (see ``docs/operations.md``)::

        gecco worker --broker fs:///shared/queue --cache-dir /shared/cache

    ``batch`` and ``serve`` accept the same ``--broker URL`` to
    dispatch through the distributed executor instead of the
    in-process pool.

``fleet``
    Supervise ``N`` local worker processes against one broker:
    crashed workers are restarted with seeded backoff, crash-looping
    slots are quarantined, and SIGTERM drains the fleet gracefully::

        gecco fleet --workers 4 --broker fs:///shared/queue \
            --cache-dir /shared/cache --trace /shared/trace.jsonl

``fsck``
    Scan (and repair) a disk store and/or an fs-broker directory:
    checksum-verify every entry, quarantine corruption, drop orphaned
    leases and stale staging files::

        gecco fsck --cache-dir /shared/cache --broker fs:///shared/queue --json

``doctor``
    Offline failure forensics over the structured traces that
    ``batch`` / ``serve`` / ``worker`` write with ``--trace PATH``
    (see :mod:`repro.obs` and ``docs/observability.md``)::

        gecco doctor /shared/trace.jsonl worker-host2.jsonl --json

    ``--recommend`` appends evidence-backed tuning suggestions.
    ``serve`` and ``worker`` additionally expose live counters in
    Prometheus text format with ``--metrics-port N`` (scrape
    ``http://127.0.0.1:N/metrics``; ``0`` binds an ephemeral port
    that is printed and traced).

``top``
    Live dashboard over the same traces while the fleet is running —
    tails the files incrementally (rotation-aware) and renders
    rolling-window stage latencies, worker liveness, queue depth, and
    the failure taxonomy::

        gecco top /shared/trace.jsonl            # refresh loop
        gecco top /shared/trace.jsonl --once --json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.constraints.parser import known_constraint_types, parse_constraints
from repro.core.gecco import Gecco, GeccoConfig
from repro.eventlog import csv_io, xes
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import EventLog
from repro.eventlog.statistics import describe
from repro.exceptions import ReproError
from repro.experiments.figures import dfg_to_dot


def _load_log(path: str) -> EventLog:
    suffix = Path(path).suffix.lower()
    if suffix == ".xes":
        return xes.load(path)
    if suffix == ".csv":
        return csv_io.read_csv(path)
    raise ReproError(f"unsupported log format {suffix!r} (use .xes or .csv)")


def _save_log(log: EventLog, path: str) -> None:
    suffix = Path(path).suffix.lower()
    if suffix == ".xes":
        xes.dump(log, path)
    elif suffix == ".csv":
        csv_io.write_csv(log, path)
    else:
        raise ReproError(f"unsupported output format {suffix!r} (use .xes or .csv)")


def _cmd_abstract(args: argparse.Namespace) -> int:
    log = _load_log(args.log)
    specs = json.loads(Path(args.constraints).read_text(encoding="utf-8"))
    constraints = parse_constraints(specs)
    beam_width: int | str | None
    if args.beam_width == "auto":
        beam_width = "auto"
    elif args.beam_width is None:
        beam_width = None
    else:
        beam_width = int(args.beam_width)
    config = GeccoConfig(
        strategy=args.strategy,
        beam_width=beam_width,
        abstraction_strategy=args.abstraction,
        solver=args.solver,
        selection=args.selection,
        selection_workers=args.selection_workers,
        candidate_timeout=args.timeout,
        engine=args.engine,
    )
    result = Gecco(constraints, config).abstract(log)
    if not result.feasible:
        print("INFEASIBLE: no grouping satisfies the constraints.", file=sys.stderr)
        if result.infeasibility is not None:
            print(result.infeasibility.summary(), file=sys.stderr)
        return 2
    print(f"grouping ({len(result.grouping)} groups, dist={result.distance:.3f}):")
    for group in sorted(result.grouping, key=lambda g: sorted(g)[0]):
        print(f"  {result.grouping.label_of(group)}: {{{', '.join(sorted(group))}}}")
    if args.output:
        _save_log(result.abstracted_log, args.output)
        print(f"abstracted log written to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = describe(_load_log(args.log))
    for key, value in stats.as_row().items():
        print(f"{key}: {value}")
    print(f"Events: {stats.num_events}")
    return 0


def _cmd_dfg(args: argparse.Namespace) -> int:
    log = _load_log(args.log)
    print(dfg_to_dot(compute_dfg(log), keep_fraction=args.keep, title=args.log))
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.constraints import ConstraintSet, MaxDistinctClassAttribute
    from repro.datasets import running_example_log
    from repro.eventlog.events import ROLE_KEY

    log = running_example_log()
    constraints = ConstraintSet([MaxDistinctClassAttribute(ROLE_KEY, 1)])
    result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)
    print("running example, constraint |g.role| <= 1 (paper Fig. 7):")
    print(f"  distance: {result.distance:.3f} (paper reports 3.08)")
    for group in sorted(result.grouping, key=lambda g: sorted(g)[0]):
        print(f"  {result.grouping.label_of(group)}: {{{', '.join(sorted(group))}}}")
    for trace, abstracted in zip(log, result.abstracted_log):
        original = ", ".join(event.event_class for event in trace)
        lifted = ", ".join(event.event_class for event in abstracted)
        print(f"  <{original}>  ->  <{lifted}>")
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    log = _load_log(args.log)
    if args.algorithm == "inductive":
        from repro.mining.inductive import inductive_miner, tree_size

        tree = inductive_miner(log)
        print(f"process tree ({tree_size(tree)} nodes):")
        print(f"  {tree!r}")
    elif args.algorithm == "alpha":
        from repro.mining.alpha import alpha_miner
        from repro.mining.petri import petri_to_dot, token_replay

        net = alpha_miner(log)
        replay = token_replay(net, log)
        print(f"{net}; replay fitness {replay.fitness:.3f} "
              f"({replay.fitting_traces}/{replay.total_traces} traces fit)")
        if args.dot:
            print(petri_to_dot(net, title=args.log))
    else:
        from repro.mining.complexity import complexity_report
        from repro.mining.discovery import discover_model

        model = discover_model(log)
        report = complexity_report(model)
        print(f"{model}; CFC {report.cfc}, size {report.size}, "
              f"CNC {report.cnc:.2f}")
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    from repro.constraints.suggestion import suggest_constraints

    log = _load_log(args.log)
    suggestions = suggest_constraints(log, limit=args.limit)
    if not suggestions:
        print("no constraint suggestions for this log")
        return 0
    print(f"suggested constraints for {args.log}:")
    for suggestion in suggestions:
        print(f"  {suggestion.describe()}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import reproduce_all

    summary = reproduce_all(
        args.output,
        max_traces=args.max_traces,
        max_classes=args.max_classes,
        candidate_timeout=args.timeout,
        include_exhaustive=not args.no_exhaustive,
    )
    print(summary.describe())
    return 0


def _cmd_constraint_types(_args: argparse.Namespace) -> int:
    for name in known_constraint_types():
        print(name)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.service import load_manifest, run_batch

    jobs = load_manifest(args.manifest)
    if args.deadline_ms is not None:
        # A batch-wide default budget; manifest rows with their own
        # deadline_ms keep it.
        for job in jobs:
            if job.deadline_ms is None:
                job.deadline_ms = args.deadline_ms
    report = run_batch(
        jobs,
        workers=args.workers,
        output=args.output,
        include_log=args.include_log,
        disk_dir=args.cache_dir,
        broker=args.broker,
        max_load=args.max_load,
        trace=args.trace,
        trace_rotate_mb=args.trace_rotate_mb,
        run_dir=args.run_dir,
        resume=args.resume,
    )
    if args.output is None:
        for row in report.rows:
            print(json.dumps(row))
    print(
        f"batch: {len(report.rows)} jobs ({report.solved()} solved, "
        f"{report.cache_hits()} served from cache) in {report.seconds:.2f}s "
        f"({report.jobs_per_second:.2f} jobs/s, workers={args.workers}); "
        f"artifact builds={report.artifact_builds()}",
        file=sys.stderr,
    )
    if report.journal:
        print(
            f"journal: replayed={report.journal['replayed']} "
            f"computed={report.journal['computed']} "
            f"skipped_lines={report.journal['skipped_lines']} "
            f"(run dir {args.run_dir})",
            file=sys.stderr,
        )
    if args.output:
        print(f"results written to {args.output}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import make_executor, serve_loop, serve_socket

    executor = make_executor(
        workers=args.workers,
        disk_dir=args.cache_dir,
        broker=args.broker,
        max_load=args.max_load,
        trace=args.trace,
        trace_rotate_mb=args.trace_rotate_mb,
    )
    metrics_server = None
    observer = None
    if args.metrics_port is not None:
        from repro.obs import MetricsRegistry, MetricsServer, sync_executor_stats

        registry = MetricsRegistry()
        durations = registry.histogram(
            "repro_job_duration_seconds",
            "end-to-end seconds per served job (cache hits included)",
        )
        outcomes = registry.counter(
            "repro_jobs_total", "served jobs by outcome (ok/cached/error)"
        )

        def observer(response, _hist=durations, _count=outcomes):
            # Control responses (ping/stats/shutdown) carry no job row.
            if response.get("ok"):
                if "fingerprint" not in response:
                    return
                outcome = "cached" if response.get("cached") else "ok"
            else:
                outcome = "error"
            _count.inc(outcome=outcome)
            _hist.observe(float(response.get("seconds") or 0.0))

        metrics_server = MetricsServer(
            registry,
            port=args.metrics_port,
            refresh=lambda: sync_executor_stats(registry, executor.stats()),
        )
        print(f"metrics endpoint on {metrics_server.url}", file=sys.stderr)
        tracer = getattr(executor, "tracer", None)
        if tracer is not None:
            tracer.emit(
                "metrics_endpoint",
                port=metrics_server.port,
                url=metrics_server.url,
            )
    try:
        if args.port is not None:
            print(
                f"serving on {args.host}:{args.port} (workers={args.workers})",
                file=sys.stderr,
            )
            served = serve_socket(
                args.host,
                args.port,
                executor,
                max_requests=args.max_requests,
                conn_timeout=args.conn_timeout,
                observer=observer,
            )
        else:
            served = serve_loop(sys.stdin, sys.stdout, executor,
                                observer=observer)
    finally:
        if metrics_server is not None:
            metrics_server.close()
        executor.shutdown()
    print(f"served {served} requests", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.cache import ArtifactCache
    from repro.service.dist.chaos import ChaosBroker, ChaosConfig
    from repro.service.dist.worker import WorkerStats, default_worker_id, worker_loop

    print(
        f"worker joining broker {args.broker} "
        f"(lease={args.lease}s, cache_dir={args.cache_dir})",
        file=sys.stderr,
    )
    broker = args.broker
    chaos = ChaosConfig.from_args(args)
    if chaos.any_faults():
        from repro.service.dist.broker import connect_broker

        print(
            f"chaos: injecting faults with seed={chaos.seed} "
            "(fault schedules are deterministic per seed)",
            file=sys.stderr,
        )
        broker = ChaosBroker(connect_broker(args.broker), chaos)
    cache = ArtifactCache(disk_dir=args.cache_dir)
    stats = WorkerStats(worker=args.worker_id or default_worker_id())
    tracer = None
    if args.trace is not None:
        from repro.obs.trace import TraceWriter

        tracer = TraceWriter(
            args.trace, worker=stats.worker,
            rotate_mb=args.trace_rotate_mb,
        )
    metrics_server = None
    observer = None
    if args.metrics_port is not None:
        from repro.obs import MetricsRegistry, MetricsServer, sync_worker_stats

        registry = MetricsRegistry()
        durations = registry.histogram(
            "repro_job_duration_seconds",
            "seconds per completed task on this worker",
        )
        outcomes = registry.counter(
            "repro_jobs_total", "completed tasks by outcome (ok/error)"
        )

        def observer(outcome, seconds, _hist=durations, _count=outcomes):
            _count.inc(outcome=outcome)
            _hist.observe(seconds)

        def refresh():
            stats.cache = cache.snapshot()
            sync_worker_stats(registry, stats)

        metrics_server = MetricsServer(
            registry, port=args.metrics_port, refresh=refresh
        )
        print(f"metrics endpoint on {metrics_server.url}", file=sys.stderr)
        if tracer is not None:
            tracer.emit(
                "metrics_endpoint",
                port=metrics_server.port,
                url=metrics_server.url,
            )
    try:
        stats = worker_loop(
            broker,
            cache=cache,
            worker_id=args.worker_id,
            lease=args.lease,
            poll_interval=args.poll_interval,
            max_tasks=args.max_tasks,
            idle_exit=args.idle_exit,
            max_attempts=args.max_attempts,
            trace=tracer if tracer is not None else args.trace,
            stats=stats,
            observer=observer,
        )
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if broker is not args.broker:
            broker.close()
    print(
        f"worker {stats.worker} exiting: {stats.completed} completed, "
        f"{stats.failed} failed, {stats.quarantined} quarantined, "
        f"{stats.requeued} requeued for the fleet",
        file=sys.stderr,
    )
    print(json.dumps(stats.as_dict()))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.service.dist.chaos import ChaosConfig
    from repro.service.supervisor import FleetSupervisor

    chaos = ChaosConfig.from_args(args)
    print(
        f"fleet: supervising {args.workers} workers on {args.broker} "
        f"(crash-loop policy: {args.max_restarts} restarts "
        f"in {args.restart_window}s quarantines the slot)",
        file=sys.stderr,
    )
    if chaos.any_faults():
        print(
            f"chaos: injecting faults with seed={chaos.seed} "
            "(fault schedules are deterministic per seed)",
            file=sys.stderr,
        )
    supervisor = FleetSupervisor(
        args.broker,
        workers=args.workers,
        cache_dir=args.cache_dir,
        lease=args.lease,
        poll_interval=args.poll_interval,
        trace=args.trace,
        trace_rotate_mb=args.trace_rotate_mb,
        restart_window=args.restart_window,
        max_restarts=args.max_restarts,
        idle_exit=args.idle_exit,
        chaos=chaos if chaos.any_faults() else None,
        drain_timeout=args.drain_timeout,
    )
    report = supervisor.run()
    print(
        f"fleet drained ({report['drained_by']}): "
        f"{report['restarts']} restarts, "
        f"{len(report['quarantined_slots'])} slots quarantined",
        file=sys.stderr,
    )
    print(json.dumps(report))
    return 0 if not report["quarantined_slots"] else 3


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.service.fsck import fsck_report, render_fsck

    report = fsck_report(
        cache_dir=args.cache_dir, broker=args.broker,
        repair=not args.no_repair,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_fsck(report))
    totals = report["totals"]
    if totals["quarantined"] and args.no_repair:
        return 4  # rot found and left in place
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.obs.doctor import main_doctor

    out = main_doctor(
        args.traces, as_json=args.json, recommend_flag=args.recommend
    )
    print(out, end="" if out.endswith("\n") else "\n")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.live import main_top

    return main_top(
        args.traces,
        once=args.once,
        as_json=args.json,
        interval=args.interval,
        window=args.window,
    )


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared deterministic fault-injection flag group."""
    chaos = parser.add_argument_group(
        "chaos", "deterministic fault injection (resilience drills; "
        "all rates in [0, 1], 0 = off)"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="fault schedule seed (same seed = same schedule)",
    )
    chaos.add_argument(
        "--chaos-claim-failure-rate", type=float, default=0.0,
        help="probability a claim call fails",
    )
    chaos.add_argument(
        "--chaos-heartbeat-drop-rate", type=float, default=0.0,
        help="probability a heartbeat is dropped",
    )
    chaos.add_argument(
        "--chaos-complete-duplicate-rate", type=float, default=0.0,
        help="probability a completion is delivered twice",
    )
    chaos.add_argument(
        "--chaos-complete-delay-rate", type=float, default=0.0,
        help="probability a result is withheld for a few polls",
    )
    chaos.add_argument(
        "--chaos-corrupt-claim-rate", type=float, default=0.0,
        help="probability a first-delivery payload is corrupted in flight",
    )
    chaos.add_argument(
        "--chaos-put-failure-rate", type=float, default=0.0,
        help="probability an enqueue is refused",
    )
    chaos.add_argument(
        "--chaos-kill-rate", type=float, default=0.0,
        help="probability the worker SIGKILLs itself right after a "
        "first-delivery claim (crash-recovery drills)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="gecco",
        description="Constraint-driven abstraction of low-level event logs (ICDE 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    abstract = sub.add_parser("abstract", help="abstract a log under constraints")
    abstract.add_argument("log", help="input log (.xes or .csv)")
    abstract.add_argument("--constraints", required=True, help="JSON constraint spec")
    abstract.add_argument("--output", help="output log path (.xes or .csv)")
    abstract.add_argument(
        "--strategy", choices=("dfg", "exhaustive"), default="dfg"
    )
    abstract.add_argument(
        "--beam-width", default=None, help="beam width k, an int or 'auto'"
    )
    abstract.add_argument(
        "--engine",
        choices=("compiled", "python"),
        default="compiled",
        help="pipeline engine: integer-encoded hot path or pure-Python reference",
    )
    abstract.add_argument(
        "--abstraction", choices=("complete", "start_complete"), default="complete"
    )
    abstract.add_argument(
        "--solver",
        choices=("scipy", "bnb", "auto"),
        default="auto",
        help="Step-2 backend ('auto', the default, lets the portfolio pick per component)",
    )
    abstract.add_argument(
        "--selection",
        choices=("decomposed", "monolithic"),
        default="decomposed",
        help="Step-2 mode: decomposed overlap-graph pipeline or single MIP",
    )
    abstract.add_argument(
        "--selection-workers",
        type=int,
        default=1,
        help="worker processes for parallel Step-2 component solving",
    )
    abstract.add_argument("--timeout", type=float, default=None)
    abstract.set_defaults(handler=_cmd_abstract)

    stats = sub.add_parser("stats", help="print log statistics")
    stats.add_argument("log")
    stats.set_defaults(handler=_cmd_stats)

    dfg = sub.add_parser("dfg", help="print a log's DFG as DOT")
    dfg.add_argument("log")
    dfg.add_argument("--keep", type=float, default=1.0, help="edge keep fraction")
    dfg.set_defaults(handler=_cmd_dfg)

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.set_defaults(handler=_cmd_demo)

    discover = sub.add_parser("discover", help="discover a process model")
    discover.add_argument("log")
    discover.add_argument(
        "--algorithm", choices=("dfg", "alpha", "inductive"), default="dfg"
    )
    discover.add_argument("--dot", action="store_true", help="print DOT (alpha)")
    discover.set_defaults(handler=_cmd_discover)

    suggest = sub.add_parser(
        "suggest", help="suggest interesting constraints for a log"
    )
    suggest.add_argument("log")
    suggest.add_argument("--limit", type=int, default=None)
    suggest.set_defaults(handler=_cmd_suggest)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every evaluation artifact"
    )
    reproduce.add_argument("--output", default="reproduction_results")
    reproduce.add_argument("--max-traces", type=int, default=50)
    reproduce.add_argument("--max-classes", type=int, default=10)
    reproduce.add_argument("--timeout", type=float, default=20.0)
    reproduce.add_argument(
        "--no-exhaustive",
        action="store_true",
        help="skip the slow Exh configuration",
    )
    reproduce.set_defaults(handler=_cmd_reproduce)

    types = sub.add_parser("constraint-types", help="list JSON constraint types")
    types.set_defaults(handler=_cmd_constraint_types)

    batch = sub.add_parser(
        "batch", help="run a JSONL job manifest through the service runtime"
    )
    batch.add_argument("manifest", help="JSONL manifest (one job per line)")
    batch.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = sequential)"
    )
    batch.add_argument("--output", help="results JSONL path (default: stdout)")
    batch.add_argument(
        "--cache-dir", help="persistent on-disk result cache directory"
    )
    batch.add_argument(
        "--include-log",
        action="store_true",
        help="embed the abstracted log in each result row",
    )
    batch.add_argument(
        "--broker",
        help="dispatch through a distributed broker (fs://, sqlite://, "
        "redis:// URL); --workers then counts local fleet workers "
        "(0 = external workers only)",
    )
    batch.add_argument(
        "--deadline-ms", type=float, default=None,
        help="wall-clock budget per job (ms); jobs that cannot finish "
        "in budget fail typed instead of running on (manifest rows "
        "with their own deadline_ms keep it)",
    )
    batch.add_argument(
        "--max-load", type=int, default=None,
        help="bound on queued+running jobs; past it the lowest-priority "
        "job is shed with a typed Overloaded error row",
    )
    batch.add_argument(
        "--trace",
        help="append structured JSONL lifecycle events to this file "
        "(analyze with `repro doctor`)",
    )
    batch.add_argument(
        "--trace-rotate-mb", type=float, default=None,
        help="rotate the trace file to <path>.1 past this many MB "
        "(default: never)",
    )
    batch.add_argument(
        "--run-dir",
        help="journal completed rows line-atomically into "
        "DIR/journal.jsonl so the run survives crashes "
        "(rerun with --resume to pick up where it died)",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="replay journaled rows from --run-dir verbatim and compute "
        "only what is missing (requires the same manifest)",
    )
    batch.set_defaults(handler=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="serve abstraction jobs over stdin/stdout or TCP"
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = sequential)"
    )
    serve.add_argument("--cache-dir", help="persistent on-disk result cache directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None, help="serve over TCP instead")
    serve.add_argument(
        "--max-requests", type=int, default=None, help="stop after N requests (TCP)"
    )
    serve.add_argument(
        "--broker",
        help="dispatch through a distributed broker (fs://, sqlite://, "
        "redis:// URL) instead of the in-process pool",
    )
    serve.add_argument(
        "--max-load", type=int, default=None,
        help="bound on queued+running jobs; past it the lowest-priority "
        "job is shed with a typed Overloaded response",
    )
    serve.add_argument(
        "--conn-timeout", type=float, default=30.0,
        help="idle seconds before a silent TCP client is dropped "
        "(the loop serves one client at a time)",
    )
    serve.add_argument(
        "--trace",
        help="append structured JSONL lifecycle events to this file "
        "(analyze with `repro doctor`)",
    )
    serve.add_argument(
        "--trace-rotate-mb", type=float, default=None,
        help="rotate the trace file to <path>.1 past this many MB "
        "(default: never)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus metrics on this port (0 = ephemeral; "
        "the chosen port is printed and traced)",
    )
    serve.set_defaults(handler=_cmd_serve)

    worker = sub.add_parser(
        "worker", help="join a distributed fleet: run jobs from a broker queue"
    )
    worker.add_argument(
        "--broker", required=True,
        help="broker URL: fs:///shared/dir, sqlite:///path.db, or redis://host/0",
    )
    worker.add_argument(
        "--cache-dir",
        help="shared on-disk result store (point the whole fleet at one)",
    )
    worker.add_argument("--worker-id", help="fleet-unique name (default host-pid)")
    worker.add_argument(
        "--lease", type=float, default=60.0,
        help="claim visibility timeout in seconds (heartbeats renew it)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="idle seconds between claim attempts",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, help="exit after N completed tasks"
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit after this many seconds without work",
    )
    worker.add_argument(
        "--max-attempts", type=int, default=3,
        help="deliveries before an undeliverable task is quarantined",
    )
    worker.add_argument(
        "--trace",
        help="append structured JSONL lifecycle events to this file "
        "(analyze with `repro doctor`)",
    )
    worker.add_argument(
        "--trace-rotate-mb", type=float, default=None,
        help="rotate the trace file to <path>.1 past this many MB "
        "(default: never)",
    )
    worker.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus metrics on this port (0 = ephemeral; "
        "the chosen port is printed and traced)",
    )
    _add_chaos_args(worker)
    worker.set_defaults(handler=_cmd_worker)

    fleet = sub.add_parser(
        "fleet",
        help="supervise N local workers: restart crashes, quarantine "
        "crash loops, drain on SIGTERM",
    )
    fleet.add_argument(
        "--broker", required=True,
        help="broker URL: fs:///shared/dir, sqlite:///path.db, or redis://host/0",
    )
    fleet.add_argument(
        "--workers", type=int, default=2, help="supervised worker slots"
    )
    fleet.add_argument(
        "--cache-dir",
        help="shared on-disk result store (point the whole fleet at one)",
    )
    fleet.add_argument(
        "--lease", type=float, default=60.0,
        help="claim visibility timeout per worker (seconds)",
    )
    fleet.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="idle seconds between a worker's claim attempts",
    )
    fleet.add_argument(
        "--restart-window", type=float, default=30.0,
        help="crash-loop window: this many seconds bound the restart count",
    )
    fleet.add_argument(
        "--max-restarts", type=int, default=3,
        help="restarts of one slot within the window before it is "
        "quarantined (taken out of service)",
    )
    fleet.add_argument(
        "--idle-exit", type=float, default=None,
        help="drain once the broker has been empty this many seconds "
        "(default: run until SIGTERM)",
    )
    fleet.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds workers get to finish their current job on drain",
    )
    fleet.add_argument(
        "--trace",
        help="append supervisor + worker lifecycle events to this file "
        "(analyze with `repro doctor`)",
    )
    fleet.add_argument(
        "--trace-rotate-mb", type=float, default=None,
        help="rotate the trace file to <path>.1 past this many MB "
        "(default: never)",
    )
    _add_chaos_args(fleet)
    fleet.set_defaults(handler=_cmd_fleet)

    fsck = sub.add_parser(
        "fsck",
        help="scan and repair a disk store and/or fs-broker directory",
    )
    fsck.add_argument(
        "--cache-dir", help="disk store directory to verify (checksums + schema)"
    )
    fsck.add_argument(
        "--broker",
        help="fs:// broker URL or directory to verify (payload frames, "
        "leases, staging files)",
    )
    fsck.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    fsck.add_argument(
        "--no-repair", action="store_true",
        help="report only; leave corrupt entries and stale files in place "
        "(exit 4 when rot is found)",
    )
    fsck.set_defaults(handler=_cmd_fsck)

    doctor = sub.add_parser(
        "doctor", help="analyze trace files: failure taxonomy, latency, offenders"
    )
    doctor.add_argument(
        "traces", nargs="+",
        help="trace JSONL files (merged by timestamp before analysis)",
    )
    doctor.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    doctor.add_argument(
        "--recommend", action="store_true",
        help="append evidence-backed tuning recommendations",
    )
    doctor.set_defaults(handler=_cmd_doctor)

    top = sub.add_parser(
        "top", help="live dashboard over growing trace files"
    )
    top.add_argument(
        "traces", nargs="+",
        help="trace JSONL files to follow (rotated segments included)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit instead of refreshing",
    )
    top.add_argument(
        "--json", action="store_true",
        help="emit machine-readable snapshots instead of the dashboard",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default 1)",
    )
    top.add_argument(
        "--window", type=float, default=60.0,
        help="rolling statistics window in seconds (default 60)",
    )
    top.set_defaults(handler=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
