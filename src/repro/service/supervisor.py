"""The fleet supervisor behind ``repro fleet --workers N --broker URL``.

A crashed ``repro worker`` stays dead until a human restarts it; the
supervisor closes that gap.  It spawns ``workers`` worker processes
against one broker and babysits them:

* a slot whose process dies is **restarted** after a seeded
  :class:`~repro.service.resilience.RetryPolicy` backoff (per-slot
  keys, so a mass crash does not respawn the whole fleet in lockstep);
* a slot that crashes ``max_restarts`` times within
  ``restart_window`` seconds is a **crash loop**: the slot is
  quarantined — taken out of service and reported — instead of burning
  CPU respawning a worker that will die again (the broker's own
  ``max_attempts`` budget separately quarantines the *task* a crash
  loop chases);
* SIGTERM/SIGINT **drain gracefully**: the supervisor raises the
  broker's cooperative stop flag, every worker finishes its current
  job (see the worker loop's own signal handling) and exits, and only
  stragglers past ``drain_timeout`` are terminated;
* everything is traced — ``supervisor_started``, ``worker_restart``
  (slot, exit code, restart count), ``supervisor_slot_quarantined``,
  and ``supervisor_exit`` events land in the same trace file as the
  workers' events, so ``repro doctor`` and ``repro top`` see restarts
  next to the lease churn they cause.

The supervisor holds no job state: exactly-once semantics come
entirely from the broker (leases, requeue sweeps, attempt budgets),
so killing and restarting the supervisor itself is always safe.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field

from repro.service.dist.broker import connect_broker
from repro.service.resilience import RetryPolicy

#: Default backoff between a slot's death and its respawn.
_RESTART_BACKOFF = RetryPolicy(
    attempts=1_000_000, base_delay=0.2, max_delay=5.0, seed="fleet-restart"
)


@dataclass
class _Slot:
    """One supervised worker slot."""

    index: int
    process: object = None
    restarts: int = 0
    last_exitcode: "int | None" = None
    quarantined: bool = False
    next_spawn_at: float = 0.0
    history: deque = field(default_factory=deque)

    def as_dict(self) -> dict:
        return {
            "slot": self.index,
            "restarts": self.restarts,
            "last_exitcode": self.last_exitcode,
            "quarantined": self.quarantined,
        }


def _fleet_worker_main(
    broker_url: str,
    cache_dir: "str | None",
    lease: float,
    poll_interval: float,
    trace: "str | None",
    trace_rotate_mb: "float | None",
    chaos=None,
) -> None:
    """Entry point of one supervised worker process."""
    from repro.service.dist.worker import worker_loop

    broker = connect_broker(broker_url)
    if chaos is not None and chaos.any_faults():
        from repro.service.dist.chaos import ChaosBroker

        broker = ChaosBroker(broker, chaos)
    try:
        worker_loop(
            broker, cache_dir=cache_dir, lease=lease,
            poll_interval=poll_interval, trace=trace,
            trace_rotate_mb=trace_rotate_mb,
        )
    finally:
        broker.close()


class FleetSupervisor:
    """Spawn, monitor, restart, and drain a local worker fleet.

    Parameters
    ----------
    broker_url:
        The broker every worker connects to (``fs://``, ``sqlite://``,
        ``redis://``).
    workers:
        Number of supervised slots.
    cache_dir / lease / poll_interval / trace / trace_rotate_mb:
        Passed through to each slot's
        :func:`~repro.service.dist.worker.worker_loop`.
    restart_window / max_restarts:
        Crash-loop policy: ``max_restarts`` restarts of one slot within
        ``restart_window`` seconds quarantine the slot.
    backoff:
        :class:`~repro.service.resilience.RetryPolicy` whose
        :meth:`~repro.service.resilience.RetryPolicy.delay` schedules
        respawns (attempt = the slot's restart count, key = the slot
        index — deterministic, desynchronized across slots).
    idle_exit:
        Drain automatically once the broker has had no queued or
        claimed tasks for this many seconds (``None`` = run until
        signalled).  This is how batch drivers and tests bound a fleet.
    chaos:
        Optional :class:`~repro.service.dist.chaos.ChaosConfig` each
        worker wraps its broker connection in (``--chaos-kill-rate``
        turns the fleet into its own crash test).
    drain_timeout:
        Seconds to wait for workers to finish their current job after
        the stop flag is raised before terminating them.
    """

    def __init__(
        self,
        broker_url: str,
        workers: int = 2,
        cache_dir=None,
        lease: float = 60.0,
        poll_interval: float = 0.05,
        trace=None,
        trace_rotate_mb: "float | None" = None,
        restart_window: float = 30.0,
        max_restarts: int = 3,
        backoff: "RetryPolicy | None" = None,
        idle_exit: "float | None" = None,
        chaos=None,
        drain_timeout: float = 10.0,
        check_interval: float = 0.1,
        mp_context: "str | None" = None,
    ):
        if workers < 1:
            raise ValueError("fleet needs at least one worker slot")
        if max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        self.broker_url = broker_url
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.lease = lease
        self.poll_interval = poll_interval
        self.trace = trace
        self.trace_rotate_mb = trace_rotate_mb
        self.restart_window = restart_window
        self.max_restarts = max_restarts
        self.backoff = backoff if backoff is not None else _RESTART_BACKOFF
        self.idle_exit = idle_exit
        self.chaos = chaos
        self.drain_timeout = drain_timeout
        self.check_interval = check_interval
        self._mp_context = mp_context
        self._slots = [_Slot(index=i) for i in range(workers)]
        self._stop_signal: "int | None" = None
        self._stop_requested = False
        self._tracer = None

    # -- control -----------------------------------------------------

    def request_stop(self) -> None:
        """Ask the supervisor to drain (thread-safe, used by tests)."""
        self._stop_requested = True

    # -- internals ---------------------------------------------------

    def _make_tracer(self):
        if self.trace is None:
            return None
        if hasattr(self.trace, "emit"):
            return self.trace
        from repro.obs.trace import TraceWriter

        return TraceWriter(
            str(self.trace),
            worker=f"supervisor-{os.getpid()}",
            rotate_mb=self.trace_rotate_mb,
        )

    def _emit(self, event: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(event, **fields)

    def _spawn(self, slot: _Slot) -> None:
        import multiprocessing

        context_name = self._mp_context
        if context_name is None:
            methods = multiprocessing.get_all_start_methods()
            context_name = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(context_name)
        trace = self.trace if not hasattr(self.trace, "emit") else None
        process = context.Process(
            target=_fleet_worker_main,
            args=(
                self.broker_url, self.cache_dir, self.lease,
                self.poll_interval,
                str(trace) if trace is not None else None,
                self.trace_rotate_mb, self.chaos,
            ),
            daemon=True,
        )
        process.start()
        slot.process = process

    def _note_death(self, slot: _Slot, now: float, draining: bool) -> None:
        """Handle one dead slot process: restart, or quarantine."""
        exitcode = slot.process.exitcode
        slot.process.join(timeout=0)
        slot.process = None
        slot.last_exitcode = exitcode
        if draining:
            return
        slot.restarts += 1
        slot.history.append(now)
        while slot.history and now - slot.history[0] > self.restart_window:
            slot.history.popleft()
        if len(slot.history) >= self.max_restarts:
            slot.quarantined = True
            self._emit(
                "supervisor_slot_quarantined",
                slot=slot.index,
                restarts=slot.restarts,
                window_s=self.restart_window,
                exitcode=exitcode,
            )
            return
        delay = self.backoff.delay(slot.restarts - 1, key=f"slot-{slot.index}")
        slot.next_spawn_at = now + delay
        self._emit(
            "worker_restart",
            slot=slot.index,
            exitcode=exitcode,
            restarts=slot.restarts,
            backoff_s=round(delay, 4),
        )

    def _drain(self, broker) -> None:
        """Raise the stop flag and wait for workers to finish cleanly."""
        try:
            broker.request_stop()
        except Exception:
            pass
        deadline = time.time() + self.drain_timeout
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.time()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
            slot.last_exitcode = process.exitcode
            slot.process = None

    # -- main loop ---------------------------------------------------

    def run(self) -> dict:
        """Supervise until drained; return the fleet report."""
        self._tracer = self._make_tracer()
        previous_handlers = {}

        def _handle(signum, frame):  # pragma: no cover - signal path
            self._stop_signal = signum

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous_handlers[signum] = signal.signal(signum, _handle)
            except ValueError:
                break  # not the main thread (tests); rely on request_stop
        broker = connect_broker(self.broker_url)
        raised_stop = False
        drained_by = "all_slots_quarantined"
        self._emit(
            "supervisor_started",
            workers=self.workers,
            broker=self.broker_url,
            max_restarts=self.max_restarts,
            restart_window_s=self.restart_window,
        )
        idle_since = time.time()
        try:
            for slot in self._slots:
                self._spawn(slot)
            while True:
                if self._stop_signal is not None:
                    drained_by = signal.Signals(self._stop_signal).name
                    break
                if self._stop_requested:
                    drained_by = "stop_requested"
                    break
                now = time.time()
                for slot in self._slots:
                    if slot.quarantined:
                        continue
                    if slot.process is None:
                        if now >= slot.next_spawn_at:
                            self._spawn(slot)
                        continue
                    if not slot.process.is_alive():
                        self._note_death(slot, now, draining=False)
                if all(slot.quarantined for slot in self._slots):
                    break
                if self.idle_exit is not None:
                    try:
                        stats = broker.stats()
                        busy = stats.get("queued", 0) + stats.get("claimed", 0)
                    except Exception:
                        busy = 1
                    if busy:
                        idle_since = now
                    elif now - idle_since >= self.idle_exit:
                        drained_by = "idle"
                        break
                time.sleep(self.check_interval)
            raised_stop = True
            self._drain(broker)
        finally:
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, TypeError):
                    pass
            if raised_stop:
                # Leave the broker dir reusable for the next fleet.
                try:
                    broker.clear_stop()
                except Exception:
                    pass
            report = {
                "schema": "gecco-fleet/1",
                "broker": self.broker_url,
                "workers": self.workers,
                "drained_by": drained_by,
                "restarts": sum(slot.restarts for slot in self._slots),
                "quarantined_slots": [
                    slot.index for slot in self._slots if slot.quarantined
                ],
                "slots": [slot.as_dict() for slot in self._slots],
            }
            self._emit(
                "supervisor_exit",
                drained_by=drained_by,
                restarts=report["restarts"],
                quarantined_slots=report["quarantined_slots"],
            )
            try:
                broker.close()
            except Exception:
                pass
        return report


def run_fleet(broker_url: str, **kwargs) -> dict:
    """Convenience wrapper: build a :class:`FleetSupervisor` and run it."""
    return FleetSupervisor(broker_url, **kwargs).run()
