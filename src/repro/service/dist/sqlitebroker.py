"""The zero-dependency SQLite broker: one WAL database file as the queue.

The whole queue state lives in a single SQLite file — tasks, leases,
results, affinity ownership, and the stop flag — so a fleet of
processes on **one host** coordinates through row locks instead of
directory renames.  The broker runs in WAL mode, whose shared-memory
index only works between processes on the same machine (SQLite
documents WAL as unsupported over NFS and other network filesystems) —
for multi-host fleets use the ``fs://`` broker on a shared directory
or the ``redis://`` broker instead.  ``BEGIN IMMEDIATE`` transactions make
claiming exclusive: exactly one worker turns a ``queued`` row into a
``claimed`` one, and exactly one requeue sweep turns an expired
``claimed`` row back (guarded by a state+worker match, so concurrent
sweeps cannot double-requeue).  WAL mode keeps readers (result polling)
off the writers' lock path.

Semantics are identical to
:class:`~repro.service.dist.fsbroker.FilesystemBroker`; the broker
tests run the same contract suite over both.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path

from repro.service.dist.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    Claim,
    TaskEnvelope,
    encode_result,
)

#: See :data:`repro.service.dist.fsbroker._AFFINITY_LEASE_FACTOR`.
_AFFINITY_LEASE_FACTOR = 5.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_id        TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    payload        BLOB NOT NULL,
    priority       INTEGER NOT NULL DEFAULT 0,
    affinity       TEXT,
    attempts       INTEGER NOT NULL DEFAULT 0,
    state          TEXT NOT NULL DEFAULT 'queued',
    worker         TEXT,
    lease_deadline REAL,
    seq            INTEGER
);
CREATE INDEX IF NOT EXISTS tasks_claim
    ON tasks (state, priority DESC, seq ASC);
CREATE TABLE IF NOT EXISTS results (
    task_id TEXT PRIMARY KEY,
    payload BLOB NOT NULL,
    created REAL NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS quarantine (
    task_id TEXT PRIMARY KEY,
    reason  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS affinity (
    key      TEXT PRIMARY KEY,
    worker   TEXT NOT NULL,
    deadline REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS control (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SQLiteBroker(Broker):
    """Task queue in one SQLite database (see the module docstring).

    ``result_ttl`` bounds the results table: orphaned duplicate results
    (see :class:`~repro.service.dist.fsbroker.FilesystemBroker`) are
    garbage-collected by the requeue sweep once older than the TTL.
    """

    def __init__(
        self, path: "str | Path", url: str | None = None,
        result_ttl: float = 3600.0,
    ):
        self.path = Path(path)
        self.url = url if url is not None else f"sqlite://{path}"
        self.result_ttl = result_ttl
        self._last_result_sweep = 0.0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()  # one connection, many executor threads
        self._db = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False,
            isolation_level=None,
        )
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.execute("PRAGMA busy_timeout=30000")
            self._db.executescript(_SCHEMA)

    # -- internals ---------------------------------------------------------

    def _immediate(self):
        """Start an exclusive-writer transaction (caller holds the lock)."""
        self._db.execute("BEGIN IMMEDIATE")

    def _affinity_free_locked(self, key: str, worker: str, now: float) -> bool:
        row = self._db.execute(
            "SELECT worker, deadline FROM affinity WHERE key = ?", (key,)
        ).fetchone()
        return row is None or row[0] == worker or row[1] <= now

    def _acquire_affinity_locked(
        self, key: str, worker: str, lease: float, now: float
    ) -> None:
        deadline = now + max(lease * _AFFINITY_LEASE_FACTOR, 10.0)
        self._db.execute(
            "INSERT INTO affinity (key, worker, deadline) VALUES (?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET worker = ?, deadline = ?",
            (key, worker, deadline, worker, deadline),
        )

    # -- Broker API --------------------------------------------------------

    def put(self, envelope: TaskEnvelope) -> None:
        """Enqueue a task row (``seq`` preserves FIFO within a priority)."""
        with self._lock:
            self._immediate()
            try:
                row = self._db.execute(
                    "SELECT COALESCE(MAX(seq), 0) + 1 FROM tasks"
                ).fetchone()
                self._db.execute(
                    "INSERT OR REPLACE INTO tasks "
                    "(task_id, kind, payload, priority, affinity, attempts, "
                    " state, seq) VALUES (?, ?, ?, ?, ?, ?, 'queued', ?)",
                    (
                        envelope.task_id, envelope.kind, envelope.payload,
                        envelope.priority, envelope.affinity,
                        envelope.attempts, row[0],
                    ),
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def claim(self, worker: str, lease: float) -> Claim | None:
        """Claim the best queued row whose affinity is free for us."""
        now = time.time()
        with self._lock:
            self._immediate()
            try:
                # Duplicate deliveries of finished tasks: drop them in
                # one statement instead of a per-row probe.
                self._db.execute(
                    "DELETE FROM tasks WHERE state = 'queued' AND task_id IN "
                    "(SELECT task_id FROM results)"
                )
                # Scan without payloads (they can be megabytes of
                # pickled inline logs); fetch only the chosen row's.
                rows = self._db.execute(
                    "SELECT task_id, kind, priority, affinity, attempts "
                    "FROM tasks WHERE state = 'queued' "
                    "ORDER BY priority DESC, seq ASC"
                ).fetchall()
                for task_id, kind, priority, affinity, attempts in rows:
                    if affinity is not None and not self._affinity_free_locked(
                        affinity, worker, now
                    ):
                        continue
                    if affinity is not None:
                        self._acquire_affinity_locked(affinity, worker, lease, now)
                    deadline = now + lease
                    self._db.execute(
                        "UPDATE tasks SET state = 'claimed', worker = ?, "
                        "lease_deadline = ? WHERE task_id = ?",
                        (worker, deadline, task_id),
                    )
                    payload = self._db.execute(
                        "SELECT payload FROM tasks WHERE task_id = ?", (task_id,)
                    ).fetchone()[0]
                    self._db.execute("COMMIT")
                    envelope = TaskEnvelope(
                        task_id=task_id, kind=kind, payload=payload,
                        priority=priority, affinity=affinity, attempts=attempts,
                    )
                    return Claim(
                        envelope=envelope, worker=worker, deadline=deadline
                    )
                self._db.execute("COMMIT")
                return None
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def heartbeat(self, claim: Claim, lease: float) -> bool:
        """Extend the row's lease while we still own the claim."""
        now = time.time()
        with self._lock:
            self._immediate()
            try:
                cursor = self._db.execute(
                    "UPDATE tasks SET lease_deadline = ? "
                    "WHERE task_id = ? AND state = 'claimed' AND worker = ?",
                    (now + lease, claim.envelope.task_id, claim.worker),
                )
                alive = cursor.rowcount == 1
                if alive and claim.envelope.affinity is not None:
                    self._acquire_affinity_locked(
                        claim.envelope.affinity, claim.worker, lease, now
                    )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        if alive:
            claim.deadline = now + lease
        return alive

    def complete(self, claim: Claim, payload: bytes) -> bool:
        """Record the result; delete the task row when still ours."""
        with self._lock:
            self._immediate()
            try:
                self._db.execute(
                    "INSERT OR REPLACE INTO results (task_id, payload, created) "
                    "VALUES (?, ?, ?)",
                    (claim.envelope.task_id, payload, time.time()),
                )
                cursor = self._db.execute(
                    "DELETE FROM tasks WHERE task_id = ? AND state = 'claimed' "
                    "AND worker = ?",
                    (claim.envelope.task_id, claim.worker),
                )
                fresh = cursor.rowcount == 1
                self._db.execute("COMMIT")
                return fresh
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def release(self, claim: Claim) -> bool:
        """Hand a claimed row back for redelivery (``attempts + 1``).

        Guarded by the same state+worker match as the expiry sweep's
        requeue UPDATE, so a release racing a sweep requeues the task
        exactly once.
        """
        with self._lock:
            self._immediate()
            try:
                row = self._db.execute(
                    "SELECT COALESCE(MAX(seq), 0) + 1 FROM tasks"
                ).fetchone()
                cursor = self._db.execute(
                    "UPDATE tasks SET state = 'queued', worker = NULL, "
                    "lease_deadline = NULL, attempts = attempts + 1, seq = ? "
                    "WHERE task_id = ? AND state = 'claimed' AND worker = ?",
                    (row[0], claim.envelope.task_id, claim.worker),
                )
                released = cursor.rowcount == 1
                self._db.execute("COMMIT")
                return released
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def quarantine(self, claim: Claim, reason: str) -> None:
        """Park a poisonous claimed row; record an error result."""
        task_id = claim.envelope.task_id
        with self._lock:
            self._immediate()
            try:
                self._db.execute("DELETE FROM tasks WHERE task_id = ?", (task_id,))
                self._db.execute(
                    "INSERT OR REPLACE INTO quarantine (task_id, reason) "
                    "VALUES (?, ?)",
                    (task_id, reason),
                )
                self._db.execute(
                    "INSERT OR REPLACE INTO results (task_id, payload, created) "
                    "VALUES (?, ?, ?)",
                    (task_id, encode_result(
                        error=f"task quarantined: {reason}", worker=claim.worker
                    ), time.time()),
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def requeue_expired(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Requeue lease-expired rows; quarantine exhausted ones."""
        now = time.time()
        moved = 0
        with self._lock:
            self._immediate()
            try:
                expired = self._db.execute(
                    "SELECT task_id, attempts, affinity, worker FROM tasks "
                    "WHERE state = 'claimed' AND lease_deadline <= ?",
                    (now,),
                ).fetchall()
                for task_id, attempts, affinity, worker in expired:
                    # Release the dead claimant's affinity hold so the
                    # redelivery is claimable immediately.
                    if affinity is not None and worker is not None:
                        self._db.execute(
                            "DELETE FROM affinity WHERE key = ? AND worker = ?",
                            (affinity, worker),
                        )
                    if attempts + 1 >= max_attempts:
                        self._db.execute(
                            "DELETE FROM tasks WHERE task_id = ?", (task_id,)
                        )
                        self._db.execute(
                            "INSERT OR REPLACE INTO quarantine (task_id, reason) "
                            "VALUES (?, ?)",
                            (task_id,
                             f"delivery attempts exhausted ({attempts + 1})"),
                        )
                        self._db.execute(
                            "INSERT OR REPLACE INTO results "
                            "(task_id, payload, created) VALUES (?, ?, ?)",
                            (task_id, encode_result(
                                error=(
                                    f"task {task_id} exceeded {max_attempts} "
                                    "delivery attempts (worker crash loop?)"
                                )
                            ), time.time()),
                        )
                    else:
                        row = self._db.execute(
                            "SELECT COALESCE(MAX(seq), 0) + 1 FROM tasks"
                        ).fetchone()
                        self._db.execute(
                            "UPDATE tasks SET state = 'queued', worker = NULL, "
                            "lease_deadline = NULL, attempts = ?, seq = ? "
                            "WHERE task_id = ? AND state = 'claimed'",
                            (attempts + 1, row[0], task_id),
                        )
                    moved += 1
                if self.result_ttl is not None and (
                    now - self._last_result_sweep >= self.result_ttl / 10.0
                ):
                    # Garbage-collect orphaned duplicate results (see
                    # the class docstring).
                    self._last_result_sweep = now
                    self._db.execute(
                        "DELETE FROM results WHERE created > 0 AND created <= ?",
                        (now - self.result_ttl,),
                    )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return moved

    def release_affinities(self, worker: str) -> None:
        """Release every affinity key ``worker`` owns (clean exit)."""
        with self._lock:
            self._immediate()
            try:
                self._db.execute(
                    "DELETE FROM affinity WHERE worker = ?", (worker,)
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def get_result(self, task_id: str) -> bytes | None:
        """Fetch a finished task's result envelope (``None`` while pending)."""
        with self._lock:
            row = self._db.execute(
                "SELECT payload FROM results WHERE task_id = ?", (task_id,)
            ).fetchone()
        return None if row is None else row[0]

    def forget_result(self, task_id: str) -> None:
        """Delete a consumed result row."""
        with self._lock:
            self._immediate()
            try:
                self._db.execute(
                    "DELETE FROM results WHERE task_id = ?", (task_id,)
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def request_stop(self) -> None:
        """Raise the cooperative stop flag."""
        with self._lock:
            self._immediate()
            try:
                self._db.execute(
                    "INSERT OR REPLACE INTO control (key, value) "
                    "VALUES ('stop', '1')"
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def clear_stop(self) -> None:
        """Lower the stop flag."""
        with self._lock:
            self._immediate()
            try:
                self._db.execute("DELETE FROM control WHERE key = 'stop'")
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def stop_requested(self) -> bool:
        """Whether the stop flag is raised."""
        with self._lock:
            row = self._db.execute(
                "SELECT value FROM control WHERE key = 'stop'"
            ).fetchone()
        return row is not None

    def stats(self) -> dict:
        """Row-count counters per state."""
        with self._lock:
            queued = self._db.execute(
                "SELECT COUNT(*) FROM tasks WHERE state = 'queued'"
            ).fetchone()[0]
            claimed = self._db.execute(
                "SELECT COUNT(*) FROM tasks WHERE state = 'claimed'"
            ).fetchone()[0]
            results = self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            quarantined = self._db.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()[0]
        return {
            "backend": "sqlite",
            "queued": queued,
            "claimed": claimed,
            "results": results,
            "quarantined": quarantined,
        }

    def close(self) -> None:
        """Close the database connection."""
        with self._lock:
            self._db.close()
