"""The optional Redis broker (import-gated, like numpy/scipy elsewhere).

When the ``redis`` package is installed, ``redis://host:port/db`` broker
URLs map the same contract as the zero-dependency brokers onto Redis
primitives:

* the queue is a sorted set (``<ns>:queue``) scored by
  ``(-priority, enqueue sequence)`` so ``ZRANGE`` yields
  highest-priority-first FIFO order, and claiming is an exclusive
  ``ZREM`` (exactly one claimant removes a member);
* task bodies, leases, results, quarantine records, and affinity
  ownership live in per-task keys / hashes under the same namespace;
* the stop flag is one key the worker loops poll.

Without the package, :data:`HAVE_REDIS` is ``False`` and
:func:`~repro.service.dist.broker.connect_broker` raises a
:class:`~repro.exceptions.ReproError` with an install hint; nothing in
the distributed runtime imports this module unless a ``redis://`` URL
is used.
"""

from __future__ import annotations

import time

from repro.service.dist.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    Claim,
    TaskEnvelope,
    encode_result,
)

try:  # pragma: no cover - exercised only with redis installed
    import redis as _redis

    HAVE_REDIS = True
except ImportError:  # pragma: no cover
    _redis = None
    HAVE_REDIS = False

#: See :data:`repro.service.dist.fsbroker._AFFINITY_LEASE_FACTOR`.
_AFFINITY_LEASE_FACTOR = 5.0

#: Priority scores: score = -priority * _SEQ_SPAN + seq keeps FIFO
#: order within a priority band for up to ``_SEQ_SPAN`` enqueues.
_SEQ_SPAN = 1e12


class RedisBroker(Broker):  # pragma: no cover - needs a redis server
    """Task queue on a Redis server (see the module docstring)."""

    def __init__(self, url: str, namespace: str = "gecco",
                 result_ttl: float = 3600.0):
        if not HAVE_REDIS:
            raise RuntimeError("redis package is not installed")
        self.url = url
        self._ns = namespace
        #: Orphaned duplicate results (at-least-once delivery) expire
        #: via the key TTL instead of a sweep.
        self.result_ttl = result_ttl
        self._db = _redis.Redis.from_url(url)

    def _key(self, *parts: str) -> str:
        return ":".join((self._ns,) + parts)

    # -- Broker API --------------------------------------------------------

    def put(self, envelope: TaskEnvelope) -> None:
        """Enqueue a task: body hash + scored queue member."""
        seq = self._db.incr(self._key("seq"))
        self._db.hset(
            self._key("task", envelope.task_id),
            mapping={
                "kind": envelope.kind,
                "payload": envelope.payload,
                "priority": envelope.priority,
                "affinity": envelope.affinity or "",
                "attempts": envelope.attempts,
            },
        )
        score = -float(envelope.priority) * _SEQ_SPAN + float(seq)
        self._db.zadd(self._key("queue"), {envelope.task_id: score})

    def _affinity_free(self, key: str, worker: str, now: float) -> bool:
        record = self._db.hgetall(self._key("affinity", key))
        if not record:
            return True
        owner = record.get(b"worker", b"").decode("utf-8")
        deadline = float(record.get(b"deadline", b"0") or 0)
        return owner == worker or deadline <= now

    def _acquire_affinity(self, key: str, worker: str, lease: float) -> None:
        deadline = time.time() + max(lease * _AFFINITY_LEASE_FACTOR, 10.0)
        self._db.hset(
            self._key("affinity", key),
            mapping={"worker": worker, "deadline": deadline},
        )

    def _queued_ids(self):
        """Every queued task id, best first (paged ``ZRANGE``)."""
        offset, page = 0, 100
        while True:
            members = self._db.zrange(self._key("queue"), offset, offset + page - 1)
            if not members:
                return
            yield from members
            offset += page

    def claim(self, worker: str, lease: float) -> Claim | None:
        """Claim the best queued task (exclusive ``ZREM`` wins the race)."""
        now = time.time()
        for task_id_raw in self._queued_ids():
            task_id = task_id_raw.decode("utf-8")
            if self._db.exists(self._key("result", task_id)):
                self._db.zrem(self._key("queue"), task_id)
                continue
            body = self._db.hgetall(self._key("task", task_id))
            if not body:
                self._db.zrem(self._key("queue"), task_id)
                continue
            affinity = body.get(b"affinity", b"").decode("utf-8") or None
            if affinity is not None and not self._affinity_free(
                affinity, worker, now
            ):
                continue
            # Lease *before* ZREM: dying between the two leaves a
            # queued task with an expired lease (recovered by
            # requeue_expired), never a task in neither structure.
            deadline = now + lease
            self._db.hset(
                self._key("lease", task_id),
                mapping={"worker": worker, "deadline": deadline},
            )
            if not self._db.zrem(self._key("queue"), task_id):
                # Another claimant won; drop our lease only if it is
                # still ours (the winner re-asserts its own).
                record = self._db.hgetall(self._key("lease", task_id))
                if record.get(b"worker", b"").decode("utf-8") == worker:
                    self._db.delete(self._key("lease", task_id))
                continue
            if affinity is not None:
                self._acquire_affinity(affinity, worker, lease)
            self._db.hset(
                self._key("lease", task_id),
                mapping={"worker": worker, "deadline": deadline},
            )
            envelope = TaskEnvelope(
                task_id=task_id,
                kind=body[b"kind"].decode("utf-8"),
                payload=bytes(body[b"payload"]),
                priority=int(body.get(b"priority", 0)),
                affinity=affinity,
                attempts=int(body.get(b"attempts", 0)),
            )
            return Claim(envelope=envelope, worker=worker, deadline=deadline)
        return None

    def heartbeat(self, claim: Claim, lease: float) -> bool:
        """Extend the lease hash while we still own it."""
        key = self._key("lease", claim.envelope.task_id)
        record = self._db.hgetall(key)
        if not record or record.get(b"worker", b"").decode("utf-8") != claim.worker:
            return False
        deadline = time.time() + lease
        self._db.hset(key, mapping={"worker": claim.worker, "deadline": deadline})
        if claim.envelope.affinity is not None:
            self._acquire_affinity(claim.envelope.affinity, claim.worker, lease)
        claim.deadline = deadline
        return True

    def complete(self, claim: Claim, payload: bytes) -> bool:
        """Record the result; clean up body + lease when still ours."""
        task_id = claim.envelope.task_id
        self._db.set(self._key("result", task_id), payload,
                     ex=int(self.result_ttl) if self.result_ttl else None)
        record = self._db.hgetall(self._key("lease", task_id))
        fresh = bool(record) and (
            record.get(b"worker", b"").decode("utf-8") == claim.worker
        )
        if fresh:
            self._db.delete(self._key("lease", task_id), self._key("task", task_id))
        return fresh

    def release(self, claim: Claim) -> bool:
        """Requeue a claimed task voluntarily (attempts + 1).

        Mirrors the requeue path of :meth:`requeue_expired`, but only
        while the lease hash is still ours — deleting the lease key is
        the exclusive step (exactly one of release / the expiry sweep
        wins), so a task never requeues twice.
        """
        task_id = claim.envelope.task_id
        lease_key = self._key("lease", task_id)
        record = self._db.hgetall(lease_key)
        if not record or record.get(b"worker", b"").decode("utf-8") != claim.worker:
            return False
        if not self._db.delete(lease_key):
            return False  # expiry sweep (or a re-claimant) won the race
        body = self._db.hgetall(self._key("task", task_id))
        if not body:
            return False
        attempts = int(body.get(b"attempts", 0)) + 1
        self._db.hset(self._key("task", task_id), "attempts", attempts)
        seq = self._db.incr(self._key("seq"))
        priority = int(body.get(b"priority", 0))
        score = -float(priority) * _SEQ_SPAN + float(seq)
        self._db.zadd(self._key("queue"), {task_id: score})
        return True

    def quarantine(self, claim: Claim, reason: str) -> None:
        """Park a poisonous task; record an error result."""
        task_id = claim.envelope.task_id
        self._db.hset(self._key("quarantine"), task_id, reason)
        self._db.set(
            self._key("result", task_id),
            encode_result(error=f"task quarantined: {reason}", worker=claim.worker),
            ex=int(self.result_ttl) if self.result_ttl else None,
        )
        self._db.delete(self._key("lease", task_id), self._key("task", task_id))

    def requeue_expired(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Requeue tasks whose lease hash has expired."""
        now = time.time()
        moved = 0
        for key_raw in self._db.keys(self._key("lease", "*")):
            task_id = key_raw.decode("utf-8").rsplit(":", 1)[-1]
            record = self._db.hgetall(key_raw)
            if not record:
                continue
            if float(record.get(b"deadline", b"0") or 0) > now:
                continue
            if not self._db.delete(key_raw):
                continue  # another requeuer won
            body = self._db.hgetall(self._key("task", task_id))
            if not body:
                continue
            affinity = body.get(b"affinity", b"").decode("utf-8")
            dead_worker = record.get(b"worker", b"").decode("utf-8")
            if affinity:
                # Release the dead claimant's affinity hold.
                owned = self._db.hgetall(self._key("affinity", affinity))
                if owned.get(b"worker", b"").decode("utf-8") == dead_worker:
                    self._db.delete(self._key("affinity", affinity))
            attempts = int(body.get(b"attempts", 0)) + 1
            if attempts >= max_attempts:
                self._db.hset(
                    self._key("quarantine"), task_id,
                    f"delivery attempts exhausted ({attempts})",
                )
                self._db.set(
                    self._key("result", task_id),
                    encode_result(
                        error=(
                            f"task {task_id} exceeded {max_attempts} "
                            "delivery attempts (worker crash loop?)"
                        )
                    ),
                    ex=int(self.result_ttl) if self.result_ttl else None,
                )
                self._db.delete(self._key("task", task_id))
            else:
                self._db.hset(self._key("task", task_id), "attempts", attempts)
                seq = self._db.incr(self._key("seq"))
                priority = int(body.get(b"priority", 0))
                score = -float(priority) * _SEQ_SPAN + float(seq)
                self._db.zadd(self._key("queue"), {task_id: score})
            moved += 1
        return moved

    def release_affinities(self, worker: str) -> None:
        """Release every affinity key ``worker`` owns (clean exit)."""
        for key_raw in self._db.keys(self._key("affinity", "*")):
            record = self._db.hgetall(key_raw)
            if record.get(b"worker", b"").decode("utf-8") == worker:
                self._db.delete(key_raw)

    def get_result(self, task_id: str) -> bytes | None:
        """Fetch a finished task's result envelope."""
        value = self._db.get(self._key("result", task_id))
        return None if value is None else bytes(value)

    def forget_result(self, task_id: str) -> None:
        """Delete a consumed result key."""
        self._db.delete(self._key("result", task_id))

    def request_stop(self) -> None:
        """Raise the cooperative stop flag."""
        self._db.set(self._key("stop"), "1")

    def clear_stop(self) -> None:
        """Lower the stop flag."""
        self._db.delete(self._key("stop"))

    def stop_requested(self) -> bool:
        """Whether the stop flag is raised."""
        return bool(self._db.exists(self._key("stop")))

    def stats(self) -> dict:
        """Key-space counters."""
        return {
            "backend": "redis",
            "queued": int(self._db.zcard(self._key("queue"))),
            "claimed": len(self._db.keys(self._key("lease", "*"))),
            "results": len(self._db.keys(self._key("result", "*"))),
            "quarantined": int(self._db.hlen(self._key("quarantine"))),
        }

    def close(self) -> None:
        """Close the connection pool."""
        self._db.close()
