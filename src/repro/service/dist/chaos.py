"""Deterministic fault injection for the broker contract.

:class:`ChaosBroker` wraps any real :class:`~repro.service.dist.broker.Broker`
and injects the faults a distributed deployment actually sees — claim
failures (broker hiccup at take time), dropped heartbeats (network
partition between worker and broker), delayed and duplicated
completions (slow result channel, at-least-once redelivery racing the
original worker), and corrupt payloads (torn write / bit rot) — on a
**seeded, deterministic schedule**, so the at-least-once,
exactly-once-requeue, and quarantine invariants can be asserted under
adversarial interleavings instead of only happy paths.

Determinism under threads: each fault type draws from its own
:class:`random.Random` stream seeded ``f"{seed}:{op}"``.  With per-op
streams, the decision sequence for (say) claims depends only on how
many claims happened before — not on how claim calls interleave with
heartbeats or completions — so a schedule replays identically however
the thread scheduler feels that day.

Two deliberate safety rails keep injected faults *recoverable*, which
is what the chaos suite needs to assert exactly-once completion:

* payload corruption only targets **first deliveries**
  (``attempts == 0``) and corrupts the delivered copy, not the queue's
  copy — the redelivery after the worker releases the claim is clean,
  exercising the release/requeue path without permanently poisoning a
  good job;
* claim failures and heartbeat drops raise *before* touching the inner
  broker, so no task is half-claimed: the queue state stays exactly
  what a real pre-call network failure would leave.

Wire it in with ``repro worker --broker URL --chaos-seed N …`` (see
:meth:`ChaosConfig.from_args`) or construct directly in tests.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, fields

from repro.exceptions import ReproError
from repro.service.dist.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    Claim,
    TaskEnvelope,
)


class ChaosError(ReproError):
    """The typed failure every injected broker fault raises.

    A distinct type so tests (and retry policies) can tell injected
    faults from real broker errors.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """One deterministic fault schedule.

    Rates are probabilities in ``[0, 1]`` drawn from per-op seeded
    streams; ``seed`` selects the schedule.  All-zero rates make the
    wrapper a transparent proxy.
    """

    seed: int = 0
    #: Probability a ``claim`` call raises :class:`ChaosError` instead
    #: of reaching the broker.
    claim_failure_rate: float = 0.0
    #: Probability a ``heartbeat`` call raises (dropped beat).
    heartbeat_drop_rate: float = 0.0
    #: Probability a ``complete`` is delivered twice (redelivery race).
    complete_duplicate_rate: float = 0.0
    #: Probability a completed result is withheld from ``get_result``
    #: for :attr:`complete_delay_polls` polls (slow result channel).
    complete_delay_rate: float = 0.0
    #: How many ``get_result`` polls a delayed result stays invisible.
    complete_delay_polls: int = 3
    #: Probability a first-delivery claim's payload is corrupted in
    #: flight (the queued copy stays intact; redelivery is clean).
    corrupt_claim_rate: float = 0.0
    #: Probability a ``put`` call raises (enqueue refused) — exercises
    #: the executor-side circuit breaker.
    put_failure_rate: float = 0.0
    #: Probability the worker *process* is SIGKILLed right after a
    #: first-delivery claim (crash mid-job, lease left dangling).  Like
    #: payload corruption this only fires on ``attempts == 0``, so the
    #: redelivery always has a surviving worker to land on — the fault
    #: exercises lease expiry, requeue, and supervisor restarts without
    #: ever exhausting a good task's delivery budget.
    kill_rate: float = 0.0

    def __post_init__(self):
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                value = getattr(self, spec.name)
                if not 0.0 <= value <= 1.0:
                    raise ReproError(
                        f"chaos {spec.name} must be in [0, 1], got {value}"
                    )
        if self.complete_delay_polls < 0:
            raise ReproError(
                f"complete_delay_polls must be >= 0, got {self.complete_delay_polls}"
            )

    def any_faults(self) -> bool:
        """Whether any fault rate is non-zero."""
        return any(
            getattr(self, spec.name)
            for spec in fields(self)
            if spec.name.endswith("_rate")
        )

    @classmethod
    def from_args(cls, args) -> "ChaosConfig":
        """Build a config from parsed ``repro worker`` CLI arguments.

        Reads the ``--chaos-*`` namespace attributes (missing ones
        default to zero/off, so any argparse namespace works).
        """
        return cls(
            seed=getattr(args, "chaos_seed", 0) or 0,
            claim_failure_rate=getattr(args, "chaos_claim_failure_rate", 0.0),
            heartbeat_drop_rate=getattr(args, "chaos_heartbeat_drop_rate", 0.0),
            complete_duplicate_rate=getattr(
                args, "chaos_complete_duplicate_rate", 0.0
            ),
            complete_delay_rate=getattr(args, "chaos_complete_delay_rate", 0.0),
            corrupt_claim_rate=getattr(args, "chaos_corrupt_claim_rate", 0.0),
            put_failure_rate=getattr(args, "chaos_put_failure_rate", 0.0),
            kill_rate=getattr(args, "chaos_kill_rate", 0.0),
        )


class ChaosBroker(Broker):
    """A seedable fault-injecting proxy around a real broker.

    Implements the full :class:`~repro.service.dist.broker.Broker`
    contract by delegation; every non-delegated behavior is an
    injected fault from the :class:`ChaosConfig` schedule.  Injection
    counters are exposed under ``stats()["chaos"]``.
    """

    def __init__(self, inner: Broker, config: ChaosConfig | None = None):
        self.inner = inner
        self.config = config if config is not None else ChaosConfig()
        self.url = inner.url
        self._lock = threading.Lock()
        # One RNG stream per fault type: decisions depend only on the
        # per-op call count, never on cross-op interleaving.
        self._rng = {
            op: random.Random(f"{self.config.seed}:{op}")
            for op in (
                "put", "claim", "heartbeat", "complete", "corrupt", "delay",
                "kill",
            )
        }
        #: ``task_id -> polls remaining`` for delayed results.
        self._delayed: dict[str, int] = {}
        self.injected = {
            "put_failures": 0,
            "claim_failures": 0,
            "heartbeat_drops": 0,
            "complete_duplicates": 0,
            "complete_delays": 0,
            "corrupt_claims": 0,
            "kills": 0,
        }

    def _roll(self, op: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return self._rng[op].random() < rate

    def _count(self, counter: str) -> None:
        with self._lock:
            self.injected[counter] += 1

    # -- faulted operations ------------------------------------------------

    def put(self, envelope: TaskEnvelope) -> None:
        if self._roll("put", self.config.put_failure_rate):
            self._count("put_failures")
            raise ChaosError(f"injected put failure for task {envelope.task_id}")
        self.inner.put(envelope)

    def claim(self, worker: str, lease: float) -> Claim | None:
        if self._roll("claim", self.config.claim_failure_rate):
            self._count("claim_failures")
            raise ChaosError(f"injected claim failure for worker {worker}")
        claim = self.inner.claim(worker, lease)
        if (
            claim is not None
            and claim.envelope.attempts == 0
            and self._roll("corrupt", self.config.corrupt_claim_rate)
        ):
            self._count("corrupt_claims")
            claim = Claim(
                envelope=TaskEnvelope(
                    task_id=claim.envelope.task_id,
                    kind=claim.envelope.kind,
                    payload=_corrupt(claim.envelope.payload),
                    priority=claim.envelope.priority,
                    affinity=claim.envelope.affinity,
                    attempts=claim.envelope.attempts,
                ),
                worker=claim.worker,
                deadline=claim.deadline,
                token=claim.token,
            )
        if (
            claim is not None
            and claim.envelope.attempts == 0
            and self._roll("kill", self.config.kill_rate)
        ):
            # Process-level fault: die with the claim held and the lease
            # dangling, exactly like a worker OOM-killed mid-job.  The
            # task is redelivered after lease expiry; a supervisor (see
            # repro fleet) is expected to restart the slot.
            self._count("kills")
            import os as _os
            import signal as _signal

            _os.kill(_os.getpid(), _signal.SIGKILL)
        return claim

    def heartbeat(self, claim: Claim, lease: float) -> bool:
        if self._roll("heartbeat", self.config.heartbeat_drop_rate):
            self._count("heartbeat_drops")
            raise ChaosError(f"injected heartbeat drop for {claim.envelope.task_id}")
        return self.inner.heartbeat(claim, lease)

    def complete(self, claim: Claim, payload: bytes) -> bool:
        fresh = self.inner.complete(claim, payload)
        if self._roll("complete", self.config.complete_duplicate_rate):
            self._count("complete_duplicates")
            # The redelivery race: the "other" worker finishes too.
            # Content-addressing makes the overwrite harmless; the
            # second call must report stale.
            self.inner.complete(claim, payload)
        if self._roll("delay", self.config.complete_delay_rate):
            self._count("complete_delays")
            with self._lock:
                self._delayed[claim.envelope.task_id] = (
                    self.config.complete_delay_polls
                )
        return fresh

    def get_result(self, task_id: str) -> bytes | None:
        with self._lock:
            remaining = self._delayed.get(task_id)
            if remaining is not None:
                if remaining > 0:
                    self._delayed[task_id] = remaining - 1
                    return None
                del self._delayed[task_id]
        return self.inner.get_result(task_id)

    # -- transparent delegation --------------------------------------------

    def release(self, claim: Claim) -> bool:
        return self.inner.release(claim)

    def quarantine(self, claim: Claim, reason: str) -> None:
        self.inner.quarantine(claim, reason)

    def forget_result(self, task_id: str) -> None:
        self.inner.forget_result(task_id)

    def release_affinities(self, worker: str) -> None:
        self.inner.release_affinities(worker)

    def requeue_expired(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        return self.inner.requeue_expired(max_attempts=max_attempts)

    def request_stop(self) -> None:
        self.inner.request_stop()

    def clear_stop(self) -> None:
        self.inner.clear_stop()

    def stop_requested(self) -> bool:
        return self.inner.stop_requested()

    def stats(self) -> dict:
        stats = self.inner.stats()
        with self._lock:
            stats["chaos"] = dict(self.injected)
        return stats

    def close(self) -> None:
        self.inner.close()


class DiskFaultInjector:
    """Seeded fault injection for disk-store writes.

    Wraps the atomic JSON writer an
    :class:`~repro.service.cache.ArtifactCache` uses (its
    ``disk_writer`` injection point) and, on a deterministic schedule,
    either raises ``OSError(ENOSPC)`` — the write never happens, the
    cache's retry policy and best-effort degradation absorb it — or
    commits a **torn write**: the JSON rendered, truncated to half, and
    placed at the final path without the atomic rename, exactly the
    rot a powered-off disk leaves behind.  Torn entries must then be
    caught by the read path's checksum verification (quarantine +
    recompute) or by ``repro fsck``.
    """

    def __init__(
        self,
        seed: int = 0,
        enospc_rate: float = 0.0,
        torn_rate: float = 0.0,
    ):
        for name, rate in (("enospc_rate", enospc_rate), ("torn_rate", torn_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"chaos {name} must be in [0, 1], got {rate}")
        self.enospc_rate = enospc_rate
        self.torn_rate = torn_rate
        self._rng = {
            op: random.Random(f"{seed}:disk:{op}") for op in ("enospc", "torn")
        }
        self._lock = threading.Lock()
        self.injected = {"enospc": 0, "torn": 0}

    def _roll(self, op: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return self._rng[op].random() < rate

    def write_json_atomic(self, payload, path) -> None:
        """Drop-in for :func:`repro.experiments.persistence.write_json_atomic`."""
        import errno
        import json as _json

        if self._roll("enospc", self.enospc_rate):
            with self._lock:
                self.injected["enospc"] += 1
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if self._roll("torn", self.torn_rate):
            with self._lock:
                self.injected["torn"] += 1
            text = _json.dumps(payload)
            from pathlib import Path as _Path

            target = _Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
            return
        from repro.experiments.persistence import write_json_atomic

        write_json_atomic(payload, path)


def _corrupt(payload: bytes) -> bytes:
    """Deterministically mangle a payload so it cannot deserialize.

    Truncation plus a flipped pickle opcode: ``pickle.loads`` reliably
    raises on the result, which is the property the worker's
    poison-payload path keys on.
    """
    if not payload:
        return b"\xff"
    cut = max(1, len(payload) // 2)
    return bytes([payload[0] ^ 0xFF]) + payload[1:cut]
