"""``DistributedExecutor``: the executor protocol over a broker queue.

Same contract as :class:`~repro.service.executor.PoolExecutor` and
:class:`~repro.service.executor.SequentialExecutor` — ``submit`` /
``submit_call`` / ``map`` / ``stats`` / ``shutdown``, future-like
handles, priorities, bounded-queue backpressure, in-flight request
coalescing — but the workers are **processes anywhere**: local children
spawned by the executor (``workers=N``), and/or remote ``repro worker
--broker URL`` loops on other hosts, all draining one
:class:`~repro.service.dist.broker.Broker`.

The parent side never blocks a thread per task: ``submit`` pickles the
job into the broker, a single poller thread watches for result
envelopes and completes the handles, and the shared on-disk
:class:`~repro.service.cache.ArtifactCache` store (``disk_dir``) gives
the whole fleet one persistent result tier.  Affinity keys (the job's
artifact log prefix, digested) ride on every envelope so brokers route
all jobs on one log to the worker that first claimed it — one artifact
build per log across the fleet, exactly like the in-process pool's
cache-aware scheduling.

Fault tolerance is inherited from the broker contract: a worker that
dies mid-job stops heartbeating, the poller's periodic
``requeue_expired`` sweep redelivers the task to a surviving worker,
and a task that keeps killing workers is quarantined with an error
result after ``max_attempts`` deliveries (the awaiting handle raises
instead of hanging).
"""

from __future__ import annotations

import pickle
import threading
import time

from repro.core.gecco import resolve_engine
from repro.exceptions import ReproError
from repro.service import fingerprint as fp
from repro.service.cache import ArtifactCache
from repro.service.dist.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    TaskEnvelope,
    connect_broker,
    decode_result,
    new_task_id,
)
from repro.service.dist.worker import spawn_worker_process
from repro.service.executor import (
    CallHandle,
    JobHandle,
    _fingerprinted_handle,
    mint_submit_span,
)
from repro.service.jobs import AbstractionJob
from repro.service.resilience import AdmissionController, DeadlineExceeded, Overloaded


def job_affinity_key(job: AbstractionJob) -> str:
    """Digest the job's artifact log prefix into a broker affinity key.

    Jobs sharing a key share their expensive per-log artifacts; brokers
    route them to one worker so the fleet builds each log's artifacts
    at most once (the distributed twin of the pool's prefix routing).
    """
    config = job.config
    engine = resolve_engine(config.engine, warn=False)
    prefix = job.fingerprint().artifact_key(config.instance_policy, engine)
    return fp.digest_text("|".join(str(part) for part in prefix))[:16]


class _InflightItem:
    """Executor-side record of one task awaiting a broker result."""

    __slots__ = (
        "kind",
        "handle",
        "fingerprint",
        "priority",
        "seq",
        "deadline_at",
        "trace_id",
        "span_id",
    )

    def __init__(
        self,
        kind: str,
        handle,
        fingerprint: str | None = None,
        priority: int = 0,
        seq: int = 0,
        deadline_at: float | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
    ):
        self.kind = kind
        self.handle = handle
        self.fingerprint = fingerprint
        self.priority = priority
        self.seq = seq
        self.deadline_at = deadline_at
        self.trace_id = trace_id
        self.span_id = span_id


class DistributedExecutor:
    """Executor over a broker-backed, possibly multi-host worker fleet.

    Parameters
    ----------
    broker:
        A broker URL (``fs:///shared/dir``, ``sqlite:///path.db``,
        ``redis://host:port/0``) or a connected
        :class:`~repro.service.dist.broker.Broker` instance.
    workers:
        Local worker processes to spawn against the broker (0 = rely
        on external ``repro worker`` processes entirely).
    cache:
        Parent-side :class:`ArtifactCache`; repeat submissions are
        served from it without touching the broker.
    disk_dir:
        Shared on-disk store directory — the fleet's persistent result
        tier.  Pass the same directory to every worker (``repro worker
        --cache-dir``); locally spawned workers inherit it.
    lease:
        Visibility timeout for claims; workers heartbeat at a third of
        it, and tasks of dead workers are requeued once it lapses.
    poll_interval:
        Parent-side result polling cadence (also the spawned workers'
        idle claim cadence).
    max_pending:
        Bound on queued-plus-running tasks; ``submit`` blocks once the
        bound is reached (backpressure towards producers).
    max_attempts:
        Delivery budget per task before it is quarantined.
    max_load / admission:
        Admission control (see :mod:`repro.service.resilience`), same
        contract as the pool's: past ``max_load`` in-flight *jobs*, the
        lowest-priority one is shed with a typed
        :class:`~repro.service.resilience.Overloaded` failure (the
        incoming job itself when nothing in flight ranks below it);
        ``admission`` supplies per-tenant token-bucket quotas.  A shed
        job's broker task is orphaned — its (discarded) result is
        reclaimed by the broker's stale-result sweep.  Generic calls
        are exempt.
    """

    def __init__(
        self,
        broker: "Broker | str",
        workers: int = 0,
        cache: ArtifactCache | None = None,
        disk_dir=None,
        lease: float = 60.0,
        poll_interval: float = 0.05,
        max_pending: int | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        max_load: int | None = None,
        admission: AdmissionController | None = None,
        trace=None,
    ):
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        if max_pending is not None and max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {max_pending}")
        self._owns_broker = isinstance(broker, str)
        self.broker = connect_broker(broker) if isinstance(broker, str) else broker
        self.cache = cache if cache is not None else ArtifactCache(disk_dir=disk_dir)
        # trace accepts a path (shared with spawned workers, who open
        # their own O_APPEND writers) or a TraceWriter (parent-only).
        self.tracer = None
        self._trace_path: str | None = None
        if trace is not None:
            if hasattr(trace, "emit"):
                self.tracer = trace
                self._trace_path = getattr(trace, "path", None)
            else:
                from repro.obs.trace import TraceWriter

                self._trace_path = str(trace)
                self.tracer = TraceWriter(self._trace_path, worker="dist-executor")
            if getattr(self.cache, "tracer", None) is None:
                self.cache.tracer = self.tracer
        self.lease = lease
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self._max_pending = max_pending
        if admission is None and max_load is not None:
            admission = AdmissionController(max_load=max_load)
        self.admission = admission
        self._seq = 0
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._inflight: dict[str, _InflightItem] = {}
        #: fingerprint -> primary in-flight job handle (coalescing).
        self._active: dict[str, JobHandle] = {}
        self._worker_stats: dict[str, dict] = {}
        self._closed = False
        self._last_requeue = 0.0
        self._requeues = 0
        self._processes = []
        if workers:
            if not self.broker.url:
                raise ReproError(
                    "spawning local workers needs a broker with a URL "
                    "(construct the executor from a broker URL)"
                )
            self.broker.clear_stop()
            self._processes = [
                spawn_worker_process(
                    self.broker.url,
                    cache_dir=disk_dir,
                    lease=lease,
                    poll_interval=poll_interval,
                    trace=self._trace_path,
                    trace_rotate_mb=getattr(self.tracer, "rotate_mb", None),
                )
                for _ in range(workers)
            ]
        self._poller = threading.Thread(target=self._poll_loop, daemon=True)
        self._poller.start()

    # -- submission --------------------------------------------------------

    def _enqueue(self, item: _InflightItem, envelope: TaskEnvelope) -> None:
        """Register the in-flight item, then hand the envelope to the broker."""
        with self._space:
            if self._closed:
                raise ReproError("executor is shut down")
            if item.fingerprint is not None:
                primary = self._active.get(item.fingerprint)
                if primary is not None and primary is not item.handle:
                    primary._attach(item.handle)
                    return
            while (
                self._max_pending is not None
                and len(self._inflight) >= self._max_pending
            ):
                self._space.wait()
                if self._closed:
                    raise ReproError("executor is shut down")
                if item.fingerprint is not None:
                    primary = self._active.get(item.fingerprint)
                    if primary is not None and primary is not item.handle:
                        primary._attach(item.handle)
                        return
            self._inflight[envelope.task_id] = item
            if item.fingerprint is not None:
                self._active[item.fingerprint] = item.handle
        try:
            self.broker.put(envelope)
        except Exception:
            with self._space:
                self._inflight.pop(envelope.task_id, None)
                if item.fingerprint is not None:
                    self._active.pop(item.fingerprint, None)
                self._space.notify_all()
            raise

    def _evict_lowest_locked(self, rank: int) -> "_InflightItem | None":
        """Pop the lowest-priority in-flight *job* ranking below ``rank``.

        The victim of a load shed: lowest priority, latest submitted on
        ties.  Returns ``None`` when nothing in flight ranks strictly
        below ``rank`` (the incoming job is then the victim).  Generic
        calls are never evicted.
        """
        worst_id: str | None = None
        worst_key: "tuple | None" = None
        for task_id, item in self._inflight.items():
            if item.kind != "job":
                continue
            key = (-item.priority, item.seq)
            if worst_key is None or key > worst_key:
                worst_key, worst_id = key, task_id
        if worst_id is None or self._inflight[worst_id].priority >= rank:
            return None
        victim = self._inflight.pop(worst_id)
        if victim.fingerprint is not None:
            self._active.pop(victim.fingerprint, None)
        return victim

    def submit(self, job: AbstractionJob, priority: int | None = None) -> JobHandle:
        """Enqueue a job on the broker; higher ``priority`` claims first.

        A parent cache hit completes the handle immediately (without
        charging the tenant's quota); an identical in-flight job
        coalesces (one computation, many awaiters).  Blocks while
        ``max_pending`` tasks are in flight.  With admission control
        configured, shed jobs fail typed
        (:class:`~repro.service.resilience.Overloaded`) through their
        handles — ``submit`` never raises for a policy outcome.
        """
        job.deadline()  # pin the absolute budget before pickling
        handle = _fingerprinted_handle(job)
        if handle.done():  # fingerprinting failed (e.g. unreadable log)
            return handle
        tracer = self.tracer
        mint_submit_span(job, tracer)
        if tracer is not None:
            tracer.emit(
                "submitted",
                fingerprint=handle.fingerprint,
                kind="job",
                trace_id=job.trace_id,
                span_id=job.span_id,
            )
        hit = self.cache.get_result(handle.fingerprint)
        if hit is not None:
            if tracer is not None:
                tracer.emit(
                    "done",
                    fingerprint=handle.fingerprint,
                    cached=True,
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._complete(hit, True)
            return handle
        if self.admission is not None and not self.admission.admit(job.tenant):
            if tracer is not None:
                tracer.emit(
                    "shed",
                    fingerprint=handle.fingerprint,
                    cause="tenant_quota",
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._fail(
                Overloaded(f"tenant {job.tenant!r} is over its admission quota")
            )
            return handle
        rank = job.priority if priority is None else priority
        max_load = self.admission.max_load if self.admission is not None else None
        victim: "_InflightItem | None" = None
        shed_incoming = False
        with self._space:
            if self._closed:
                raise ReproError("executor is shut down")
            primary = self._active.get(handle.fingerprint)
            if primary is not None:
                primary._attach(handle)
                return handle
            if max_load is not None and len(self._inflight) >= max_load:
                self.admission.count_load_shed()
                victim = self._evict_lowest_locked(rank)
                if victim is None:
                    shed_incoming = True
                else:
                    self._space.notify_all()
        if victim is not None:
            if tracer is not None:
                tracer.emit(
                    "shed",
                    fingerprint=victim.fingerprint,
                    cause="max_load_evicted",
                    trace_id=victim.trace_id,
                    parent_span=victim.span_id,
                )
            victim.handle._fail(
                Overloaded(
                    f"shed at max_load={max_load} by higher-priority submission"
                )
            )
        if shed_incoming:
            if tracer is not None:
                tracer.emit(
                    "shed",
                    fingerprint=handle.fingerprint,
                    cause="max_load",
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._fail(Overloaded(f"executor at max_load={max_load}; job shed"))
            return handle
        envelope = TaskEnvelope(
            task_id=new_task_id(),
            kind="job",
            payload=pickle.dumps(job),
            priority=rank,
            affinity=job_affinity_key(job),
        )
        with self._lock:
            self._seq += 1
            seq = self._seq
        item = _InflightItem(
            "job",
            handle,
            fingerprint=handle.fingerprint,
            priority=rank,
            seq=seq,
            deadline_at=job.deadline_at,
            trace_id=job.trace_id,
            span_id=job.span_id,
        )
        self._enqueue(item, envelope)
        if tracer is not None:
            with self._lock:
                enqueued = envelope.task_id in self._inflight
            if enqueued:  # not coalesced onto an in-flight twin
                tracer.emit(
                    "queued",
                    fingerprint=handle.fingerprint,
                    task_id=envelope.task_id,
                    priority=rank,
                    affinity=envelope.affinity,
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
        return handle

    def submit_call(self, fn, *args, priority: int = 0, **kwargs) -> CallHandle:
        """Enqueue a generic call; a worker runs it with its cache injected.

        ``fn`` must be picklable (a module-level function) and accept a
        ``cache`` keyword — identical to the pool's ``submit_call``
        contract, which is how Step-2 component solves fan out over a
        distributed fleet.
        """
        handle = CallHandle(getattr(fn, "__name__", "call"))
        envelope = TaskEnvelope(
            task_id=new_task_id(),
            kind="call",
            payload=pickle.dumps((fn, args, kwargs)),
            priority=priority,
        )
        self._enqueue(_InflightItem("call", handle), envelope)
        return handle

    def map(self, jobs) -> list:
        """Submit all jobs, await all results (submission order)."""
        handles = [self.submit(job) for job in jobs]
        return [handle.result() for handle in handles]

    # -- result polling ----------------------------------------------------

    def _poll_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                pending = list(self._inflight.items())
            progressed = False
            for task_id, item in pending:
                try:
                    payload = self.broker.get_result(task_id)
                except Exception:
                    payload = None
                if payload is None:
                    # Deadline fail-fast: an expired job never hangs its
                    # awaiter, even with zero workers on the broker.  A
                    # result that *did* arrive in budget is delivered
                    # normally above.
                    if (
                        item.deadline_at is not None
                        and time.time() >= item.deadline_at
                    ):
                        with self._space:
                            self._inflight.pop(task_id, None)
                            if item.fingerprint is not None:
                                self._active.pop(item.fingerprint, None)
                            self._space.notify_all()
                        if self.tracer is not None:
                            self.tracer.emit(
                                "deadline_exceeded",
                                fingerprint=item.fingerprint,
                                task_id=task_id,
                                stage="awaiting_result",
                                trace_id=item.trace_id,
                                parent_span=item.span_id,
                            )
                        item.handle._fail(
                            DeadlineExceeded(
                                "deadline exceeded awaiting distributed result "
                                f"for task {task_id[:12]}"
                            )
                        )
                        progressed = True
                    continue
                progressed = True
                try:
                    self.broker.forget_result(task_id)
                except Exception:
                    pass
                with self._space:
                    self._inflight.pop(task_id, None)
                    if item.fingerprint is not None:
                        self._active.pop(item.fingerprint, None)
                    self._space.notify_all()
                self._deliver(item, payload)
            now = time.time()
            if now - self._last_requeue >= max(self.lease / 2.0, 0.05):
                self._last_requeue = now
                try:
                    moved = self.broker.requeue_expired(
                        max_attempts=self.max_attempts
                    )
                    self._requeues += moved
                    if moved and self.tracer is not None:
                        self.tracer.emit("requeued", count=moved, by="executor_sweep")
                except Exception:
                    pass
            if not progressed:
                time.sleep(self.poll_interval)

    def _deliver(self, item: _InflightItem, payload: bytes) -> None:
        """Turn one result envelope into a handle completion/failure."""
        try:
            record = decode_result(payload)
        except Exception as exc:
            item.handle._fail(
                ReproError(f"broker returned an undecodable result: {exc}")
            )
            return
        worker = record.get("worker") or "?"
        stats = record.get("worker_stats")
        if stats:
            with self._lock:
                self._worker_stats[worker] = dict(stats)
        if self.tracer is not None:
            self.tracer.emit(
                "done",
                fingerprint=item.fingerprint,
                kind=item.kind,
                cached=bool(record.get("cached")),
                by=worker,
                error=(
                    None
                    if record["ok"]
                    else str(record.get("error") or "task failed")
                ),
                trace_id=item.trace_id,
                parent_span=item.span_id,
            )
        if record["ok"]:
            if item.kind == "job":
                try:
                    self.cache.put_result(item.handle.fingerprint, record["value"])
                except Exception:
                    pass  # best-effort, like the pool's completion path
                item.handle._complete(record["value"], bool(record.get("cached")))
            else:
                item.handle._complete(record["value"])
        else:
            error = record.get("exception")
            if error is None:
                error = ReproError(str(record.get("error") or "task failed"))
            item.handle._fail(error)

    # -- introspection / lifecycle ----------------------------------------

    def stats(self) -> dict:
        """Parent cache + broker depth + latest per-worker snapshots."""
        with self._lock:
            workers = {
                worker: dict(snap) for worker, snap in self._worker_stats.items()
            }
            inflight = len(self._inflight)
            requeues = self._requeues
        totals = {
            "artifact_builds": sum(
                s.get("artifact_builds", 0) for s in workers.values()
            ),
            "result_hits": sum(
                s.get("results", {}).get("hits", 0) for s in workers.values()
            ),
            "result_misses": sum(
                s.get("results", {}).get("misses", 0) for s in workers.values()
            ),
            "artifact_hits": sum(
                s.get("artifacts", {}).get("hits", 0) for s in workers.values()
            ),
            "selection_hits": sum(
                s.get("selection", {}).get("hits", 0) for s in workers.values()
            ),
        }
        try:
            broker_stats = self.broker.stats()
        except Exception as exc:
            # An unreachable broker must not look like an idle one:
            # surface the failure as a string instead of empty depths.
            broker_stats = {"broker_error": f"{type(exc).__name__}: {exc}"}
        stats = {
            "parent": self.cache.snapshot(),
            "workers": workers,
            "workers_total": totals,
            "broker": broker_stats,
            "scheduler": {
                "inflight": inflight,
                "requeues": requeues,
                "local_workers": len(self._processes),
            },
        }
        if self.admission is not None:
            stats["admission"] = self.admission.snapshot()
        return stats

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; stop spawned workers; fail leftovers.

        Locally spawned workers are stopped via the broker's
        cooperative stop flag (briefly visible to external workers on
        the same broker) and terminated if they do not exit in time.
        Handles still in flight fail with a shutdown error rather than
        hanging forever.
        """
        with self._space:
            if self._closed:
                return
            self._closed = True
            leftovers = list(self._inflight.values())
            self._inflight.clear()
            self._active.clear()
            self._space.notify_all()
        if self._processes:
            try:
                self.broker.request_stop()
            except Exception:
                pass
            deadline = time.time() + (10.0 if wait else 0.5)
            for process in self._processes:
                process.join(timeout=max(0.0, deadline - time.time()))
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
            try:
                self.broker.clear_stop()
            except Exception:
                pass
        if wait:
            self._poller.join(timeout=5.0)
        for item in leftovers:
            item.handle._fail(ReproError("executor is shut down"))
        if self._owns_broker:
            self.broker.close()

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
