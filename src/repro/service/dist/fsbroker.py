"""The zero-dependency filesystem broker: a queue made of atomic renames.

Any shared POSIX directory (local disk for a same-host fleet, NFS for a
multi-host one) becomes a task queue::

    <root>/
      queue/       one file per queued task; the *name* carries all
                   scheduling metadata (priority, enqueue time,
                   attempts, kind, affinity key, task id) so claiming
                   never has to open payloads it will not run
      claimed/     tasks currently leased to a worker
      leases/      <task_id>.json — {worker, deadline}; the lease clock
      results/     <task_id>.res — pickled result envelopes
      quarantine/  poisonous tasks, each with a .reason sidecar
      affinity/    <key>.json — cache-affinity ownership leases
      tmp/         staging for atomic writes
      stop         cooperative shutdown flag for worker loops

Exclusivity comes from ``os.rename`` being atomic within a filesystem:
claiming moves ``queue/<name>`` to ``claimed/<name>`` and exactly one
renamer wins; requeueing a lease-expired task moves it back (with
``attempts+1`` baked into the new name) and exactly one requeuer wins,
so concurrent :meth:`~FilesystemBroker.requeue_expired` sweeps cannot
duplicate a task.  Results and leases are staged in ``tmp/`` and
renamed into place, so readers never observe partial writes.

Task payloads and result envelopes additionally carry a sha256 frame
(``CHK1:<hex>\\n`` prefix, see :mod:`repro.service.journal`) verified
on every read: a torn or bit-rotted payload is quarantined (with an
error result, so waiting executors fail fast) instead of being handed
to a worker, and a corrupt result file is replaced by an explicit
error envelope instead of crashing the submitter's decode.  Unframed
payloads written by older builds still pass through unverified.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.service.dist.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    Claim,
    TaskEnvelope,
    encode_result,
)
from repro.service.journal import IntegrityError, frame_bytes, unframe_bytes

#: Priority is encoded as ``_PRIORITY_OFFSET - priority`` so that an
#: ascending directory sort yields highest-priority-first.
_PRIORITY_OFFSET = 1 << 31

#: How much longer than a task lease an affinity (per-log worker
#: ownership) lease lives: idle gaps between two jobs on the same log
#: should not cede the log's warmed artifacts to another worker.
_AFFINITY_LEASE_FACTOR = 5.0


@dataclass
class _EntryMeta:
    """Scheduling metadata parsed from a queue entry's file name."""

    name: str
    priority: int
    enqueued_ns: int
    attempts: int
    kind: str
    affinity: str | None
    task_id: str


def _entry_name(
    priority: int, enqueued_ns: int, attempts: int, kind: str,
    affinity: str | None, task_id: str,
) -> str:
    """Render a queue entry name (sortable: priority then FIFO)."""
    return (
        f"{_PRIORITY_OFFSET - priority:010d}.{enqueued_ns:020d}."
        f"{attempts:02d}.{kind}.{affinity or '-'}.{task_id}.task"
    )


def _parse_entry_name(name: str) -> _EntryMeta | None:
    """Parse a queue entry name; ``None`` when it is not one of ours."""
    parts = name.split(".")
    if len(parts) != 7 or parts[6] != "task":
        return None
    try:
        inverted, enqueued_ns, attempts = int(parts[0]), int(parts[1]), int(parts[2])
    except ValueError:
        return None
    kind, affinity, task_id = parts[3], parts[4], parts[5]
    if kind not in ("job", "call") or not task_id:
        return None
    return _EntryMeta(
        name=name,
        priority=_PRIORITY_OFFSET - inverted,
        enqueued_ns=enqueued_ns,
        attempts=attempts,
        kind=kind,
        affinity=None if affinity == "-" else affinity,
        task_id=task_id,
    )


class FilesystemBroker(Broker):
    """Task queue over a shared directory (see the module docstring).

    ``result_ttl`` bounds the results tier: at-least-once delivery can
    leave orphaned result files (a redelivered duplicate completing
    after the submitter consumed the original and moved on), so the
    requeue sweep garbage-collects results older than the TTL.  Live
    results are consumed by their executor within a poll interval of
    being written, orders of magnitude below any sane TTL.
    """

    def __init__(
        self, root: "str | Path", url: str | None = None,
        result_ttl: float = 3600.0,
    ):
        self.root = Path(root)
        self.url = url if url is not None else str(root)
        self.result_ttl = result_ttl
        self._last_result_sweep = 0.0
        for sub in ("queue", "claimed", "leases", "results", "quarantine",
                    "affinity", "tmp"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- atomic primitives -------------------------------------------------

    def _write_atomic(self, path: Path, data: bytes) -> None:
        staging = self.root / "tmp" / f"{uuid.uuid4().hex}.tmp"
        staging.write_bytes(data)
        os.replace(staging, path)

    def _write_json_atomic(self, path: Path, record: dict) -> None:
        self._write_atomic(path, json.dumps(record).encode("utf-8"))

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    @staticmethod
    def _unlink_quiet(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _take_ownership(self, path: Path, record: dict) -> bool:
        """Create (or take over an expired) ``{worker, deadline}`` file.

        The shared primitive behind task leases and affinity ownership:
        exclusive create wins outright; an existing file is taken over
        only when it is expired, unreadable, or already ours.
        """
        payload = json.dumps(record).encode("utf-8")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            current = self._read_json(path)
            if current is not None:
                if current.get("worker") != record["worker"] and (
                    current.get("deadline", 0.0) > time.time()
                ):
                    return False  # live ownership held elsewhere
            self._write_atomic(path, payload)
            return True
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return True

    # -- lease files -------------------------------------------------------

    def _lease_path(self, task_id: str) -> Path:
        return self.root / "leases" / f"{task_id}.json"

    def _lease_record(self, worker: str, lease: float, name: str) -> dict:
        return {"worker": worker, "deadline": time.time() + lease, "name": name}

    def _try_take_lease(self, task_id: str, worker: str, lease: float,
                        name: str) -> bool:
        """Create (or take over an expired) lease file for a task."""
        return self._take_ownership(
            self._lease_path(task_id), self._lease_record(worker, lease, name)
        )

    def _release_lease_if_mine(self, task_id: str, worker: str) -> None:
        """Drop the task's lease only when it still records ``worker``.

        A claimant that lost the queue->claimed rename race must not
        unlink unconditionally: the rename winner has re-asserted the
        lease under its own name by then, and deleting it would make
        the winner's claim look expired (requeued while healthy).
        """
        path = self._lease_path(task_id)
        current = self._read_json(path)
        if current is not None and current.get("worker") == worker:
            self._unlink_quiet(path)

    # -- affinity ownership ------------------------------------------------

    def _affinity_path(self, key: str) -> Path:
        return self.root / "affinity" / f"{key}.json"

    def _acquire_affinity(self, key: str, worker: str, lease: float) -> bool:
        """Acquire/refresh per-log ownership; ``False`` when owned elsewhere."""
        deadline = time.time() + max(lease * _AFFINITY_LEASE_FACTOR, 10.0)
        return self._take_ownership(
            self._affinity_path(key), {"worker": worker, "deadline": deadline}
        )

    def _refresh_affinity(self, key: str, worker: str, lease: float) -> None:
        current = self._read_json(self._affinity_path(key))
        if current is not None and current.get("worker") == worker:
            self._acquire_affinity(key, worker, lease)

    def _release_affinity_of(self, key: str, worker: str) -> None:
        """Drop ``worker``'s ownership of ``key`` (it is presumed dead)."""
        path = self._affinity_path(key)
        current = self._read_json(path)
        if current is not None and current.get("worker") == worker:
            self._unlink_quiet(path)

    def release_affinities(self, worker: str) -> None:
        """Release every affinity key ``worker`` owns (clean exit)."""
        try:
            names = os.listdir(self.root / "affinity")
        except OSError:
            return
        for name in names:
            if name.endswith(".json"):
                self._release_affinity_of(name[: -len(".json")], worker)

    # -- Broker API --------------------------------------------------------

    def put(self, envelope: TaskEnvelope) -> None:
        """Enqueue a task (payload file named by its scheduling metadata)."""
        name = _entry_name(
            envelope.priority, time.time_ns(), envelope.attempts,
            envelope.kind, envelope.affinity, envelope.task_id,
        )
        staging = self.root / "tmp" / f"{uuid.uuid4().hex}.tmp"
        staging.write_bytes(frame_bytes(envelope.payload))
        os.replace(staging, self.root / "queue" / name)

    def claim(self, worker: str, lease: float) -> Claim | None:
        """Claim the best queued task via lease-then-rename (see module doc)."""
        queue_dir = self.root / "queue"
        try:
            names = sorted(os.listdir(queue_dir))
        except OSError:
            return None
        for name in names:
            if name.endswith(".tmp"):
                continue
            meta = _parse_entry_name(name)
            if meta is None:
                # Foreign junk in the queue directory: park it so the
                # claim scan never trips over it again.
                self._quarantine_file(queue_dir / name, "unparsable queue entry")
                continue
            # A duplicate delivery of an already-finished task: drop it.
            if (self.root / "results" / f"{meta.task_id}.res").exists():
                self._unlink_quiet(queue_dir / name)
                self._unlink_quiet(self._lease_path(meta.task_id))
                continue
            if meta.affinity is not None and not self._acquire_affinity(
                meta.affinity, worker, lease
            ):
                continue
            if not self._try_take_lease(meta.task_id, worker, lease, name):
                continue
            try:
                os.rename(queue_dir / name, self.root / "claimed" / name)
            except OSError:
                self._release_lease_if_mine(meta.task_id, worker)
                continue
            # We own the claim now; assert the lease unconditionally in
            # case a racing claimant overwrote it between take and rename.
            self._write_json_atomic(
                self._lease_path(meta.task_id),
                self._lease_record(worker, lease, name),
            )
            try:
                payload = unframe_bytes((self.root / "claimed" / name).read_bytes())
            except OSError:
                # Requeued from under us in the same instant; let go.
                self._release_lease_if_mine(meta.task_id, worker)
                continue
            except IntegrityError as exc:
                # Torn or corrupted payload: never hand it to a worker.
                # We hold the lease and the claimed entry, so quarantine
                # through the normal path (reason sidecar + error result
                # so waiting executors fail fast).
                poisoned = Claim(
                    envelope=TaskEnvelope(
                        task_id=meta.task_id, kind=meta.kind, payload=b"",
                        priority=meta.priority, affinity=meta.affinity,
                        attempts=meta.attempts,
                    ),
                    worker=worker, deadline=time.time() + lease, token=name,
                )
                self.quarantine(poisoned, f"payload checksum failed: {exc}")
                continue
            envelope = TaskEnvelope(
                task_id=meta.task_id, kind=meta.kind, payload=payload,
                priority=meta.priority, affinity=meta.affinity,
                attempts=meta.attempts,
            )
            return Claim(
                envelope=envelope, worker=worker,
                deadline=time.time() + lease, token=name,
            )
        return None

    def heartbeat(self, claim: Claim, lease: float) -> bool:
        """Renew the task lease (and affinity); ``False`` once the claim is lost."""
        task_id = claim.envelope.task_id
        current = self._read_json(self._lease_path(task_id))
        if current is None or current.get("worker") != claim.worker:
            return False
        if not (self.root / "claimed" / str(claim.token)).exists():
            return False  # requeued from under us
        self._write_json_atomic(
            self._lease_path(task_id),
            self._lease_record(claim.worker, lease, str(claim.token)),
        )
        if claim.envelope.affinity is not None:
            self._refresh_affinity(claim.envelope.affinity, claim.worker, lease)
        claim.deadline = time.time() + lease
        return True

    def complete(self, claim: Claim, payload: bytes) -> bool:
        """Record the result; clean up the claim when it is still ours."""
        task_id = claim.envelope.task_id
        self._write_atomic(
            self.root / "results" / f"{task_id}.res", frame_bytes(payload)
        )
        current = self._read_json(self._lease_path(task_id))
        fresh = current is not None and current.get("worker") == claim.worker
        if fresh:
            self._unlink_quiet(self.root / "claimed" / str(claim.token))
            self._unlink_quiet(self._lease_path(task_id))
        return fresh

    def release(self, claim: Claim) -> bool:
        """Hand a claimed task back for redelivery (``attempts + 1``).

        The voluntary twin of the :meth:`requeue_expired` rename: only
        the rename winner requeues, so a concurrent expiry sweep cannot
        double-deliver the task.
        """
        task_id = claim.envelope.task_id
        name = str(claim.token)
        current = self._read_json(self._lease_path(task_id))
        if current is None or current.get("worker") != claim.worker:
            return False  # claim already lost; expiry handles the task
        meta = _parse_entry_name(name)
        if meta is None:
            return False
        fresh = _entry_name(
            meta.priority, time.time_ns(), meta.attempts + 1,
            meta.kind, meta.affinity, meta.task_id,
        )
        try:
            os.rename(self.root / "claimed" / name, self.root / "queue" / fresh)
        except OSError:
            return False  # requeued/finished from under us
        self._unlink_quiet(self._lease_path(task_id))
        return True

    def quarantine(self, claim: Claim, reason: str) -> None:
        """Park a poisonous claimed task; record an error result."""
        task_id = claim.envelope.task_id
        name = str(claim.token)
        try:
            os.rename(self.root / "claimed" / name, self.root / "quarantine" / name)
        except OSError:
            pass
        self._write_atomic(
            self.root / "quarantine" / f"{task_id}.reason",
            reason.encode("utf-8"),
        )
        self._write_atomic(
            self.root / "results" / f"{task_id}.res",
            frame_bytes(
                encode_result(
                    error=f"task quarantined: {reason}", worker=claim.worker
                )
            ),
        )
        self._unlink_quiet(self._lease_path(task_id))

    def _quarantine_file(self, path: Path, reason: str) -> None:
        """Move an unparsable queue file out of the scan path."""
        target = self.root / "quarantine" / path.name
        try:
            os.rename(path, target)
        except OSError:
            return
        self._write_atomic(
            self.root / "quarantine" / f"{path.name}.reason",
            reason.encode("utf-8"),
        )

    def requeue_expired(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Requeue lease-expired claimed tasks; exactly once per task.

        A task whose delivery attempts are exhausted is quarantined
        (with an error result, so awaiting executors fail fast) instead
        of crash-looping through the fleet.
        """
        claimed_dir = self.root / "claimed"
        moved = 0
        try:
            names = list(os.listdir(claimed_dir))
        except OSError:
            return 0
        now = time.time()
        for name in names:
            meta = _parse_entry_name(name)
            if meta is None:
                continue
            lease = self._read_json(self._lease_path(meta.task_id))
            if lease is not None and lease.get("deadline", 0.0) > now:
                continue  # live claim
            # The claimant is presumed dead: release its hold on the
            # task's affinity key too, so the redelivered task does not
            # wait out the (longer) affinity lease before another
            # worker may claim it.
            if meta.affinity is not None and lease is not None:
                self._release_affinity_of(meta.affinity, lease.get("worker", ""))
            attempts = meta.attempts + 1
            if attempts >= max_attempts:
                try:
                    os.rename(claimed_dir / name, self.root / "quarantine" / name)
                except OSError:
                    continue  # another requeuer won
                self._write_atomic(
                    self.root / "quarantine" / f"{meta.task_id}.reason",
                    f"delivery attempts exhausted ({attempts})".encode("utf-8"),
                )
                self._write_atomic(
                    self.root / "results" / f"{meta.task_id}.res",
                    frame_bytes(
                        encode_result(
                            error=(
                                f"task {meta.task_id} exceeded {max_attempts} "
                                "delivery attempts (worker crash loop?)"
                            )
                        )
                    ),
                )
            else:
                fresh = _entry_name(
                    meta.priority, time.time_ns(), attempts,
                    meta.kind, meta.affinity, meta.task_id,
                )
                try:
                    os.rename(claimed_dir / name, self.root / "queue" / fresh)
                except OSError:
                    continue  # another requeuer won
            self._unlink_quiet(self._lease_path(meta.task_id))
            moved += 1
        self._sweep_stale_results(now)
        return moved

    def _sweep_stale_results(self, now: float) -> None:
        """Garbage-collect orphaned result files past ``result_ttl``."""
        if self.result_ttl is None or now - self._last_result_sweep < (
            self.result_ttl / 10.0
        ):
            return
        self._last_result_sweep = now
        try:
            names = os.listdir(self.root / "results")
        except OSError:
            return
        for name in names:
            path = self.root / "results" / name
            try:
                if now - path.stat().st_mtime > self.result_ttl:
                    path.unlink()
            except OSError:
                continue

    def get_result(self, task_id: str) -> bytes | None:
        """Read a finished task's result envelope (``None`` while pending).

        A result that fails its checksum frame (torn write, bit rot) is
        moved to ``quarantine/`` for post-mortem and replaced in place
        by an explicit error envelope, so the waiting executor fails
        fast with a clear message instead of crashing on a truncated
        pickle — and repeated polls see a consistent answer.
        """
        path = self.root / "results" / f"{task_id}.res"
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            return unframe_bytes(raw)
        except IntegrityError as exc:
            try:
                os.replace(path, self.root / "quarantine" / f"{path.name}.bad")
            except OSError:
                pass
            replacement = encode_result(
                error=f"result for task {task_id} failed its checksum: {exc}"
            )
            self._write_atomic(path, frame_bytes(replacement))
            return replacement

    def forget_result(self, task_id: str) -> None:
        """Delete a consumed result file."""
        self._unlink_quiet(self.root / "results" / f"{task_id}.res")

    def request_stop(self) -> None:
        """Raise the cooperative stop flag for worker loops."""
        self._write_atomic(self.root / "stop", b"stop")

    def clear_stop(self) -> None:
        """Lower the stop flag (new executors reuse old broker dirs)."""
        self._unlink_quiet(self.root / "stop")

    def stop_requested(self) -> bool:
        """Whether the stop flag is raised."""
        return (self.root / "stop").exists()

    def stats(self) -> dict:
        """Live directory-depth counters."""
        def count(sub: str, suffix: str) -> int:
            try:
                return sum(
                    1 for name in os.listdir(self.root / sub)
                    if name.endswith(suffix)
                )
            except OSError:
                return 0

        return {
            "backend": "fs",
            "queued": count("queue", ".task"),
            "claimed": count("claimed", ".task"),
            "results": count("results", ".res"),
            "quarantined": count("quarantine", ".task"),
        }
