"""``repro.service.dist`` — the distributed executor backend.

The in-process :class:`~repro.service.executor.PoolExecutor` scales to
one host's cores; this package scales the same job model across
processes and hosts.  The pieces:

* :mod:`~repro.service.dist.broker` — the broker contract
  (:class:`TaskEnvelope`, :class:`Broker`, :func:`connect_broker`):
  durable queues with atomic claims, leases + heartbeats,
  visibility-timeout requeue of dead workers' tasks, quarantine for
  poisonous entries, and cache-affinity routing;
* :mod:`~repro.service.dist.fsbroker` /
  :mod:`~repro.service.dist.sqlitebroker` — two zero-dependency broker
  implementations (shared directory with atomic renames; one SQLite
  WAL file with row locks);
* :mod:`~repro.service.dist.redisbroker` — optional Redis broker
  behind an import gate;
* :mod:`~repro.service.dist.worker` — the ``repro worker --broker URL``
  claim-and-run loop;
* :mod:`~repro.service.dist.chaos` — :class:`ChaosBroker`, a seedable
  fault-injecting proxy over any broker (deterministic resilience
  drills; ``repro worker --chaos-seed N ...``);
* :mod:`~repro.service.dist.executor` — :class:`DistributedExecutor`,
  implementing the exact executor protocol of the pool (``submit``,
  ``submit_call``, coalescing, priorities, backpressure) over a broker.

Quickstart (one shared directory, two local workers)::

    from repro.service import AbstractionJob, LogRef
    from repro.service.dist import DistributedExecutor

    with DistributedExecutor("fs:///shared/queue", workers=2,
                             disk_dir="/shared/cache") as pool:
        handle = pool.submit(AbstractionJob(log=LogRef.builtin("loan:80"),
                                            constraints=constraints))
        result = handle.result()   # byte-identical to Gecco(...).abstract

Remote hosts join the same fleet with ``repro worker --broker
fs:///shared/queue --cache-dir /shared/cache``.
"""

from repro.service.dist.broker import (
    Broker,
    Claim,
    TaskEnvelope,
    connect_broker,
    decode_result,
    encode_result,
    encode_result_flagged,
    new_task_id,
)
from repro.service.dist.chaos import (
    ChaosBroker,
    ChaosConfig,
    ChaosError,
    DiskFaultInjector,
)
from repro.service.dist.executor import DistributedExecutor, job_affinity_key
from repro.service.dist.fsbroker import FilesystemBroker
from repro.service.dist.sqlitebroker import SQLiteBroker
from repro.service.dist.worker import (
    WorkerStats,
    default_worker_id,
    run_claimed_task,
    spawn_worker_process,
    worker_loop,
)

__all__ = [
    "Broker",
    "ChaosBroker",
    "ChaosConfig",
    "ChaosError",
    "Claim",
    "DiskFaultInjector",
    "DistributedExecutor",
    "FilesystemBroker",
    "SQLiteBroker",
    "TaskEnvelope",
    "WorkerStats",
    "connect_broker",
    "decode_result",
    "default_worker_id",
    "encode_result",
    "encode_result_flagged",
    "job_affinity_key",
    "new_task_id",
    "run_claimed_task",
    "spawn_worker_process",
    "worker_loop",
]
