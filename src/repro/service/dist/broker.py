"""The broker contract: durable task queues the distributed runtime rides on.

A broker is a (possibly multi-host) task queue with at-least-once
delivery and crash recovery.  The executor side
(:class:`~repro.service.dist.executor.DistributedExecutor`) *puts*
:class:`TaskEnvelope` objects and polls for results; the worker side
(:func:`~repro.service.dist.worker.worker_loop`) *claims* tasks under a
lease, heartbeats while computing, and *completes* them with a pickled
result envelope.  The life cycle of one task::

    put -> queued -> claim (lease) -> [heartbeat ...] -> complete -> result
                        |                                    ^
                        | lease expires (worker died)        |
                        +---> requeue (attempts+1) ----------+
                        |
                        +---> quarantine (attempts exhausted, or the
                              payload would not even deserialize)

Delivery is **at least once**: a worker that stalls past its lease gets
its task requeued, and the original worker may still finish and call
``complete`` — the runtime stays correct because jobs are
content-addressed (identical inputs produce identical results, so a
duplicate completion is a harmless overwrite) and ``complete`` reports
staleness so duplicates can be counted.

Two zero-dependency implementations ship in this package —
:class:`~repro.service.dist.fsbroker.FilesystemBroker` (atomic-rename
claims on a shared directory) and
:class:`~repro.service.dist.sqlitebroker.SQLiteBroker` (row locks in
one WAL database file) — plus an optional
:class:`~repro.service.dist.redisbroker.RedisBroker` behind the same
import gate pattern as numpy/scipy.  :func:`connect_broker` maps broker
URLs (``fs://…``, ``sqlite://…``, ``redis://…``, or a bare directory
path) to instances.
"""

from __future__ import annotations

import pickle
import uuid
from dataclasses import dataclass, field

from repro.exceptions import ReproError

#: Task kinds carried by an envelope: a pickled
#: :class:`~repro.service.jobs.AbstractionJob`, or a pickled
#: ``(fn, args, kwargs)`` generic call (the ``submit_call`` twin).
TASK_KINDS = ("job", "call")

#: Default number of deliveries before a task is quarantined.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass
class TaskEnvelope:
    """One queued unit of work, as it travels through a broker.

    Attributes
    ----------
    task_id:
        Unique id assigned at submission (uuid hex).
    kind:
        ``"job"`` or ``"call"`` (see :data:`TASK_KINDS`).
    payload:
        The pickled work item.
    priority:
        Higher dispatches first (ties break by enqueue order).
    affinity:
        Optional cache-affinity key (the job's artifact log prefix,
        digested): brokers route all tasks sharing a key to the worker
        that first claimed it, so per-log artifacts are built once per
        fleet instead of once per (worker, log).
    attempts:
        Deliveries so far; maintained by the broker on requeue.
    """

    task_id: str
    kind: str
    payload: bytes
    priority: int = 0
    affinity: str | None = None
    attempts: int = 0

    def __post_init__(self):
        if self.kind not in TASK_KINDS:
            raise ReproError(f"unknown task kind {self.kind!r}; use {TASK_KINDS}")


@dataclass
class Claim:
    """A claimed task: the envelope plus the worker's lease on it."""

    envelope: TaskEnvelope
    worker: str
    deadline: float
    #: Broker-private bookkeeping (e.g. the claimed file name).
    token: object = field(default=None, repr=False)


def new_task_id() -> str:
    """Mint a unique task id."""
    return uuid.uuid4().hex


def encode_result_flagged(
    value=None,
    error: str | None = None,
    cached: bool = False,
    worker: str = "",
    worker_stats: dict | None = None,
) -> tuple[bytes, bool]:
    """Pickle one result envelope; return ``(payload, ok)``.

    ``ok`` is ``True`` only for a successfully encoded success
    envelope: values that refuse to pickle degrade to an error
    envelope instead of poisoning the result channel, and the flag
    spares callers re-deserializing the payload to learn the outcome.
    """
    record = {
        "ok": error is None,
        "value": value,
        "error": error,
        "cached": cached,
        "worker": worker,
        "worker_stats": worker_stats or {},
    }
    try:
        return pickle.dumps(record), record["ok"]
    except Exception as exc:  # unpicklable value: degrade, don't poison
        record.update(ok=False, value=None, error=f"result not picklable: {exc}")
        return pickle.dumps(record), False


def encode_result(
    value=None,
    error: str | None = None,
    cached: bool = False,
    worker: str = "",
    worker_stats: dict | None = None,
) -> bytes:
    """Pickle one result envelope (success when ``error`` is ``None``)."""
    return encode_result_flagged(value, error, cached, worker, worker_stats)[0]


def decode_result(payload: bytes) -> dict:
    """Unpickle a result envelope written by :func:`encode_result`."""
    record = pickle.loads(payload)
    if not isinstance(record, dict) or "ok" not in record:
        raise ReproError("malformed result envelope")
    return record


class Broker:
    """Abstract broker API (see the module docstring for the life cycle).

    Implementations must make :meth:`claim` exclusive (two workers never
    both hold a live lease on one task), :meth:`requeue_expired`
    idempotent under concurrent calls (an expired task requeues exactly
    once), and :meth:`complete` last-write-wins atomic.
    """

    #: The URL this broker was connected from (what worker processes
    #: re-connect with); set by :func:`connect_broker` / constructors.
    url: str = ""

    def put(self, envelope: TaskEnvelope) -> None:
        """Enqueue a task."""
        raise NotImplementedError

    def claim(self, worker: str, lease: float) -> Claim | None:
        """Atomically claim the best queued task, or ``None``.

        Tasks whose affinity key is owned by a *different* live worker
        are skipped (their owner will take them); claiming a task with
        an unowned affinity key acquires the key for ``worker``.
        """
        raise NotImplementedError

    def heartbeat(self, claim: Claim, lease: float) -> bool:
        """Extend the claim's lease; ``False`` when the claim was lost."""
        raise NotImplementedError

    def complete(self, claim: Claim, payload: bytes) -> bool:
        """Finish a claimed task with a result envelope.

        Returns ``False`` when the claim had already been requeued or
        finished elsewhere (a duplicate delivery) — the result payload
        is still recorded (identical by content-addressing), so this is
        accounting, not an error.
        """
        raise NotImplementedError

    def release(self, claim: Claim) -> bool:
        """Hand a claimed task back for redelivery (attempts + 1).

        The voluntary twin of lease expiry: a worker that cannot make
        progress on a claim for a *transient* reason — e.g. the payload
        arrived corrupted in flight — releases it so another delivery
        can succeed, instead of quarantining a possibly-good task on
        first sight.  Returns ``True`` when the task went back to the
        queue, ``False`` when the claim was already gone (requeued or
        finished elsewhere) or the broker does not support voluntary
        release — in which case lease expiry requeues it eventually,
        so ``False`` is safe to ignore.
        """
        del claim
        return False

    def quarantine(self, claim: Claim, reason: str) -> None:
        """Park a poisonous claimed task and record an error result.

        Used for payloads that fail to deserialize and for tasks whose
        delivery attempts are exhausted: the task leaves the queue (no
        crash-loop) but stays inspectable, and an error result unblocks
        any executor awaiting it.
        """
        raise NotImplementedError

    def get_result(self, task_id: str) -> bytes | None:
        """Fetch (without consuming) a finished task's result envelope."""
        raise NotImplementedError

    def forget_result(self, task_id: str) -> None:
        """Drop a consumed result (executor-side cleanup)."""
        raise NotImplementedError

    def release_affinities(self, worker: str) -> None:
        """Release every affinity key ``worker`` owns (clean exit).

        Affinity ownership leases outlive task leases by design; a
        worker that exits cleanly must hand its logs back immediately
        so queued same-log tasks are not stalled until the ownership
        lease runs out.
        """
        raise NotImplementedError

    def requeue_expired(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Requeue lease-expired tasks (quarantining exhausted ones).

        Returns the number of tasks moved.  Safe to call from any
        process at any time; concurrent calls requeue each expired task
        exactly once.
        """
        raise NotImplementedError

    def request_stop(self) -> None:
        """Ask every worker polling this broker to exit its loop."""
        raise NotImplementedError

    def clear_stop(self) -> None:
        """Withdraw a previous stop request (e.g. on executor start)."""
        raise NotImplementedError

    def stop_requested(self) -> bool:
        """Whether workers have been asked to stop."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Queue depth counters: queued/claimed/results/quarantined."""
        raise NotImplementedError

    def close(self) -> None:
        """Release broker resources (connections, handles)."""

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect_broker(url: str) -> Broker:
    """Open the broker a URL names.

    Accepted forms:

    * ``fs:///shared/dir`` or a bare directory path — the
      zero-dependency filesystem queue (any shared POSIX directory:
      local disk for same-host fleets, NFS for multi-host);
    * ``sqlite:///path/to/queue.db`` — the zero-dependency SQLite
      queue (one WAL database file; same-host fleets only — WAL's
      shared-memory index does not work across machines);
    * ``redis://host:port/db`` — the Redis queue; needs the optional
      ``redis`` package and raises :class:`~repro.exceptions.ReproError`
      with an install hint when it is absent.
    """
    if url.startswith("redis://") or url.startswith("rediss://"):
        from repro.service.dist.redisbroker import HAVE_REDIS, RedisBroker

        if not HAVE_REDIS:
            raise ReproError(
                "broker URL needs the optional 'redis' package "
                "(pip install redis), or use fs:// / sqlite:// brokers"
            )
        return RedisBroker(url)
    if url.startswith("sqlite://"):
        from repro.service.dist.sqlitebroker import SQLiteBroker

        path = url[len("sqlite://"):]
        if not path:
            raise ReproError("sqlite broker URL needs a path: sqlite:///dir/queue.db")
        return SQLiteBroker(path, url=url)
    if "://" in url and not url.startswith("fs://"):
        raise ReproError(
            f"unknown broker URL scheme {url.split('://', 1)[0]!r} "
            "(use fs://, sqlite://, or redis://)"
        )
    from repro.service.dist.fsbroker import FilesystemBroker

    path = url[len("fs://"):] if url.startswith("fs://") else url
    if not path:
        raise ReproError("fs broker URL needs a directory: fs:///shared/dir")
    return FilesystemBroker(path, url=url)
