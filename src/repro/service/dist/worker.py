"""The distributed worker loop behind ``repro worker --broker URL``.

A worker is one process anywhere in the fleet: it connects to the
broker, claims tasks under a lease, heartbeats from a helper thread
while computing (so long jobs survive their visibility timeout), runs
the task against a worker-local
:class:`~repro.service.cache.ArtifactCache`, and completes the task
with a pickled result envelope.  Pointing every worker's cache at the
same ``--cache-dir`` turns the on-disk store into the fleet's shared
result tier: a cold fleet converges to one computation per distinct
job and (with affinity routing, which brokers apply by default) one
artifact build per log.

Failure semantics:

* a task whose payload does not deserialize is **quarantined** (error
  result recorded, task parked for inspection) — one bad manifest row
  cannot crash-loop the fleet;
* a task whose computation raises completes with an **error envelope**
  — the submitting executor re-raises it from ``handle.result()``;
* a worker that dies mid-task stops heartbeating, its lease expires,
  and any party's :meth:`~repro.service.dist.broker.Broker.requeue_expired`
  sweep redelivers the task (bounded by ``max_attempts``).
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.obs.trace import new_span_id, span_scope
from repro.service.cache import ArtifactCache
from repro.service.dist.broker import (
    DEFAULT_MAX_ATTEMPTS,
    Broker,
    Claim,
    connect_broker,
    encode_result_flagged,
)
from repro.service.resilience import RetryPolicy


def default_worker_id() -> str:
    """A fleet-unique worker name: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """Counters of one worker loop's lifetime."""

    worker: str = ""
    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    stale_completions: int = 0
    requeued: int = 0
    released: int = 0
    broker_errors: int = 0
    heartbeat_errors: int = 0
    cache: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-data rendering for logs and tests."""
        return {
            "worker": self.worker,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "stale_completions": self.stale_completions,
            "requeued": self.requeued,
            "released": self.released,
            "broker_errors": self.broker_errors,
            "heartbeat_errors": self.heartbeat_errors,
            "cache": dict(self.cache),
        }


class _Heartbeat:
    """Renews a claim's lease from a helper thread while a task runs.

    Broker errors during a beat are counted via ``on_error`` and
    retried on the next interval; ``max_misses`` *consecutive* failed
    beats fail the lease fast (``lost`` flips and renewal stops, so
    the lease expires and the task is redelivered) instead of silently
    renewing nothing while a partitioned broker heals.
    """

    def __init__(
        self,
        broker: Broker,
        claim: Claim,
        lease: float,
        on_error=None,
        max_misses: int = 5,
    ):
        self._broker = broker
        self._claim = claim
        self._lease = lease
        self._on_error = on_error
        self._max_misses = max_misses
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.lost = False
        self.misses = 0

    def _run(self) -> None:
        interval = max(self._lease / 3.0, 0.02)
        consecutive = 0
        while not self._stop.wait(interval):
            try:
                if not self._broker.heartbeat(self._claim, self._lease):
                    self.lost = True
                    return
                consecutive = 0
            except Exception as exc:
                # A transient broker hiccup must not kill the task; the
                # next beat retries, and a truly lost lease is absorbed
                # by the at-least-once completion semantics.
                consecutive += 1
                self.misses += 1
                if self._on_error is not None:
                    self._on_error(exc)
                if consecutive >= self._max_misses:
                    self.lost = True
                    return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


#: Sentinel for "deserialize the payload yourself" in run_claimed_task.
_DECODE = object()


def decode_claimed_payload(claim: Claim):
    """Deserialize a claim's payload, raising :class:`_PoisonPayload`.

    Split out of :func:`run_claimed_task` so the worker loop can read
    the span context a job payload carries (``trace_id``/``span_id``
    minted at submit) *before* emitting its ``claimed`` event, without
    deserializing twice.
    """
    try:
        return pickle.loads(claim.envelope.payload)
    except Exception as exc:
        # Deserialization failures are the *caller's* signal to
        # quarantine; encode them distinctly so it can tell.
        raise _PoisonPayload(f"payload does not deserialize: {exc!r}") from exc


def run_claimed_task(
    claim: Claim, cache: ArtifactCache, worker: str, work=_DECODE
) -> tuple[bytes, bool]:
    """Execute one claimed task; return ``(result envelope, ok)``.

    ``job`` payloads run through :func:`repro.service.executor.run_job`
    (full cache discipline: result tier, shared artifacts, selection
    tier); ``call`` payloads run ``fn(*args, cache=cache, **kwargs)``
    exactly like pool workers do for ``submit_call``.  Exceptions are
    captured into an error envelope (``ok=False``), never raised — the
    flag spares callers re-deserializing the (potentially large)
    envelope just to learn the outcome.  ``work`` accepts an
    already-deserialized payload (from
    :func:`decode_claimed_payload`); by default it is decoded here.
    """
    if work is _DECODE:
        work = decode_claimed_payload(claim)
    try:
        if claim.envelope.kind == "job":
            from repro.service.executor import run_job

            result, cached = run_job(work, cache)
            return encode_result_flagged(
                value=result, cached=cached, worker=worker,
                worker_stats=cache.snapshot(),
            )
        fn, args, kwargs = work
        value = fn(*args, cache=cache, **kwargs)
        return encode_result_flagged(
            value=value, worker=worker, worker_stats=cache.snapshot()
        )
    except Exception as exc:
        try:
            pickle.dumps(exc)
            picklable: "BaseException | None" = exc
        except Exception:
            picklable = None
        record = {
            "ok": False,
            "value": None,
            "error": f"{type(exc).__name__}: {exc}",
            "exception": picklable,
            "cached": False,
            "worker": worker,
            "worker_stats": cache.snapshot(),
        }
        return pickle.dumps(record), False


class _PoisonPayload(Exception):
    """A claimed payload that cannot even be deserialized."""


def worker_loop(
    broker: "Broker | str",
    cache: ArtifactCache | None = None,
    cache_dir=None,
    worker_id: str | None = None,
    lease: float = 60.0,
    poll_interval: float = 0.2,
    max_tasks: int | None = None,
    idle_exit: float | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry: RetryPolicy | None = None,
    heartbeat_max_misses: int = 5,
    trace=None,
    trace_rotate_mb: float | None = None,
    stats: WorkerStats | None = None,
    observer=None,
) -> WorkerStats:
    """Claim-and-run tasks until stopped; return lifetime counters.

    Parameters
    ----------
    broker:
        A broker instance or URL (``fs://``, ``sqlite://``, ``redis://``).
    cache / cache_dir:
        The worker-local artifact cache, or the shared on-disk store
        directory to back a fresh one with (the fleet's result tier).
    worker_id:
        Fleet-unique name; default ``<hostname>-<pid>``.
    lease:
        Visibility timeout per claim; a heartbeat thread renews it at
        ``lease/3`` while a task runs.
    poll_interval:
        Idle sleep between empty claim attempts.
    max_tasks:
        Stop after this many completed tasks (``None`` = unbounded).
    idle_exit:
        Stop after this many seconds without work (``None`` = never).
    max_attempts:
        Delivery budget before an undeliverable task is quarantined.
    retry:
        The :class:`~repro.service.resilience.RetryPolicy` used for the
        broker claim and complete calls (default: 3 attempts seeded by
        the worker id, so concurrent workers desynchronize their
        backoff).  Exhausted retries never kill the loop — a failed
        claim round just polls again, a failed complete leaves the
        lease to expire and the task to be redelivered.
    heartbeat_max_misses:
        Consecutive heartbeat failures before the lease is failed fast
        (renewal stops; the task is redelivered after lease expiry).
    trace:
        Optional trace file path or
        :class:`~repro.obs.trace.TraceWriter` — the loop then records
        ``claimed`` / ``retry`` / ``heartbeat`` / ``released`` /
        ``quarantined`` / ``requeued`` / ``done`` events and a final
        ``worker_exit`` carrying the full :class:`WorkerStats` (so
        ``repro doctor`` can attribute lease losses per worker even
        when stdout is lost).
    trace_rotate_mb:
        When ``trace`` is a path, rotate the trace file past this many
        megabytes (``None`` = never; ignored when a ready-made writer
        is passed — set ``rotate_mb`` on the writer instead).
    stats:
        Optional externally-owned :class:`WorkerStats` the loop counts
        into — the hook the ``repro worker --metrics-port`` sidecar
        scrapes live counters through while the loop runs.
    observer:
        Optional ``observer(outcome, seconds)`` callback fired after
        each completed task (``outcome`` is ``"ok"`` or ``"error"``) —
        how ``repro worker --metrics-port`` feeds its
        ``repro_job_duration_seconds`` histogram and
        ``repro_jobs_total`` counters per event instead of per scrape.
        Exceptions from the observer are swallowed.

    The loop exits on: broker stop flag, ``max_tasks``, ``idle_exit``,
    ``KeyboardInterrupt``, or — when running in a process main thread —
    SIGTERM/SIGINT.  Signals drain gracefully: the current job runs to
    completion and is completed on the broker, affinity holds are
    released, and the final ``worker_exit`` trace event is written,
    instead of dying mid-lease and costing the fleet a redelivery.
    """
    owns_broker = isinstance(broker, str)
    if owns_broker:
        broker = connect_broker(broker)
    if cache is None:
        cache = ArtifactCache(disk_dir=cache_dir)
    if stats is None:
        stats = WorkerStats(worker=worker_id or default_worker_id())
    elif not stats.worker:
        stats.worker = worker_id or default_worker_id()
    tracer = None
    if trace is not None:
        if hasattr(trace, "emit"):
            tracer = trace
        else:
            from repro.obs.trace import TraceWriter

            tracer = TraceWriter(
                str(trace), worker=stats.worker, rotate_mb=trace_rotate_mb
            )
        if getattr(cache, "tracer", None) is None:
            cache.tracer = tracer
    if retry is None:
        retry = RetryPolicy(
            attempts=3, base_delay=poll_interval, seed=stats.worker
        )

    def count_broker_error(exc, attempt=0, op="claim"):
        stats.broker_errors += 1
        if tracer is not None:
            tracer.emit(
                "retry", op=op, attempt=attempt,
                cause=f"{type(exc).__name__}: {exc}",
            )

    def count_heartbeat_error(exc):
        stats.heartbeat_errors += 1
        if tracer is not None:
            tracer.emit("heartbeat", error=f"{type(exc).__name__}: {exc}")

    # Graceful drain on SIGTERM/SIGINT: the handler only raises a flag
    # checked at the loop top, so the in-flight job finishes, completes
    # on the broker, and the finally block below still releases
    # affinity holds and writes the final worker_exit event.  Signals
    # can only be trapped from a process main thread (tests run
    # worker_loop on helper threads) — elsewhere the loop still exits
    # via the broker stop flag or KeyboardInterrupt.
    drain = {"signal": None}
    previous_handlers = {}

    def _request_drain(signum, frame):  # pragma: no cover - signal path
        drain["signal"] = signum

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[signum] = signal.signal(signum, _request_drain)
        except ValueError:
            break  # not the main thread; leave handlers untouched

    idle_since = time.time()
    try:
        while True:
            if drain["signal"] is not None or broker.stop_requested():
                break
            try:
                moved = broker.requeue_expired(max_attempts=max_attempts)
                stats.requeued += moved
                if moved and tracer is not None:
                    tracer.emit("requeued", count=moved, by="worker_sweep")
            except Exception:
                pass  # hygiene sweep only; claiming is the loop's job
            try:
                claim = retry.call(
                    broker.claim, stats.worker, lease,
                    key="claim", on_retry=count_broker_error,
                )
            except Exception:
                # A transient broker hiccup (NFS stall, sqlite busy
                # timeout, brief disk-full) must not kill the worker
                # even past the retry budget: back off one poll
                # interval and start a fresh claim round.
                stats.broker_errors += 1
                time.sleep(poll_interval)
                continue
            if claim is None:
                if idle_exit is not None and time.time() - idle_since >= idle_exit:
                    break
                time.sleep(poll_interval)
                continue
            idle_since = time.time()
            # Deserialize before the claimed event so a job payload's
            # span context (minted at submit, carried in the pickle)
            # lands on every event of this claim; poison is remembered
            # and handled under the heartbeat below.
            work, poison = None, None
            try:
                work = decode_claimed_payload(claim)
            except _PoisonPayload as exc:
                poison = exc
            trace_id = (
                getattr(work, "trace_id", None)
                if claim.envelope.kind == "job"
                else None
            )
            submit_span = getattr(work, "span_id", None) if trace_id else None
            claim_span = new_span_id() if trace_id else None
            if tracer is not None:
                tracer.emit(
                    "claimed",
                    task_id=claim.envelope.task_id,
                    kind=claim.envelope.kind,
                    attempt=claim.envelope.attempts,
                    affinity=claim.envelope.affinity,
                    trace_id=trace_id,
                    span_id=claim_span,
                    parent_span=submit_span,
                )
            task_started = time.perf_counter()
            with _Heartbeat(
                broker, claim, lease,
                on_error=count_heartbeat_error,
                max_misses=heartbeat_max_misses,
            ) as beat:
                if poison is None:
                    with span_scope(trace_id, claim_span):
                        payload, ok = run_claimed_task(
                            claim, cache, stats.worker, work=work
                        )
                else:
                    # A payload that does not deserialize may be a
                    # transient corruption (bit-flip in flight) rather
                    # than a poisonous manifest row: while delivery
                    # attempts remain, hand it back for redelivery and
                    # only quarantine once the budget is spent (or the
                    # broker does not support voluntary release).
                    released = False
                    if claim.envelope.attempts + 1 < max_attempts:
                        try:
                            released = broker.release(claim)
                        except Exception:
                            stats.broker_errors += 1
                    if released:
                        stats.released += 1
                        if tracer is not None:
                            tracer.emit(
                                "released",
                                task_id=claim.envelope.task_id,
                                attempt=claim.envelope.attempts,
                                reason=str(poison),
                            )
                        continue
                    try:
                        broker.quarantine(claim, str(poison))
                    except Exception:
                        stats.broker_errors += 1
                    stats.quarantined += 1
                    if tracer is not None:
                        tracer.emit(
                            "quarantined",
                            task_id=claim.envelope.task_id,
                            attempt=claim.envelope.attempts,
                            reason=str(poison),
                        )
                    continue
            if tracer is not None and beat.lost:
                tracer.emit(
                    "heartbeat",
                    task_id=claim.envelope.task_id,
                    error="lease lost (heartbeat fail-fast)",
                    misses=beat.misses,
                    trace_id=trace_id,
                    parent_span=claim_span,
                )
            try:
                fresh = retry.call(
                    broker.complete, claim, payload,
                    key="complete",
                    on_retry=lambda exc, attempt: count_broker_error(
                        exc, attempt, op="complete"
                    ),
                )
            except Exception:
                # A computed result is too expensive to discard over a
                # failed write, but the retry budget is spent: the
                # lease lapses and the task is redelivered to another
                # worker.
                stats.broker_errors += 1
                continue
            if not fresh:
                stats.stale_completions += 1
            if ok:
                stats.completed += 1
            else:
                stats.failed += 1
            if observer is not None:
                try:
                    observer(
                        "ok" if ok else "error",
                        time.perf_counter() - task_started,
                    )
                except Exception:
                    pass
            if tracer is not None:
                tracer.emit(
                    "done",
                    task_id=claim.envelope.task_id,
                    kind=claim.envelope.kind,
                    attempt=claim.envelope.attempts,
                    seconds=time.perf_counter() - task_started,
                    ok=ok,
                    stale=not fresh,
                    trace_id=trace_id,
                    parent_span=claim_span,
                )
            if max_tasks is not None and stats.completed >= max_tasks:
                break
            idle_since = time.time()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):
                pass
        # Hand owned logs back so queued same-log tasks are not stalled
        # until the (long) affinity ownership lease expires.
        try:
            broker.release_affinities(stats.worker)
        except Exception:
            pass
        stats.cache = cache.snapshot()
        if tracer is not None:
            # The exit stats used to be print-only and lost with stdout;
            # persisting them lets the doctor attribute lease losses
            # (heartbeat_errors/released/broker_errors) per worker.
            tracer.emit(
                "worker_exit",
                stats=stats.as_dict(),
                drained_by=(
                    signal.Signals(drain["signal"]).name
                    if drain["signal"] is not None
                    else None
                ),
            )
        if owns_broker:
            broker.close()
    return stats


def spawn_worker_process(
    broker_url: str,
    cache_dir=None,
    lease: float = 60.0,
    poll_interval: float = 0.05,
    mp_context: str | None = None,
    trace: str | None = None,
    trace_rotate_mb: float | None = None,
):
    """Start a local :func:`worker_loop` in a child process.

    The executor uses this to make ``repro batch --broker URL`` /
    ``DistributedExecutor(workers=N)`` self-contained; remote hosts
    join the same broker with ``repro worker --broker URL`` instead.
    ``trace`` is a shared trace file path — the child opens its own
    line-atomic writer on it.  Returns the started
    :class:`multiprocessing.Process`.
    """
    import multiprocessing

    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    context = multiprocessing.get_context(mp_context)
    process = context.Process(
        target=_worker_process_main,
        args=(broker_url, str(cache_dir) if cache_dir is not None else None,
              lease, poll_interval, trace, trace_rotate_mb),
        daemon=True,
    )
    process.start()
    return process


def _worker_process_main(
    broker_url: str,
    cache_dir: str | None,
    lease: float,
    poll_interval: float,
    trace: str | None = None,
    trace_rotate_mb: float | None = None,
) -> None:
    worker_loop(
        broker_url, cache_dir=cache_dir, lease=lease,
        poll_interval=poll_interval, trace=trace,
        trace_rotate_mb=trace_rotate_mb,
    )
