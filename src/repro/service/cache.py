"""The artifact cache: per-log artifacts, finished results, components.

Three tiers, all content-addressed by components of the job fingerprint
(:class:`~repro.service.jobs.JobFingerprint`) or by content digests:

* **artifact tier** — keyed by the fingerprint's *log prefix*
  ``(log digest, instance policy, engine)``; holds the expensive
  constraint-independent :class:`~repro.core.gecco.PipelineArtifacts`
  (compiled log, instance index, DFG) so every job on the same log
  shares one build;
* **result tier** — keyed by the *full* fingerprint; holds finished
  :class:`~repro.core.gecco.AbstractionResult` objects so repeated jobs
  are served without recomputation.  Optionally backed by an on-disk
  store (JSON, via :mod:`repro.service.serialization` and the atomic
  writers of :mod:`repro.experiments.persistence`) that survives
  process restarts and is shared between workers;
* **selection tier** — keyed by the content digest of one Step-2
  component solve cell (:func:`repro.selection2.component_cache_key`);
  holds solved :class:`~repro.selection2.portfolio.ComponentSolution`
  objects so constraint-set sweeps over one log reuse Step-2 work
  across jobs.  When a disk store is configured, *proved* cells
  (optimal / infeasible — never timeouts or solver errors, which must
  not poison a persistent tier) are also written under
  ``selection/<digest>.json`` and survive restarts.

The on-disk store accepts optional **budgets**: a TTL (entries older
than ``disk_ttl`` seconds since last use are expired on read and on
enforcement sweeps) and size bounds (``disk_max_entries`` /
``disk_max_bytes``) enforced by least-recently-used eviction (file
mtimes, refreshed on every disk hit, are the recency clock).  The TTL
covers every entry; the size bounds apply **per tier** — results and
selection cells each honor the configured limits independently (total
disk use is bounded by twice the byte budget), so a burst of tiny
selection cells can never evict expensive finished results.

All memory tiers are bounded LRU maps; hit/miss/eviction counters are
kept per tier and surface in batch reports and ``BENCH_pipeline.json``.
All operations are thread-safe (the pool executor's completion
callbacks run on a helper thread).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.gecco import AbstractionResult
from repro.experiments.persistence import read_json, write_json_atomic
from repro.service.journal import seal, sweep_stale_tmp, verify_seal
from repro.service.resilience import RetryPolicy
from repro.service.serialization import result_from_dict, result_to_dict

#: Component-solve outcomes that may enter the persistent selection
#: store: proofs hold for any time budget, timeouts/errors do not.
_PERSISTABLE_SELECTION_STATUSES = ("optimal", "infeasible")

#: Default retry policy for disk-store writes: a transient write
#: failure (NFS stall, brief disk-full, antivirus lock) gets a couple
#: of quick backed-off retries before the tier degrades to best-effort.
_DISK_WRITE_RETRY = RetryPolicy(
    attempts=3, base_delay=0.02, max_delay=0.25, seed="cache-disk"
)


def _selection_to_dict(solution) -> dict | None:
    """JSON form of a proved ComponentSolution; ``None`` if not persistable."""
    from repro.selection2.portfolio import ComponentSolution

    if not isinstance(solution, ComponentSolution):
        return None
    if solution.status not in _PERSISTABLE_SELECTION_STATUSES:
        return None
    return {
        "schema": "gecco-selection/1",
        "status": solution.status,
        "groups": [list(group) for group in solution.groups],
        "objective": solution.objective,
        "nodes": solution.nodes,
        "backend": solution.backend,
        "message": solution.message,
        "lp_cuts": solution.lp_cuts,
        "canonical": solution.canonical,
    }


def _selection_from_dict(payload: dict):
    """Rebuild a ComponentSolution from its JSON form (raises if foreign)."""
    from repro.selection2.portfolio import ComponentSolution

    if payload.get("schema") != "gecco-selection/1":
        raise ValueError(f"unknown selection entry schema: {payload.get('schema')!r}")
    # ``raced``/``race_winner`` are deliberately not persisted: a cache
    # hit is not a race, so replayed entries carry no race accounting.
    return ComponentSolution(
        status=payload["status"],
        groups=tuple(tuple(group) for group in payload["groups"]),
        objective=payload["objective"],
        nodes=int(payload["nodes"]),
        backend=payload["backend"],
        message=payload.get("message", ""),
        lp_cuts=int(payload.get("lp_cuts", 0)),
        canonical=bool(payload.get("canonical", True)),
    )


@dataclass
class TierStats:
    """Hit/miss accounting of one cache tier."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        """Plain-data rendering for snapshots and benchmark records."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


@dataclass
class CacheStats:
    """All counters of an :class:`ArtifactCache`."""

    artifacts: TierStats = field(default_factory=TierStats)
    results: TierStats = field(default_factory=TierStats)
    disk: TierStats = field(default_factory=TierStats)
    selection: TierStats = field(default_factory=TierStats)
    #: Number of times per-log artifacts were actually *built* (cache
    #: misses that led to a :func:`~repro.core.gecco.prepare_artifacts`
    #: call); the acceptance check "artifacts computed exactly once per
    #: log" reads this.
    artifact_builds: int = 0
    #: Disk entries that failed their checksum or failed to parse and
    #: were moved to ``<disk_dir>/quarantine/`` (the next put repairs
    #: the slot, so a corrupt entry costs one recomputation).
    disk_quarantined: int = 0

    def as_dict(self) -> dict:
        """Plain-data rendering for snapshots and benchmark records."""
        return {
            "artifacts": self.artifacts.as_dict(),
            "results": self.results.as_dict(),
            "disk": self.disk.as_dict(),
            "selection": self.selection.as_dict(),
            "artifact_builds": self.artifact_builds,
            "disk_quarantined": self.disk_quarantined,
        }

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object (e.g. from a worker process)."""
        for mine, theirs in (
            (self.artifacts, other.artifacts),
            (self.results, other.results),
            (self.disk, other.disk),
            (self.selection, other.selection),
        ):
            mine.hits += theirs.hits
            mine.misses += theirs.misses
            mine.stores += theirs.stores
            mine.evictions += theirs.evictions
        self.artifact_builds += other.artifact_builds
        self.disk_quarantined += getattr(other, "disk_quarantined", 0)


class ArtifactCache:
    """Bounded, thread-safe, two-tier cache keyed by fingerprint parts.

    Parameters
    ----------
    max_artifacts:
        Artifact-tier capacity (per-log bundles are large: the compiled
        arrays alone are ``CompiledLog.nbytes`` bytes, and the instance
        index grows with use — keep this small).
    max_results:
        Result-tier capacity.
    max_selections:
        Selection-tier capacity (solved Step-2 components; entries are
        tiny — tuples of class names plus an objective).
    disk_dir:
        Optional directory for the persistent result store.  Results
        are written as ``<prefix>/<fingerprint>.json``; reads fall back
        to disk on a memory miss and repopulate the memory tier.
    disk_ttl:
        Optional time-to-live (seconds) for disk entries: entries idle
        longer than this are expired (a disk hit refreshes the clock).
    disk_max_entries / disk_max_bytes:
        Optional size budgets for the disk store, enforced by
        least-recently-used eviction.  Each limit applies **per tier**:
        the results tier and the selection tier independently honor
        the configured bound, so total disk use can reach twice the
        byte budget — size the volume accordingly.
    disk_retry:
        The :class:`~repro.service.resilience.RetryPolicy` applied to
        disk-store writes (transient filesystem failures are retried
        with backoff before the tier degrades to best-effort).
    """

    def __init__(
        self,
        max_artifacts: int = 8,
        max_results: int = 256,
        max_selections: int = 2048,
        disk_dir: "str | Path | None" = None,
        disk_ttl: float | None = None,
        disk_max_entries: int | None = None,
        disk_max_bytes: int | None = None,
        disk_retry: RetryPolicy | None = None,
        disk_writer=None,
    ):
        if max_artifacts < 1 or max_results < 1 or max_selections < 1:
            raise ValueError("cache capacities must be >= 1")
        if disk_ttl is not None and disk_ttl <= 0:
            raise ValueError("disk_ttl must be positive")
        if disk_max_entries is not None and disk_max_entries < 1:
            raise ValueError("disk_max_entries must be >= 1")
        if disk_max_bytes is not None and disk_max_bytes < 1:
            raise ValueError("disk_max_bytes must be >= 1")
        self._artifacts: OrderedDict[tuple, object] = OrderedDict()
        self._results: OrderedDict[str, AbstractionResult] = OrderedDict()
        self._selections: OrderedDict[str, object] = OrderedDict()
        self._max_artifacts = max_artifacts
        self._max_results = max_results
        self._max_selections = max_selections
        self._disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._disk_ttl = disk_ttl
        self._disk_max_entries = disk_max_entries
        self._disk_max_bytes = disk_max_bytes
        self._disk_retry = disk_retry if disk_retry is not None else _DISK_WRITE_RETRY
        # Injection point for the atomic JSON writer — chaos tests swap
        # in a fault injector (ENOSPC, torn writes); see
        # :class:`repro.service.dist.chaos.DiskFaultInjector`.
        self._disk_writer = disk_writer if disk_writer is not None else write_json_atomic
        # In-process footprint estimate of the selection tier,
        # ``(entries, bytes)``; ``None`` until the first enforcement
        # sweep seeds it from disk.  Lets a decomposed run that stores
        # many tiny proved cells skip the glob+stat sweep while clearly
        # under budget (best-effort across processes: each process
        # sweeps once its own estimate crosses the configured bounds).
        self._selection_footprint: tuple[int, int] | None = None
        self._last_selection_ttl_sweep = 0.0
        self._lock = threading.Lock()
        self.stats = CacheStats()
        #: Stale ``*.tmp`` staging files deleted by the startup sweep —
        #: writers killed between ``mkstemp`` and ``os.replace`` leak
        #: them; sweeping only files older than five minutes keeps a
        #: concurrent live writer's staging file safe.
        self.tmp_swept = (
            len(sweep_stale_tmp(self._disk_dir))
            if self._disk_dir is not None
            else 0
        )
        #: Optional :class:`~repro.obs.trace.TraceWriter`; when set,
        #: every tier hit emits a ``cache_hit`` event (tier ∈
        #: ``artifacts`` / ``results`` / ``selection`` /
        #: ``disk_results`` / ``disk_selection``).  Emission happens
        #: outside the cache lock — tracing observes, it never blocks
        #: the tiers.
        self.tracer = None

    def _trace_hit(self, tier: str, key) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("cache_hit", tier=tier, key=str(key))

    def _quarantine_disk_entry(self, path: Path) -> None:
        """Move a corrupt disk entry to ``<disk_dir>/quarantine/``.

        Quarantined files keep their content (suffixed ``.bad`` so the
        tier globs never pick them up again) for post-mortem while the
        original slot is freed — the next put repairs it, so a corrupt
        entry costs exactly one recomputation.  ``repro fsck`` reports
        and ages them out.
        """
        quarantine = self._disk_dir / "quarantine"
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / (path.name + ".bad"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                return
        with self._lock:
            self.stats.disk_quarantined += 1

    # -- artifact tier (log-prefix keyed) ---------------------------------

    def get_artifacts(self, key: tuple):
        """Look up the per-log artifact bundle for a prefix ``key``."""
        with self._lock:
            bundle = self._artifacts.get(key)
            if bundle is None:
                self.stats.artifacts.misses += 1
                return None
            self._artifacts.move_to_end(key)
            self.stats.artifacts.hits += 1
        self._trace_hit("artifacts", key)
        return bundle

    def put_artifacts(self, key: tuple, bundle) -> None:
        """Store a per-log artifact bundle under its prefix ``key``."""
        with self._lock:
            self._artifacts[key] = bundle
            self._artifacts.move_to_end(key)
            self.stats.artifacts.stores += 1
            while len(self._artifacts) > self._max_artifacts:
                self._artifacts.popitem(last=False)
                self.stats.artifacts.evictions += 1

    def count_artifact_build(self) -> None:
        """Record that per-log artifacts were computed from scratch."""
        with self._lock:
            self.stats.artifact_builds += 1

    # -- selection tier (component-digest keyed) --------------------------

    def _selection_disk_path(self, key: str) -> Path:
        return self._disk_dir / "selection" / key[:2] / f"{key}.json"

    def get_selection(self, key: str):
        """Look up a solved Step-2 component cell; memory first, then disk."""
        with self._lock:
            solution = self._selections.get(key)
            if solution is not None:
                self._selections.move_to_end(key)
                self.stats.selection.hits += 1
            else:
                self.stats.selection.misses += 1
        if solution is not None:
            self._trace_hit("selection", key)
            return solution
        if self._disk_dir is None:
            return None
        path = self._selection_disk_path(key)
        if not path.exists():
            with self._lock:
                self.stats.disk.misses += 1
            return None
        if self._expired(path):
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.stats.disk.misses += 1
                self.stats.disk.evictions += 1
            return None
        try:
            solution = _selection_from_dict(verify_seal(read_json(path)))
        except Exception:
            # Corrupt, truncated, or old-schema entry (checksums are
            # verified by ``verify_seal``): treat as a miss and
            # quarantine the file so the next put repairs the slot
            # (same as the result tier).
            self._quarantine_disk_entry(path)
            with self._lock:
                self.stats.disk.misses += 1
            return None
        try:
            os.utime(path)  # a hit refreshes the entry's LRU/TTL clock
        except OSError:
            pass
        with self._lock:
            self.stats.disk.hits += 1
            self._store_selection_locked(key, solution)
        self._trace_hit("disk_selection", key)
        return solution

    def put_selection(self, key: str, solution) -> None:
        """Store a solved Step-2 component cell (memory, and disk for proofs)."""
        with self._lock:
            self._store_selection_locked(key, solution)
            self.stats.selection.stores += 1
        if self._disk_dir is None:
            return
        payload = _selection_to_dict(solution)
        if payload is None:
            # Not a persistable proof (e.g. a timeout, or a foreign
            # object placed in the memory tier) — never write it.
            return
        path = self._selection_disk_path(key)
        if not path.exists():
            try:
                self._disk_retry.call(
                    self._disk_writer, seal(payload), path, key=key,
                    retry_on=(OSError,),
                )
            except Exception:
                return  # best-effort tier, same as results
            try:
                written = path.stat().st_size
            except OSError:
                written = 0
            with self._lock:
                self.stats.disk.stores += 1
                if self._selection_footprint is not None:
                    entries_est, bytes_est = self._selection_footprint
                    self._selection_footprint = (
                        entries_est + 1,
                        bytes_est + written,
                    )
            if self._selection_sweep_needed():
                self._enforce_disk_budget("selection")

    def _selection_sweep_needed(self) -> bool:
        """Whether a selection put must pay the glob+stat sweep.

        Decomposed runs persist many tiny proved cells; sweeping on
        every put would make a k-component job quadratic in filesystem
        stats.  The in-process footprint estimate skips sweeps while
        clearly under the size budgets; TTL hygiene runs at most every
        half-TTL (read-side expiry stays exact regardless).
        """
        if (
            self._disk_ttl is None
            and self._disk_max_entries is None
            and self._disk_max_bytes is None
        ):
            return False
        with self._lock:
            footprint = self._selection_footprint
            last_ttl_sweep = self._last_selection_ttl_sweep
        if footprint is None:
            return True  # seed the estimate with one real sweep
        entries_est, bytes_est = footprint
        if (
            self._disk_max_entries is not None
            and entries_est > self._disk_max_entries
        ):
            return True
        if self._disk_max_bytes is not None and bytes_est > self._disk_max_bytes:
            return True
        if self._disk_ttl is not None:
            return time.time() - last_ttl_sweep >= self._disk_ttl / 2
        return False

    def _store_selection_locked(self, key: str, solution) -> None:
        self._selections[key] = solution
        self._selections.move_to_end(key)
        while len(self._selections) > self._max_selections:
            self._selections.popitem(last=False)
            self.stats.selection.evictions += 1

    # -- result tier (full-fingerprint keyed) -----------------------------

    def _disk_path(self, fingerprint: str) -> Path:
        return self._disk_dir / fingerprint[:2] / f"{fingerprint}.json"

    def _expired(self, path: Path) -> bool:
        """Whether a disk entry has outlived the TTL budget."""
        if self._disk_ttl is None:
            return False
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return True
        return age > self._disk_ttl

    def get_result(self, fingerprint: str) -> AbstractionResult | None:
        """Look up a finished result; memory first, then disk."""
        with self._lock:
            result = self._results.get(fingerprint)
            if result is not None:
                self._results.move_to_end(fingerprint)
                self.stats.results.hits += 1
            else:
                self.stats.results.misses += 1
        if result is not None:
            self._trace_hit("results", fingerprint)
            return result
        if self._disk_dir is None:
            return None
        path = self._disk_path(fingerprint)
        if not path.exists():
            with self._lock:
                self.stats.disk.misses += 1
            return None
        if self._expired(path):
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.stats.disk.misses += 1
                self.stats.disk.evictions += 1
            return None
        try:
            result = result_from_dict(verify_seal(read_json(path)))
        except Exception:
            # A stale, truncated, or corrupt store entry (checksums are
            # verified by ``verify_seal``) must never take the service
            # down — treat as miss and quarantine the bad file so the
            # next put_result repairs the slot.
            self._quarantine_disk_entry(path)
            with self._lock:
                self.stats.disk.misses += 1
            return None
        try:
            os.utime(path)  # a hit refreshes the entry's LRU/TTL clock
        except OSError:
            pass
        with self._lock:
            self.stats.disk.hits += 1
            self._store_result_locked(fingerprint, result)
        self._trace_hit("disk_results", fingerprint)
        return result

    def put_result(self, fingerprint: str, result: AbstractionResult) -> None:
        """Store a finished result (memory, and disk when configured)."""
        with self._lock:
            self._store_result_locked(fingerprint, result)
            self.stats.results.stores += 1
        if self._disk_dir is not None:
            path = self._disk_path(fingerprint)
            if not path.exists():
                try:
                    # Transient write failures retry with backoff; a
                    # serialization error (non-OSError) fails once.
                    self._disk_retry.call(
                        self._disk_writer, seal(result_to_dict(result)), path,
                        key=fingerprint, retry_on=(OSError,),
                    )
                except Exception:
                    # Best-effort tier: a full disk or a result with
                    # JSON-unserializable attribute values must not fail
                    # the job — it is already served from memory.
                    return
                with self._lock:
                    self.stats.disk.stores += 1
                self._enforce_disk_budget("results")

    def _enforce_disk_budget(self, tier: str | None = None) -> None:
        """Expire TTL-dead entries and evict LRU ones past the budgets.

        The TTL covers every persisted entry; the entry/byte budgets
        are enforced per tier (results and selection cells each honor
        the configured limits independently), so a burst of tiny
        selection cells can never evict expensive finished results.
        ``tier`` limits the sweep to ``"results"`` or ``"selection"``
        — each put only re-scans the tier it wrote to, keeping a
        many-component decomposed run linear in filesystem stats.
        """
        if self._disk_dir is None:
            return
        if (
            self._disk_ttl is None
            and self._disk_max_entries is None
            and self._disk_max_bytes is None
        ):
            return
        swept = ("results", "selection") if tier is None else (tier,)
        tiers: dict[str, list] = {name: [] for name in swept}
        for name in swept:
            for path in self._disk_entries(name):
                try:
                    status = path.stat()
                except OSError:
                    continue
                tiers[name].append((status.st_mtime, status.st_size, path))
        evicted = 0
        now = time.time()
        for entries in tiers.values():
            entries.sort()  # oldest (least recently used) first
            if self._disk_ttl is not None:
                live = []
                for mtime, size, path in entries:
                    if now - mtime > self._disk_ttl:
                        try:
                            path.unlink()
                            evicted += 1
                        except OSError:
                            pass
                    else:
                        live.append((mtime, size, path))
                entries[:] = live
            total_bytes = sum(size for _, size, _ in entries)
            while entries and (
                (
                    self._disk_max_entries is not None
                    and len(entries) > self._disk_max_entries
                )
                or (
                    self._disk_max_bytes is not None
                    and total_bytes > self._disk_max_bytes
                )
            ):
                _mtime, size, path = entries.pop(0)
                try:
                    path.unlink()
                    evicted += 1
                except OSError:
                    pass
                total_bytes -= size
        with self._lock:
            if evicted:
                self.stats.disk.evictions += evicted
            survivors = tiers.get("selection")
            if survivors is not None:
                self._selection_footprint = (
                    len(survivors),
                    sum(size for _, size, _ in survivors),
                )
                if self._disk_ttl is not None:
                    self._last_selection_ttl_sweep = now

    def _store_result_locked(self, fingerprint: str, result: AbstractionResult) -> None:
        self._results[fingerprint] = result
        self._results.move_to_end(fingerprint)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)
            self.stats.results.evictions += 1

    # -- maintenance -------------------------------------------------------

    def _disk_entries(self, tier: str | None = None):
        """Persisted entries of ``tier`` (``None`` = both tiers).

        Result entries live at ``<2ch>/<fingerprint>.json``, selection
        entries at ``selection/<2ch>/<digest>.json``; the two-level
        glob cannot match the three-level selection layout, so the
        patterns partition the store.
        """
        if tier in (None, "results"):
            yield from self._disk_dir.glob("*/*.json")
        if tier in (None, "selection"):
            yield from self._disk_dir.glob("selection/*/*.json")

    def clear(self, memory_only: bool = True) -> None:
        """Drop cached entries (the disk store survives by default)."""
        with self._lock:
            self._artifacts.clear()
            self._results.clear()
            self._selections.clear()
        if not memory_only and self._disk_dir is not None:
            for path in self._disk_entries():
                path.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def snapshot(self) -> dict:
        """Plain-data counters for reports and benchmarks.

        ``resident_artifact_bytes`` sums the compiled arrays
        (:attr:`~repro.core.encoding.CompiledLog.nbytes`) of resident
        bundles — the dominant, measurable part of the artifact tier's
        footprint (indexes and DFGs are excluded).
        """
        with self._lock:
            data = self.stats.as_dict()
            data["resident_results"] = len(self._results)
            data["resident_artifacts"] = len(self._artifacts)
            data["resident_selections"] = len(self._selections)
            compiled_bytes = 0
            for bundle in self._artifacts.values():
                compiled = getattr(bundle, "compiled", None)
                compiled_bytes += getattr(compiled, "nbytes", 0) or 0
            data["resident_artifact_bytes"] = compiled_bytes
            return data
