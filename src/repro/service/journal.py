"""Durability primitives: run journals, checksums, and tmp hygiene.

This module is the bottom layer of the durability subsystem:

* :class:`RunJournal` — a crash-resumable record of completed batch
  rows.  Every finished manifest row is appended as one line-atomic
  JSONL record (same ``O_APPEND`` + single-``os.write`` discipline as
  :class:`repro.obs.trace.TraceWriter`), so a ``SIGKILL`` at any byte
  offset loses at most the torn final line — which the reader detects
  (each line embeds a sha256 over its canonical body) and silently
  drops, causing only that row to be recomputed on resume.
* :func:`seal` / :func:`verify_seal` — embed / verify a sha256
  checksum inside a JSON payload (used by the disk store tiers).
* :func:`frame_bytes` / :func:`unframe_bytes` — prefix / verify a
  sha256 frame on opaque byte payloads (used by the filesystem
  broker's queue entries and result files).
* :func:`sweep_stale_tmp` — delete ``*.tmp`` staging files leaked by
  killed writers (shared by the disk-store startup sweep and
  ``repro fsck``).

Nothing here imports the rest of the service layer, so the cache,
broker, and batch modules can all depend on it without cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError

#: Schema tag stamped on every journal line.
JOURNAL_SCHEMA = "gecco-journal/1"

#: Schema tag of the run metadata file (``run.json``).
RUN_SCHEMA = "gecco-run/1"

#: Key under which :func:`seal` embeds the checksum in a JSON payload.
INTEGRITY_KEY = "integrity"

#: Byte-frame magic for opaque payloads (broker queue entries/results).
FRAME_MAGIC = b"CHK1:"


class IntegrityError(ReproError):
    """A stored payload failed its embedded checksum."""


def _canonical(payload: Any) -> bytes:
    """Canonical JSON encoding used for all digests in this module."""

    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def payload_digest(payload: Any) -> str:
    """sha256 hex digest of *payload*'s canonical JSON encoding."""

    return hashlib.sha256(_canonical(payload)).hexdigest()


def seal(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Return a copy of *payload* with an embedded sha256 checksum.

    The digest covers the canonical JSON encoding of the payload
    *without* the ``integrity`` key, so sealing is idempotent and the
    checksum can be verified by stripping the key and re-hashing.
    """

    body = {k: v for k, v in payload.items() if k != INTEGRITY_KEY}
    sealed = dict(body)
    sealed[INTEGRITY_KEY] = {
        "algo": "sha256",
        "digest": payload_digest(body),
    }
    return sealed


def verify_seal(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Verify a sealed payload and return it without the checksum.

    Payloads written before checksums existed carry no ``integrity``
    key and are passed through unverified (backward compatible).
    Raises :class:`IntegrityError` on a digest mismatch or a malformed
    integrity stanza.
    """

    if not isinstance(payload, dict):
        raise IntegrityError("sealed payload is not a JSON object")
    tag = payload.get(INTEGRITY_KEY)
    if tag is None:
        return payload
    body = {k: v for k, v in payload.items() if k != INTEGRITY_KEY}
    if not isinstance(tag, dict) or tag.get("algo") != "sha256":
        raise IntegrityError("unsupported integrity stanza")
    expected = tag.get("digest")
    actual = payload_digest(body)
    if actual != expected:
        raise IntegrityError(
            "checksum mismatch: expected %s got %s" % (expected, actual)
        )
    return body


def frame_bytes(data: bytes) -> bytes:
    """Prefix *data* with a sha256 frame (``CHK1:<hex>\\n``)."""

    digest = hashlib.sha256(data).hexdigest().encode("ascii")
    return FRAME_MAGIC + digest + b"\n" + data


def unframe_bytes(data: bytes) -> bytes:
    """Verify and strip a :func:`frame_bytes` prefix.

    Unframed payloads (written before checksums existed) are returned
    as-is.  A framed payload whose digest does not match — a torn or
    corrupted write — raises :class:`IntegrityError`.
    """

    if not data.startswith(FRAME_MAGIC):
        return data
    header_end = data.find(b"\n", len(FRAME_MAGIC))
    if header_end < 0:
        raise IntegrityError("truncated checksum frame")
    expected = data[len(FRAME_MAGIC):header_end].decode("ascii", "replace")
    body = data[header_end + 1:]
    actual = hashlib.sha256(body).hexdigest()
    if actual != expected:
        raise IntegrityError(
            "checksum mismatch: expected %s got %s" % (expected, actual)
        )
    return body


def sweep_stale_tmp(
    root: Path,
    *,
    max_age: float = 300.0,
    patterns: Iterable[str] = ("*.tmp", "*/*.tmp", "*/*/*.tmp"),
) -> List[str]:
    """Delete ``*.tmp`` staging files under *root* older than *max_age*.

    Atomic writers stage into ``<name><random>.tmp`` siblings and
    ``os.replace`` into place; a writer killed between the two leaks
    the staging file forever.  The age threshold keeps a concurrently
    *live* writer's staging file safe — pass ``max_age=0`` only from
    an offline tool like ``repro fsck``.

    Returns the (relative) paths removed.
    """

    root = Path(root)
    if not root.is_dir():
        return []
    removed: List[str] = []
    cutoff = time.time() - max_age
    for pattern in patterns:
        for path in root.glob(pattern):
            try:
                if not path.is_file():
                    continue
                if max_age > 0 and path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
                removed.append(str(path.relative_to(root)))
            except OSError:
                continue
    return sorted(removed)


def manifest_digest(jobs: Iterable[Tuple[str, str]]) -> str:
    """Digest identifying a manifest: sha256 over ``(id, fingerprint)``.

    Guards ``--resume`` against replaying a journal written for a
    different manifest: the digest covers job ids *and* fingerprints
    in manifest order, so editing a row, reordering, or re-pinning a
    log all invalidate the journal.
    """

    hasher = hashlib.sha256()
    for job_id, fingerprint in jobs:
        hasher.update(job_id.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(fingerprint.encode("utf-8"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


class RunJournal:
    """Append-only, crash-tolerant record of completed batch rows.

    Layout of a run directory::

        <run_dir>/
          run.json        # {"schema", "manifest_digest", "jobs"} — atomic
          journal.jsonl   # one sealed record per completed row — O_APPEND

    Each journal line is ``{"record": {...}, "sha256": <hex>}`` where
    the digest covers the record's canonical JSON.  Lines are written
    with a single ``os.write`` on an ``O_APPEND`` descriptor, so
    concurrent appends never interleave and a crash tears at most the
    final line — which :meth:`load` detects and drops.
    """

    def __init__(self, run_dir: Path) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / "journal.jsonl"
        self.run_file = self.run_dir / "run.json"
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        #: Lines dropped by :meth:`load` (torn or checksum-invalid).
        self.skipped = 0

    # -- run metadata ------------------------------------------------

    def read_run_info(self) -> Optional[Dict[str, Any]]:
        """Return the ``run.json`` stanza, or ``None`` if absent/torn."""

        try:
            payload = json.loads(self.run_file.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def write_run_info(self, digest: str, jobs: int) -> None:
        """Atomically record the manifest this journal belongs to."""

        payload = {
            "schema": RUN_SCHEMA,
            "manifest_digest": digest,
            "jobs": jobs,
        }
        tmp = self.run_file.with_name(self.run_file.name + ".partial")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n", "utf-8"
        )
        os.replace(tmp, self.run_file)

    def check_manifest(self, digest: str, *, resume: bool) -> None:
        """Validate the run dir against the manifest being run.

        * resume with a mismatched digest → :class:`ReproError` (the
          journal belongs to a different manifest);
        * a *fresh* run over a directory that already journaled rows →
          :class:`ReproError` (refuse to silently discard progress —
          pass ``--resume`` or choose a new directory).
        """

        info = self.read_run_info()
        if resume:
            if info is not None and info.get("manifest_digest") != digest:
                raise ReproError(
                    "run dir %s was journaled for a different manifest "
                    "(digest %s != %s); use a fresh --run-dir"
                    % (self.run_dir, info.get("manifest_digest"), digest)
                )
        else:
            if self.path.exists() and self.path.stat().st_size > 0:
                raise ReproError(
                    "run dir %s already holds a journal; pass --resume to "
                    "continue it or point --run-dir at a fresh directory"
                    % self.run_dir
                )
        if info is None or info.get("manifest_digest") != digest:
            self.write_run_info(digest, 0)

    # -- appending ---------------------------------------------------

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        return self._fd

    def append(self, job_id: str, fingerprint: str, row: Dict[str, Any]) -> None:
        """Journal one completed row (line-atomic, durable on return)."""

        record = {
            "schema": JOURNAL_SCHEMA,
            "id": job_id,
            "fingerprint": fingerprint,
            "row": row,
        }
        digest = hashlib.sha256(_canonical(record)).hexdigest()
        line = (
            json.dumps(
                {"record": record, "sha256": digest},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        with self._lock:
            os.write(self._ensure_fd(), line)

    def close(self) -> None:
        """Close the append fd (the journal can be reopened by append)."""
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                finally:
                    self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- reading -----------------------------------------------------

    def load(self) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Replay the journal into ``{(id, fingerprint): row}``.

        Torn final lines (from a mid-write kill) and checksum-invalid
        lines are counted in :attr:`skipped` and dropped — their rows
        are simply recomputed by the resuming run.  Later entries for
        the same key win (a row journaled twice by a crash between
        append and collection is harmless).
        """

        entries: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.skipped = 0
        try:
            raw = self.path.read_bytes()
        except OSError:
            return entries
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                parsed = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.skipped += 1
                continue
            record = parsed.get("record") if isinstance(parsed, dict) else None
            if not isinstance(record, dict):
                self.skipped += 1
                continue
            digest = hashlib.sha256(_canonical(record)).hexdigest()
            if digest != parsed.get("sha256"):
                self.skipped += 1
                continue
            if record.get("schema") != JOURNAL_SCHEMA:
                self.skipped += 1
                continue
            job_id = record.get("id")
            fingerprint = record.get("fingerprint")
            row = record.get("row")
            if (
                not isinstance(job_id, str)
                or not isinstance(fingerprint, str)
                or not isinstance(row, dict)
            ):
                self.skipped += 1
                continue
            entries[(job_id, fingerprint)] = row
        return entries
