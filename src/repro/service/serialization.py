"""Lossless JSON round-trips for pipeline inputs and outputs.

The worker pool ships :class:`~repro.core.gecco.AbstractionResult`
objects between processes (pickle) and the artifact cache persists them
on disk (JSON); both require every result member to survive a
round-trip.  This module owns the JSON side: typed encoding of
attribute values (datetimes, sets, tuples carry explicit tags), event
logs, groupings, infeasibility reports, and whole results.

:func:`result_signature` renders the *output* portion of a result —
everything except wall-clock timings and search statistics — as
canonical JSON, which is how the test-suite and the benchmarks assert
that pool execution is byte-identical to sequential execution.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from datetime import datetime
from typing import Any

from repro.constraints.sets import InfeasibilityReport
from repro.core.candidates import CandidateStats
from repro.core.dfg_candidates import BeamStats
from repro.core.gecco import AbstractionResult, StepTimings
from repro.core.grouping import Grouping
from repro.eventlog.events import Event, EventLog, Trace
from repro.exceptions import ReproError
from repro.selection2.stats import SelectionStats

#: Schema tag written into serialized results.
RESULT_SCHEMA = "gecco-result/1"

#: Candidate-statistics classes by serialization tag.
_STATS_TYPES = {"CandidateStats": CandidateStats, "BeamStats": BeamStats}


def _stats_to_dict(stats) -> dict | None:
    if not isinstance(stats, CandidateStats):
        return None
    return {"$stats": type(stats).__name__, **asdict(stats)}


def _stats_from_dict(data: dict) -> CandidateStats:
    payload = dict(data)
    tag = payload.pop("$stats", "CandidateStats")
    cls = _STATS_TYPES.get(tag)
    if cls is None:
        raise ReproError(f"unknown candidate-stats type {tag!r}")
    return cls(**payload)


# -- attribute values -------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode one attribute value into JSON-able data (typed tags)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime):
        return {"$dt": value.isoformat()}
    if isinstance(value, (set, frozenset)):
        return {"$set": sorted((encode_value(item) for item in value), key=repr)}
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    raise ReproError(
        f"cannot serialize attribute value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if set(value) == {"$dt"}:
            return datetime.fromisoformat(value["$dt"])
        if set(value) == {"$set"}:
            return frozenset(decode_value(item) for item in value["$set"])
        if set(value) == {"$tuple"}:
            return tuple(decode_value(item) for item in value["$tuple"])
        return {key: decode_value(item) for key, item in value.items()}
    return value


def _encode_attributes(attributes: dict) -> dict:
    return {str(key): encode_value(value) for key, value in attributes.items()}


def _decode_attributes(data: dict) -> dict:
    return {key: decode_value(value) for key, value in data.items()}


# -- event logs -------------------------------------------------------------


def log_to_dict(log: EventLog) -> dict:
    """Serialize an event log (traces, events, all attribute levels).

    :func:`repro.service.fingerprint.log_digest` hashes this same
    shape — extend both together when the event model grows a field.
    """
    return {
        "attributes": _encode_attributes(log.attributes),
        "traces": [
            {
                "attributes": _encode_attributes(trace.attributes),
                "events": [
                    [event.event_class, _encode_attributes(event.attributes)]
                    for event in trace
                ],
            }
            for trace in log
        ],
    }


def log_from_dict(data: dict) -> EventLog:
    """Rebuild an event log from :func:`log_to_dict` output."""
    traces = [
        Trace(
            [Event(cls, _decode_attributes(attrs)) for cls, attrs in entry["events"]],
            _decode_attributes(entry.get("attributes", {})),
        )
        for entry in data["traces"]
    ]
    return EventLog(traces, _decode_attributes(data.get("attributes", {})))


# -- groupings and reports --------------------------------------------------


def grouping_to_dict(grouping: Grouping) -> dict:
    """Serialize a grouping (groups, universe, labels) in sorted order."""
    groups = sorted(sorted(group) for group in grouping.groups)
    return {
        "groups": groups,
        "universe": sorted(grouping.universe),
        "labels": [
            [sorted(group), grouping.labels[group]] for group in grouping.groups
        ],
    }


def grouping_from_dict(data: dict) -> Grouping:
    """Rebuild a grouping from :func:`grouping_to_dict` output."""
    labels = {
        frozenset(group): label for group, label in data.get("labels", [])
    }
    return Grouping(data["groups"], data["universe"], labels or None)


def infeasibility_to_dict(report: InfeasibilityReport) -> dict:
    """Serialize an infeasibility report (plain data already)."""
    return asdict(report)


def infeasibility_from_dict(data: dict) -> InfeasibilityReport:
    """Rebuild an infeasibility report."""
    return InfeasibilityReport(**data)


# -- results ----------------------------------------------------------------


def result_to_dict(result: AbstractionResult, include_logs: bool = True) -> dict:
    """Serialize a pipeline result.

    ``include_logs=False`` drops the (potentially large) embedded logs —
    useful for compact batch rows; such dicts cannot be fed back to
    :func:`result_from_dict`.
    """
    return {
        "schema": RESULT_SCHEMA,
        "feasible": result.feasible,
        "distance": result.distance,
        "num_candidates": result.num_candidates,
        "engine": result.engine,
        "grouping": (
            grouping_to_dict(result.grouping) if result.grouping is not None else None
        ),
        "timings": asdict(result.timings),
        "candidate_stats": _stats_to_dict(result.candidate_stats),
        "selection_stats": (
            result.selection_stats.as_dict()
            if isinstance(result.selection_stats, SelectionStats)
            else None
        ),
        "infeasibility": (
            infeasibility_to_dict(result.infeasibility)
            if result.infeasibility is not None
            else None
        ),
        "abstracted_log": log_to_dict(result.abstracted_log) if include_logs else None,
        "original_log": (
            log_to_dict(result.original_log)
            if include_logs and result.original_log is not None
            else None
        ),
    }


def result_from_dict(data: dict) -> AbstractionResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    if data.get("schema") != RESULT_SCHEMA:
        raise ReproError(
            f"unknown result schema {data.get('schema')!r}; expected {RESULT_SCHEMA!r}"
        )
    if data.get("abstracted_log") is None:
        raise ReproError("result was serialized without logs; cannot rebuild")
    return AbstractionResult(
        abstracted_log=log_from_dict(data["abstracted_log"]),
        grouping=(
            grouping_from_dict(data["grouping"])
            if data.get("grouping") is not None
            else None
        ),
        distance=data.get("distance"),
        feasible=data["feasible"],
        num_candidates=data["num_candidates"],
        timings=StepTimings(**data.get("timings", {})),
        candidate_stats=(
            _stats_from_dict(data["candidate_stats"])
            if data.get("candidate_stats") is not None
            else None
        ),
        selection_stats=(
            SelectionStats.from_dict(data["selection_stats"])
            if data.get("selection_stats") is not None
            else None
        ),
        infeasibility=(
            infeasibility_from_dict(data["infeasibility"])
            if data.get("infeasibility") is not None
            else None
        ),
        original_log=(
            log_from_dict(data["original_log"])
            if data.get("original_log") is not None
            else None
        ),
        engine=data.get("engine"),
    )


def result_signature(result: AbstractionResult) -> str:
    """Canonical JSON of a result's *outputs* (no timings, no stats).

    Two runs of the same job produce equal signatures iff they produced
    the same abstraction — the equality the executor tests assert.
    """
    data = result_to_dict(result, include_logs=True)
    data.pop("timings", None)
    data.pop("candidate_stats", None)
    data.pop("selection_stats", None)  # solver accounting, not output
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
