"""Executors: the submit/poll/await runtime over the artifact cache.

Two interchangeable executors run :class:`~repro.service.jobs.AbstractionJob`
objects:

* :class:`SequentialExecutor` — deterministic, in-process; jobs run at
  submit time.  The reference for tests and the ``--sequential`` CLI
  path.
* :class:`PoolExecutor` — a ``multiprocessing`` worker pool with
  priorities, a bounded pending queue for backpressure, and per-worker
  artifact reuse: each worker process keeps its own
  :class:`~repro.service.cache.ArtifactCache` so the per-log artifacts
  are built at most once per (worker, log) and every further job on
  that log pays only the constraint-dependent work.

The pool schedules **cache-aware**: each worker is its own
single-process sub-pool, and jobs are routed by their fingerprint's log
prefix — the first job on a log claims the least-loaded worker, every
later job on that log goes to the same worker (waiting for it rather
than rebuilding the log's artifacts elsewhere).  This caps artifact
builds at one per *log* instead of one per (worker, log); the
``scheduler`` block of :meth:`PoolExecutor.stats` counts the affinity
routing, and ``affinity=False`` restores spread-to-any-free-worker
routing.

Both executors also accept generic work via ``submit_call``: the
function runs with the executor's cache injected as a ``cache`` keyword
(the worker-local cache in the pool), which is how
:func:`repro.selection2.select_decomposed` fans component solves out
over the same machinery.

Both share :func:`run_job`, which implements the cache discipline: full
fingerprint → finished result; log prefix → shared per-log artifacts;
selection tier → solved Step-2 components; otherwise compute, then
populate the tiers.  Handles returned by ``submit``/``submit_call`` are
future-like (``done()`` to poll, ``result()`` to await).
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.constraints.aggregates import clear_extraction_cache
from repro.core.gecco import AbstractionResult, Gecco, prepare_artifacts, resolve_engine
from repro.exceptions import ReproError
from repro.obs.trace import child_span_id, new_span_id, new_trace_id, span_scope
from repro.service.cache import ArtifactCache
from repro.service.jobs import AbstractionJob
from repro.service.resilience import AdmissionController, DeadlineExceeded, Overloaded


def mint_submit_span(job: AbstractionJob, tracer) -> None:
    """Open the root span of one submit on a tracing executor.

    The trace id is minted once per job and survives re-submission
    (degrading fallback re-submits the same object to a lower tier, so
    both attempts share one trace); the span id is re-minted per
    submit, making each tier's lifecycle its own root span.  Without a
    tracer the job stays span-free and the whole trace keeps the
    pre-span format.
    """
    if tracer is None:
        return
    if job.trace_id is None:
        job.trace_id = new_trace_id()
    job.span_id = new_span_id()


def run_job(
    job: AbstractionJob, cache: ArtifactCache, tracer=None
) -> tuple[AbstractionResult, bool]:
    """Run one job against a cache; return ``(result, from_cache)``.

    The cache discipline of the whole runtime lives here:

    1. a full-fingerprint hit serves the finished result directly;
    2. otherwise the per-log artifacts are looked up under the
       fingerprint's log prefix and built (once) on a miss;
    3. the pipeline consults the cache's selection tier for solved
       Step-2 components (decomposed mode);
    4. the freshly computed result is stored under the full fingerprint.

    A job with a :attr:`~repro.service.jobs.AbstractionJob.deadline_ms`
    budget is checked at the stage boundaries (start, artifact build,
    and inside the pipeline) and raises
    :class:`~repro.service.resilience.DeadlineExceeded` once expired —
    outputs are never degraded to fit the budget, so whatever result is
    produced stays byte-identical to the unbudgeted run.

    ``tracer`` (a :class:`~repro.obs.trace.TraceWriter`, or the cache's
    own ``tracer`` attribute when omitted) records ``artifact_build``,
    ``solve``, and ``deadline_exceeded`` events; tracing observes
    timings only and never alters the computation.
    """
    if tracer is None:
        tracer = getattr(cache, "tracer", None)
    deadline = job.deadline()
    if deadline is not None and deadline.expired():
        if tracer is not None:
            tracer.emit("deadline_exceeded", stage="job start")
        deadline.check("job start")
    fingerprint = job.fingerprint()
    hit = cache.get_result(fingerprint.full)
    if hit is not None:
        return hit, True
    config = job.config
    engine = resolve_engine(config.engine)
    key = fingerprint.artifact_key(config.instance_policy, engine)
    artifacts = cache.get_artifacts(key)
    if artifacts is None:
        if deadline is not None and deadline.expired():
            if tracer is not None:
                tracer.emit(
                    "deadline_exceeded",
                    fingerprint=fingerprint.full,
                    stage="artifact build",
                )
            deadline.check("artifact build")
        log = job.log.resolve()
        build_started = time.perf_counter()
        artifacts = prepare_artifacts(log, config)
        if tracer is not None:
            tracer.emit(
                "artifact_build",
                fingerprint=fingerprint.full,
                seconds=time.perf_counter() - build_started,
                span_id=child_span_id(),
            )
        cache.put_artifacts(key, artifacts)
        cache.count_artifact_build()
    else:
        # Reuse the log the artifacts were built from — content-equal
        # by construction (the prefix key contains the log digest), and
        # it keeps one set of warmed per-log caches per worker.
        log = artifacts.log
    try:
        solve_started = time.perf_counter()
        result = Gecco(job.constraints, config).abstract(
            log, artifacts, selection_cache=cache, deadline=deadline
        )
        if tracer is not None:
            timings = result.timings
            tracer.emit(
                "solve",
                fingerprint=fingerprint.full,
                seconds=time.perf_counter() - solve_started,
                span_id=child_span_id(),
                timings={
                    "candidates": timings.candidates,
                    "exclusive": timings.exclusive,
                    "selection": timings.selection,
                    "abstraction": timings.abstraction,
                },
                engine=result.engine,
                num_candidates=result.num_candidates,
                selection_stats=(
                    result.selection_stats.as_dict()
                    if result.selection_stats is not None
                    else None
                ),
            )
        cache.put_result(fingerprint.full, result)
    except DeadlineExceeded as exc:
        if tracer is not None:
            tracer.emit(
                "deadline_exceeded", fingerprint=fingerprint.full, stage=str(exc)
            )
        raise
    finally:
        # The python-engine aggregate memo pins instance event lists;
        # drop them at the job boundary — failed jobs included — so
        # retired logs don't accumulate in long-lived workers.
        clear_extraction_cache()
    return result, False


class JobHandle:
    """Future-like handle of one submitted job (poll or await)."""

    __slots__ = (
        "job",
        "fingerprint",
        "cached",
        "_event",
        "_result",
        "_error",
        "_lock",
        "_followers",
    )

    def __init__(self, job: AbstractionJob, fingerprint: str):
        self.job = job
        self.fingerprint = fingerprint
        #: Whether the result came from a cache (or a coalesced
        #: in-flight computation); ``None`` until done.
        self.cached: bool | None = None
        self._event = threading.Event()
        self._result: AbstractionResult | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._followers: list["JobHandle"] = []

    def done(self) -> bool:
        """Poll: has the job finished (successfully or not)?"""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> AbstractionResult:
        """Await the result, re-raising any worker-side failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job.job_id or self.fingerprint[:12]} did not "
                f"finish within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _attach(self, follower: "JobHandle") -> None:
        """Coalesce ``follower`` onto this in-flight computation."""
        with self._lock:
            if not self._event.is_set():
                self._followers.append(follower)
                return
        # Already finished — mirror the outcome immediately.
        if self._error is not None:
            follower._fail(self._error)
        else:
            follower._complete(self._result, True)

    def _complete(self, result: AbstractionResult, cached: bool) -> None:
        with self._lock:
            self._result = result
            self.cached = cached
            self._event.set()
            followers, self._followers = self._followers, []
        for follower in followers:
            follower._complete(result, True)

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._event.set()
            followers, self._followers = self._followers, []
        for follower in followers:
            follower._fail(error)


class CallHandle:
    """Future-like handle of one generic ``submit_call`` task."""

    __slots__ = ("label", "_event", "_value", "_error")

    def __init__(self, label: str = "call"):
        self.label = label
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Poll: has the call finished (successfully or not)?"""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Await the call's return value, re-raising its failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"call {self.label} did not finish within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def _complete(self, value, cached: bool = False) -> None:
        del cached  # call results have no cache provenance
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


def _fingerprinted_handle(job: AbstractionJob) -> JobHandle:
    """Build a job's handle, failing it when fingerprinting fails.

    Fingerprinting resolves and digests the log, so an unreadable log
    file surfaces here; submit never raises for a bad job — the error
    is delivered through the handle like any worker-side failure.
    """
    try:
        return JobHandle(job, job.fingerprint().full)
    except Exception as exc:
        handle = JobHandle(job, "invalid")
        handle._fail(exc)
        return handle


class SequentialExecutor:
    """Deterministic in-process executor (jobs run at submit time)."""

    def __init__(self, cache: ArtifactCache | None = None, tracer=None):
        self.cache = cache if cache is not None else ArtifactCache()
        self.tracer = tracer
        if tracer is not None and getattr(self.cache, "tracer", None) is None:
            self.cache.tracer = tracer

    def submit(self, job: AbstractionJob, priority: int | None = None) -> JobHandle:
        """Run ``job`` now; the returned handle is already done."""
        handle = _fingerprinted_handle(job)
        if handle.done():  # fingerprinting failed (e.g. unreadable log)
            return handle
        tracer = self.tracer
        mint_submit_span(job, tracer)
        if tracer is not None:
            tracer.emit(
                "submitted",
                fingerprint=handle.fingerprint,
                kind="job",
                trace_id=job.trace_id,
                span_id=job.span_id,
            )
        started = time.perf_counter()
        try:
            with span_scope(job.trace_id, job.span_id):
                result, cached = run_job(job, self.cache, tracer=tracer)
        except Exception as exc:
            if tracer is not None:
                tracer.emit(
                    "done",
                    fingerprint=handle.fingerprint,
                    seconds=time.perf_counter() - started,
                    error=f"{type(exc).__name__}: {exc}",
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._fail(exc)
        else:
            if tracer is not None:
                tracer.emit(
                    "done",
                    fingerprint=handle.fingerprint,
                    seconds=time.perf_counter() - started,
                    cached=cached,
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._complete(result, cached)
        return handle

    def submit_call(self, fn, *args, priority: int | None = None, **kwargs) -> CallHandle:
        """Run ``fn(*args, cache=self.cache, **kwargs)`` now.

        The generic-task twin of :meth:`submit`: the executor's cache is
        injected as the ``cache`` keyword, mirroring what pool workers
        do with their worker-local caches.
        """
        del priority  # sequential: everything runs immediately
        handle = CallHandle(getattr(fn, "__name__", "call"))
        try:
            value = fn(*args, cache=self.cache, **kwargs)
        except Exception as exc:
            handle._fail(exc)
        else:
            handle._complete(value)
        return handle

    def map(self, jobs) -> list[AbstractionResult]:
        """Run jobs in order; return their results."""
        return [self.submit(job).result() for job in jobs]

    def stats(self) -> dict:
        """Cache counters (mirrors :meth:`PoolExecutor.stats`)."""
        return {"parent": self.cache.snapshot(), "workers": {}}

    def shutdown(self, wait: bool = True) -> None:
        """No-op, for API parity with the pool."""

    def __enter__(self) -> "SequentialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# -- worker-process side ----------------------------------------------------

#: The per-worker cache; living at module level so it survives across
#: jobs dispatched to the same worker process.
_WORKER_CACHE: ArtifactCache | None = None


def _pool_worker_init(
    max_artifacts: int,
    max_results: int,
    disk_dir: str | None,
    trace_path: str | None = None,
    trace_rotate_mb: float | None = None,
):
    global _WORKER_CACHE
    _WORKER_CACHE = ArtifactCache(
        max_artifacts=max_artifacts, max_results=max_results, disk_dir=disk_dir
    )
    if trace_path is not None:
        from repro.obs.trace import TraceWriter

        # The O_APPEND discipline makes one shared file safe across all
        # pool workers and the parent; run_job picks the tracer up from
        # the cache attribute.  Rotation is inode-checked, so any of
        # the writers may rotate and the others follow.
        _WORKER_CACHE.tracer = TraceWriter(
            trace_path, worker=f"pool-{os.getpid()}", rotate_mb=trace_rotate_mb
        )


def _pool_worker_run(job: AbstractionJob, claim_span: str | None = None):
    cache = _WORKER_CACHE
    if cache is None:  # pragma: no cover - initializer always runs
        raise ReproError("worker cache was not initialized")
    # The claim span (minted parent-side when the job was dispatched)
    # becomes ambient, so the worker's stage and cache events nest
    # under it even though they're emitted in another process.
    with span_scope(job.trace_id, claim_span or job.span_id):
        result, cached = run_job(job, cache)
    return result, cached, os.getpid(), cache.snapshot()


def _pool_worker_call(fn, args, kwargs):
    cache = _WORKER_CACHE
    if cache is None:  # pragma: no cover - initializer always runs
        raise ReproError("worker cache was not initialized")
    value = fn(*args, cache=cache, **kwargs)
    return value, os.getpid(), cache.snapshot()


#: Queue-entry kinds.
_KIND_JOB, _KIND_CALL = "job", "call"


@dataclass
class _QueueItem:
    """One queued unit of work (a job or a generic call)."""

    kind: str
    payload: object
    handle: object
    prefix: "tuple | None" = None
    claimed_at: "float | None" = None
    claim_span: "str | None" = None


class PoolExecutor:
    """Multiprocessing executor: priorities, backpressure, worker caches.

    Parameters
    ----------
    workers:
        Worker-process count (default: CPU count, at least 2).  Each
        worker is its own single-process sub-pool, which is what makes
        cache-aware routing possible.
    cache:
        Parent-side :class:`ArtifactCache` used to serve repeat
        submissions without touching a worker at all.
    max_pending:
        Bound on queued-plus-running jobs; ``submit`` blocks once the
        bound is reached (backpressure towards producers).
    disk_dir:
        Optional shared on-disk result store; both the parent cache and
        every worker cache read and write it.
    mp_context:
        ``multiprocessing`` start method.  Default: ``"fork"`` where
        available (cheap worker startup on Linux), else ``"spawn"``
        (Windows, macOS).
    affinity:
        Cache-aware scheduling (default on): jobs sharing a log-prefix
        fingerprint are routed to the worker that first claimed the
        prefix, maximizing per-worker artifact reuse.  ``False`` routes
        every job to any free worker.
    max_load / admission:
        Admission control (see :mod:`repro.service.resilience`).
        ``max_load`` bounds queued-plus-running *jobs*: past the bound,
        the lowest-priority queued job is shed with a typed
        :class:`~repro.service.resilience.Overloaded` failure (the
        incoming job itself when nothing queued ranks below it) instead
        of queuing unboundedly.  ``admission`` supplies per-tenant
        token-bucket quotas (and may carry ``max_load`` itself).
        Generic calls are exempt — shedding a Step-2 component solve
        would fail a job already admitted.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: ArtifactCache | None = None,
        max_pending: int | None = None,
        disk_dir=None,
        mp_context: str | None = None,
        worker_max_artifacts: int = 8,
        worker_max_results: int = 64,
        affinity: bool = True,
        max_load: int | None = None,
        admission: AdmissionController | None = None,
        trace=None,
    ):
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.workers = workers if workers is not None else max(2, os.cpu_count() or 2)
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if max_pending is not None and max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {max_pending}")
        self.cache = cache if cache is not None else ArtifactCache(disk_dir=disk_dir)
        self.affinity = affinity
        if admission is None and max_load is not None:
            admission = AdmissionController(max_load=max_load)
        self.admission = admission
        # trace accepts a path (each worker process opens its own
        # O_APPEND writer on it) or an existing parent-side TraceWriter.
        self.tracer = None
        trace_path: str | None = None
        if trace is not None:
            if hasattr(trace, "emit"):
                self.tracer = trace
                trace_path = getattr(trace, "path", None)
            else:
                trace_path = str(trace)
                from repro.obs.trace import TraceWriter

                self.tracer = TraceWriter(trace_path, worker=f"pool-parent-{os.getpid()}")
            if getattr(self.cache, "tracer", None) is None:
                self.cache.tracer = self.tracer
        context = multiprocessing.get_context(mp_context)
        initargs = (
            worker_max_artifacts,
            worker_max_results,
            str(disk_dir) if disk_dir is not None else None,
            trace_path,
            getattr(self.tracer, "rotate_mb", None),
        )
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                mp_context=context,
                initializer=_pool_worker_init,
                initargs=initargs,
            )
            for _ in range(self.workers)
        ]
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._heap: list[tuple] = []
        self._ticket = itertools.count()
        self._busy = [False] * self.workers
        self._claims = [0] * self.workers
        self._prefix_owner: dict[tuple, int] = {}
        self._affinity_hits = 0
        self._prefix_claims = 0
        self._inflight = 0
        self._pending = 0
        self._max_pending = max_pending
        self._closed = False
        self._worker_stats: dict[int, dict] = {}
        #: fingerprint -> primary in-flight handle (request coalescing).
        self._active: dict[str, JobHandle] = {}

    # -- submission --------------------------------------------------------

    @staticmethod
    def _job_prefix(job: AbstractionJob) -> tuple:
        """The job's artifact-cache log prefix (the routing key)."""
        config = job.config
        engine = resolve_engine(config.engine, warn=False)
        return job.fingerprint().artifact_key(config.instance_policy, engine)

    def _evict_lowest_locked(self, rank: int) -> "_QueueItem | None":
        """Pop the lowest-priority queued *job* ranking below ``rank``.

        The victim of a load shed: lowest priority, latest enqueued on
        ties.  Returns ``None`` when nothing queued ranks strictly
        below ``rank`` (the incoming job is then the victim) — ties
        favor the already-queued job, keeping shed order deterministic.
        Generic calls and running work are never evicted.
        """
        worst_index: int | None = None
        worst_key: "tuple | None" = None
        for index, (neg_rank, ticket, item) in enumerate(self._heap):
            if item.kind != _KIND_JOB:
                continue
            key = (neg_rank, ticket)
            if worst_key is None or key > worst_key:
                worst_key, worst_index = key, index
        if worst_index is None or -self._heap[worst_index][0] >= rank:
            return None
        victim = self._heap.pop(worst_index)[2]
        heapq.heapify(self._heap)
        return victim

    def submit(self, job: AbstractionJob, priority: int | None = None) -> JobHandle:
        """Enqueue ``job``; higher ``priority`` dispatches first.

        Blocks while the pending queue is at ``max_pending``.  A parent
        cache hit completes the handle immediately without occupying a
        queue slot (and without charging the tenant's quota).

        With admission control configured, policy outcomes never raise
        from ``submit``: a shed job's handle fails with a typed
        :class:`~repro.service.resilience.Overloaded`, an expired job's
        with :class:`~repro.service.resilience.DeadlineExceeded`.
        """
        job.deadline()  # pin the absolute budget at submit time
        handle = _fingerprinted_handle(job)  # resolves/digests in the parent
        if handle.done():
            return handle
        tracer = self.tracer
        mint_submit_span(job, tracer)
        if tracer is not None:
            tracer.emit(
                "submitted",
                fingerprint=handle.fingerprint,
                kind="job",
                trace_id=job.trace_id,
                span_id=job.span_id,
            )
        hit = self.cache.get_result(handle.fingerprint)
        if hit is not None:
            if tracer is not None:
                tracer.emit(
                    "done",
                    fingerprint=handle.fingerprint,
                    cached=True,
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._complete(hit, True)
            return handle
        if self.admission is not None and not self.admission.admit(job.tenant):
            if tracer is not None:
                tracer.emit(
                    "shed",
                    fingerprint=handle.fingerprint,
                    cause="tenant_quota",
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._fail(
                Overloaded(f"tenant {job.tenant!r} is over its admission quota")
            )
            return handle
        rank = job.priority if priority is None else priority
        item = _QueueItem(
            kind=_KIND_JOB, payload=job, handle=handle, prefix=self._job_prefix(job)
        )
        victim: "_QueueItem | None" = None
        max_load = self.admission.max_load if self.admission is not None else None
        with self._space:
            if self._closed:
                raise ReproError("executor is shut down")
            # Coalesce onto an identical in-flight job: one computation,
            # many awaiters (request deduplication under load).
            primary = self._active.get(handle.fingerprint)
            if primary is not None:
                primary._attach(handle)
                return handle
            if max_load is not None and self._pending >= max_load:
                victim = self._evict_lowest_locked(rank)
                self.admission.count_load_shed()
                if victim is None:
                    shed_incoming = True
                else:
                    shed_incoming = False
                    self._pending -= 1
                    self._active.pop(victim.handle.fingerprint, None)
            else:
                shed_incoming = False
            if not shed_incoming:
                while (
                    self._max_pending is not None
                    and self._pending >= self._max_pending
                ):
                    self._space.wait()
                    if self._closed:
                        raise ReproError("executor is shut down")
                    primary = self._active.get(handle.fingerprint)
                    if primary is not None:
                        primary._attach(handle)
                        return handle
                self._pending += 1
                self._active[handle.fingerprint] = handle
                heapq.heappush(self._heap, (-rank, next(self._ticket), item))
                if tracer is not None:
                    tracer.emit(
                        "queued",
                        fingerprint=handle.fingerprint,
                        trace_id=job.trace_id,
                        parent_span=job.span_id,
                    )
        if victim is not None:
            if tracer is not None:
                tracer.emit(
                    "shed",
                    fingerprint=victim.handle.fingerprint,
                    cause="max_load_evicted",
                    trace_id=victim.payload.trace_id,
                    parent_span=victim.payload.span_id,
                )
            victim.handle._fail(
                Overloaded(
                    f"shed at max_load={max_load} by higher-priority submission"
                )
            )
        if shed_incoming:
            if tracer is not None:
                tracer.emit(
                    "shed",
                    fingerprint=handle.fingerprint,
                    cause="max_load",
                    trace_id=job.trace_id,
                    parent_span=job.span_id,
                )
            handle._fail(
                Overloaded(f"executor at max_load={max_load}; job shed")
            )
            return handle
        self._dispatch()
        return handle

    def submit_call(self, fn, *args, priority: int = 0, **kwargs) -> CallHandle:
        """Enqueue a generic call; workers run it with their cache.

        ``fn`` must be picklable (a module-level function) and accept a
        ``cache`` keyword — the worker-local
        :class:`~repro.service.cache.ArtifactCache` is injected, which
        is how Step-2 component solves reuse each worker's selection
        tier.  Calls share the priority queue and the backpressure
        bound with jobs but have no routing prefix (any free worker).
        """
        handle = CallHandle(getattr(fn, "__name__", "call"))
        item = _QueueItem(kind=_KIND_CALL, payload=(fn, args, kwargs), handle=handle)
        with self._space:
            if self._closed:
                raise ReproError("executor is shut down")
            while (
                self._max_pending is not None and self._pending >= self._max_pending
            ):
                self._space.wait()
                if self._closed:
                    raise ReproError("executor is shut down")
            self._pending += 1
            heapq.heappush(self._heap, (-priority, next(self._ticket), item))
        self._dispatch()
        return handle

    # -- scheduling --------------------------------------------------------

    def _pick_locked(self) -> "tuple[_QueueItem, int] | None":
        """Choose the next dispatchable queue item and its worker.

        Scans the queue in priority order.  Items whose prefix is owned
        by a busy worker are kept queued (waiting for their warm worker
        beats rebuilding the log's artifacts on a cold one); unowned
        prefixes claim the least-loaded free worker.
        """
        free = [index for index, busy in enumerate(self._busy) if not busy]
        if not free or not self._heap:
            return None
        deferred: list[tuple] = []
        chosen: "tuple[_QueueItem, int] | None" = None
        while self._heap:
            rank, ticket, item = heapq.heappop(self._heap)
            prefix = item.prefix if self.affinity else None
            if prefix is None:
                worker = min(free, key=lambda index: (self._claims[index], index))
            else:
                owner = self._prefix_owner.get(prefix)
                if owner is None:
                    worker = min(free, key=lambda index: (self._claims[index], index))
                    self._prefix_owner[prefix] = worker
                    self._claims[worker] += 1
                    self._prefix_claims += 1
                elif self._busy[owner]:
                    deferred.append((rank, ticket, item))
                    continue
                else:
                    worker = owner
                    self._affinity_hits += 1
            chosen = (item, worker)
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return chosen

    def _dispatch(self) -> None:
        """Feed queued work to free workers.

        Pops and submits one item at a time, releasing the lock around
        the sub-pool ``submit``: ``add_done_callback`` may invoke
        ``_on_done`` inline (already-failed future on a broken pool),
        and ``_on_done`` re-acquires the non-reentrant lock.
        """
        while True:
            with self._space:
                picked = self._pick_locked()
                if picked is None:
                    return
                item, worker = picked
                self._busy[worker] = True
                self._inflight += 1
            if item.kind == _KIND_JOB:
                # A job whose budget ran out while queued fails typed at
                # dispatch instead of occupying a worker to no purpose.
                deadline = item.payload.deadline()
                if deadline is not None and deadline.expired():
                    with self._space:
                        self._busy[worker] = False
                        self._inflight -= 1
                        self._pending -= 1
                        self._active.pop(item.handle.fingerprint, None)
                        self._space.notify_all()
                    if self.tracer is not None:
                        self.tracer.emit(
                            "deadline_exceeded",
                            fingerprint=item.handle.fingerprint,
                            stage="queued",
                            trace_id=item.payload.trace_id,
                            parent_span=item.payload.span_id,
                        )
                    item.handle._fail(
                        DeadlineExceeded(
                            "deadline exceeded while queued "
                            f"(over budget by {-deadline.remaining():.3f}s)"
                        )
                    )
                    continue
            if self.tracer is not None:
                item.claimed_at = time.perf_counter()
                job = item.payload if item.kind == _KIND_JOB else None
                if job is not None and job.trace_id is not None:
                    item.claim_span = new_span_id()
                self.tracer.emit(
                    "claimed",
                    fingerprint=(
                        item.handle.fingerprint if item.kind == _KIND_JOB else None
                    ),
                    kind=item.kind,
                    pool_worker=worker,
                    attempt=0,
                    trace_id=job.trace_id if job is not None else None,
                    span_id=item.claim_span,
                    parent_span=job.span_id if job is not None else None,
                )
            try:
                if item.kind == _KIND_JOB:
                    future = self._pools[worker].submit(
                        _pool_worker_run, item.payload, item.claim_span
                    )
                else:
                    fn, args, kwargs = item.payload
                    future = self._pools[worker].submit(
                        _pool_worker_call, fn, args, kwargs
                    )
            except Exception as exc:
                with self._space:
                    self._busy[worker] = False
                    self._inflight -= 1
                    self._pending -= 1
                    if item.kind == _KIND_JOB:
                        self._active.pop(item.handle.fingerprint, None)
                    self._space.notify_all()
                item.handle._fail(exc)
                continue
            future.add_done_callback(
                lambda future, item=item, worker=worker: self._on_done(
                    item, worker, future
                )
            )

    def _on_done(self, item: _QueueItem, worker: int, future) -> None:
        with self._space:
            self._busy[worker] = False
            self._inflight -= 1
            self._pending -= 1
            if item.kind == _KIND_JOB:
                self._active.pop(item.handle.fingerprint, None)
            self._space.notify_all()
        self._dispatch()
        try:
            payload = future.result()
        except BaseException as exc:  # noqa: BLE001 - relayed to the awaiter
            if self.tracer is not None:
                job = item.payload if item.kind == _KIND_JOB else None
                self.tracer.emit(
                    "done",
                    fingerprint=(
                        item.handle.fingerprint if item.kind == _KIND_JOB else None
                    ),
                    kind=item.kind,
                    seconds=(
                        time.perf_counter() - item.claimed_at
                        if item.claimed_at is not None
                        else None
                    ),
                    error=f"{type(exc).__name__}: {exc}",
                    trace_id=job.trace_id if job is not None else None,
                    parent_span=job.span_id if job is not None else None,
                )
            item.handle._fail(exc)
            return
        if item.kind == _KIND_JOB:
            result, cached, pid, worker_snapshot = payload
            if self.tracer is not None:
                self.tracer.emit(
                    "done",
                    fingerprint=item.handle.fingerprint,
                    seconds=(
                        time.perf_counter() - item.claimed_at
                        if item.claimed_at is not None
                        else None
                    ),
                    cached=cached,
                    pool_pid=pid,
                    trace_id=item.payload.trace_id,
                    parent_span=item.payload.span_id,
                )
            try:
                with self._lock:
                    self._worker_stats[pid] = worker_snapshot
                self.cache.put_result(item.handle.fingerprint, result)
            except Exception:
                # Bookkeeping is best-effort: the computed result must
                # reach the awaiter even if parent-side caching fails —
                # an exception here would otherwise be swallowed by the
                # done-callback machinery and strand result() forever.
                pass
            item.handle._complete(result, cached)
        else:
            value, pid, worker_snapshot = payload
            try:
                with self._lock:
                    self._worker_stats[pid] = worker_snapshot
            except Exception:
                pass
            item.handle._complete(value)

    def map(self, jobs) -> list[AbstractionResult]:
        """Submit all jobs, await all results (submission order)."""
        handles = [self.submit(job) for job in jobs]
        return [handle.result() for handle in handles]

    # -- introspection / lifecycle ----------------------------------------

    def stats(self) -> dict:
        """Parent cache counters plus the latest per-worker snapshots."""
        with self._lock:
            workers = {str(pid): dict(snap) for pid, snap in self._worker_stats.items()}
            scheduler = {
                "affinity": self.affinity,
                "prefix_claims": self._prefix_claims,
                "affinity_hits": self._affinity_hits,
            }
        totals = {
            "artifact_builds": sum(s["artifact_builds"] for s in workers.values()),
            "result_hits": sum(s["results"]["hits"] for s in workers.values()),
            "result_misses": sum(s["results"]["misses"] for s in workers.values()),
            "artifact_hits": sum(s["artifacts"]["hits"] for s in workers.values()),
            "selection_hits": sum(
                s.get("selection", {}).get("hits", 0) for s in workers.values()
            ),
        }
        stats = {
            "parent": self.cache.snapshot(),
            "workers": workers,
            "workers_total": totals,
            "scheduler": scheduler,
        }
        if self.admission is not None:
            stats["admission"] = self.admission.snapshot()
        return stats

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and shut the pool down."""
        with self._space:
            self._closed = True
            self._space.notify_all()
        for pool in self._pools:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "PoolExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
