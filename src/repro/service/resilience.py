"""Resilience primitives: deadlines, quotas, retries, circuit breaking.

The executor stack (:mod:`repro.service.executor`,
:mod:`repro.service.dist`) decides *whether and where* a job runs —
never *what* it computes, so byte-identity with the sequential
reference is preserved by construction.  This module collects the
policy objects those decisions are made with:

* :class:`Deadline` / :class:`DeadlineExceeded` — an end-to-end
  wall-clock budget attached to a job
  (:attr:`~repro.service.jobs.AbstractionJob.deadline_ms`).  The
  budget is pinned to an absolute epoch instant at submit time so it
  survives pickling into pool workers and broker queues, and the
  remaining budget is threaded through claim, artifact build, and the
  Step-2 solver time caps.  A job that cannot finish in budget raises
  :class:`DeadlineExceeded` from ``handle.result()`` instead of
  running to completion (and instead of hanging).
* :class:`TokenBucket` / :class:`AdmissionController` /
  :class:`Overloaded` — per-tenant rate quotas and a bounded-load shed
  policy.  An executor at ``max_load`` sheds the *lowest-priority*
  work with a typed :class:`Overloaded` failure rather than queuing
  unboundedly.
* :class:`RetryPolicy` — the one bounded-attempts /
  exponential-backoff / deterministic-jitter loop used by the worker
  claim and complete paths and the disk cache, replacing the ad-hoc
  retry code those paths used to carry.
* :class:`CircuitBreaker` / :class:`DegradingExecutor` — automatic
  tier degradation: when a broker trips repeatedly, the distributed
  tier is taken out of the request path and jobs run on a local
  fallback executor (pool or sequential) until a half-open probe
  succeeds.

Everything here takes an injectable clock so fault schedules are
deterministic under test (the chaos suite in ``tests/test_chaos.py``
drives the whole stack on seeded schedules).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import ReproError


class DeadlineExceeded(ReproError):
    """A job's end-to-end deadline expired before it could finish.

    Raised from ``handle.result()`` (and from the pipeline stages
    themselves) when the wall-clock budget attached to an
    :class:`~repro.service.jobs.AbstractionJob` runs out.  The job's
    outputs are never degraded to fit a budget — a too-slow job fails
    typed and fast instead of returning something different from the
    sequential reference.
    """


class Overloaded(ReproError):
    """Work was shed by admission control instead of being queued.

    Carries the shedding reason (``"tenant quota"`` or ``"max_load"``)
    in the message; raised from ``handle.result()`` of the shed job.
    """


@dataclass
class Deadline:
    """An absolute wall-clock budget (epoch seconds, cross-process).

    Pinned to ``time.time()`` rather than a monotonic clock on purpose:
    the instant must mean the same thing after the job is pickled into
    a pool worker or a broker queue on another host.
    """

    at: float

    @classmethod
    def after_ms(cls, deadline_ms: float, now: float | None = None) -> "Deadline":
        """A deadline ``deadline_ms`` milliseconds from ``now``."""
        base = time.time() if now is None else now
        return cls(at=base + deadline_ms / 1000.0)

    def remaining(self, now: float | None = None) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.at - (time.time() if now is None else now)

    def expired(self, now: float | None = None) -> bool:
        """Whether the budget has run out."""
        return self.remaining(now) <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` when the budget has run out."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline exceeded before {stage} "
                f"(over budget by {-self.remaining():.3f}s)"
            )

    def cap(self, limit: float | None) -> float:
        """Cap a solver/stage time limit to the remaining budget.

        Returns ``min(limit, remaining)``, floored at a tiny positive
        value so downstream code never sees a zero/negative limit (the
        stage-boundary :meth:`check` is what surfaces expiry).
        """
        remaining = max(self.remaining(), 1e-3)
        if limit is None:
            return remaining
        return min(limit, remaining)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts, exponential backoff, deterministic jitter.

    One policy object replaces the scattered retry loops of the worker
    claim/complete path and the disk cache.  The jitter is a pure
    function of ``(seed, key, attempt)`` — two processes retrying the
    same operation desynchronize, but a test replaying a schedule sees
    identical delays.

    Attributes
    ----------
    attempts:
        Total tries (the first call included); the last failure is
        re-raised once they are exhausted.
    base_delay / multiplier / max_delay:
        Backoff shape: sleep ``base_delay * multiplier**i`` (capped at
        ``max_delay``) after the ``i``-th failure.
    jitter:
        Fraction of the computed delay added as deterministic jitter
        (0 disables it).
    seed:
        Jitter stream name; give concurrent consumers distinct seeds.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: str = "repro"

    def __post_init__(self):
        if self.attempts < 1:
            raise ReproError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("delays must be >= 0")

    def delay(self, attempt: int, key: str = "") -> float:
        """The backoff delay after failed attempt number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.seed}|{key}|{attempt}".encode("utf-8")
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay += delay * self.jitter * fraction
        return delay

    def call(
        self,
        fn,
        *args,
        key: str = "",
        retry_on: "tuple[type[BaseException], ...]" = (Exception,),
        on_retry=None,
        sleep=time.sleep,
        **kwargs,
    ):
        """Run ``fn(*args, **kwargs)``, retrying transient failures.

        ``on_retry(exc, attempt)`` is called before each backoff sleep
        (workers count broker errors there).  The final failure is
        re-raised; exception types outside ``retry_on`` propagate
        immediately.
        """
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:
                if attempt + 1 >= self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt)
                sleep(self.delay(attempt, key))
        raise AssertionError("unreachable")  # pragma: no cover


class TokenBucket:
    """A thread-safe token bucket: ``capacity`` burst, ``refill_rate``/s."""

    def __init__(self, capacity: float, refill_rate: float, clock=time.monotonic):
        if capacity <= 0 or refill_rate < 0:
            raise ReproError(
                f"token bucket needs capacity > 0 and refill_rate >= 0, "
                f"got {capacity}/{refill_rate}"
            )
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._stamp) * self.refill_rate
            )
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Current token count (after refill; for introspection)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._stamp) * self.refill_rate
            )
            self._stamp = now
            return self._tokens


class AdmissionController:
    """Per-tenant quotas plus shed accounting for a bounded executor.

    Parameters
    ----------
    max_load:
        Bound on queued-plus-running work the owning executor enforces;
        ``None`` disables load shedding (the executor falls back to its
        blocking ``max_pending`` backpressure only).
    quotas:
        ``tenant -> (capacity, refill_rate)`` token buckets.  A job
        whose :attr:`~repro.service.jobs.AbstractionJob.tenant` has a
        bucket must win a token or it is shed with :class:`Overloaded`.
    default_quota:
        Optional ``(capacity, refill_rate)`` applied to every tenant
        without an explicit entry (including the anonymous ``None``
        tenant).  Without it, unknown tenants are never throttled.
    clock:
        Injectable monotonic clock for the buckets (tests).
    """

    def __init__(
        self,
        max_load: int | None = None,
        quotas: "dict[str, tuple[float, float]] | None" = None,
        default_quota: "tuple[float, float] | None" = None,
        clock=time.monotonic,
    ):
        if max_load is not None and max_load < 1:
            raise ReproError(f"max_load must be >= 1, got {max_load}")
        self.max_load = max_load
        self._clock = clock
        self._default_quota = default_quota
        self._buckets: dict[object, TokenBucket] = {
            tenant: TokenBucket(capacity, rate, clock=clock)
            for tenant, (capacity, rate) in (quotas or {}).items()
        }
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed_quota = 0
        self.shed_load = 0

    def bucket_for(self, tenant: str | None) -> TokenBucket | None:
        """The tenant's bucket (lazily built from ``default_quota``)."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None and self._default_quota is not None:
                capacity, rate = self._default_quota
                bucket = TokenBucket(capacity, rate, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str | None) -> bool:
        """Charge one request to the tenant's quota; ``False`` = shed."""
        bucket = self.bucket_for(tenant)
        if bucket is not None and not bucket.try_acquire():
            with self._lock:
                self.shed_quota += 1
            return False
        with self._lock:
            self.admitted += 1
        return True

    def count_load_shed(self) -> None:
        """Record one unit of work shed by the owning executor's load bound."""
        with self._lock:
            self.shed_load += 1

    def snapshot(self) -> dict:
        """Plain-data counters for executor stats."""
        with self._lock:
            return {
                "max_load": self.max_load,
                "admitted": self.admitted,
                "shed_quota": self.shed_quota,
                "shed_load": self.shed_load,
                "tenants": len(self._buckets),
            }


#: Circuit-breaker states.
BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """A classic three-state circuit breaker with an injectable clock.

    ``closed`` — requests flow; consecutive failures past
    ``failure_threshold`` trip the breaker.  ``open`` — requests are
    rejected without touching the protected resource until
    ``reset_timeout`` elapses.  ``half-open`` — one probe request is
    let through; success closes the breaker, failure re-opens it.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = BREAKER_CLOSED
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BREAKER_HALF_OPEN
            self._probing = False

    def allow(self) -> bool:
        """Whether the next request may touch the protected resource.

        In ``half-open`` exactly one caller is granted the probe; the
        rest are rejected until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """A protected call succeeded: close the breaker."""
        with self._lock:
            self._failures = 0
            self._state = BREAKER_CLOSED
            self._probing = False

    def record_failure(self) -> None:
        """A protected call failed: count it, maybe trip the breaker."""
        with self._lock:
            self._failures += 1
            if self._state == BREAKER_HALF_OPEN or (
                self._state == BREAKER_CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._probing = False
                self.trips += 1

    def snapshot(self) -> dict:
        """Plain-data state for executor stats."""
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "state": self._state,
                "failures": self._failures,
                "threshold": self.failure_threshold,
                "trips": self.trips,
            }


class DegradingExecutor:
    """Tier degradation: distributed → local fallback behind a breaker.

    Wraps a *primary* executor (typically a
    :class:`~repro.service.dist.executor.DistributedExecutor`) and a
    lazily-built *fallback* (a
    :class:`~repro.service.executor.PoolExecutor` or
    :class:`~repro.service.executor.SequentialExecutor`).  Submissions
    flow to the primary while its :class:`CircuitBreaker` is closed;
    when the broker trips repeatedly (``submit`` raising), the breaker
    opens and jobs run on the fallback tier until a half-open probe
    succeeds.  Policy failures (:class:`Overloaded`,
    :class:`DeadlineExceeded`) and ordinary job failures delivered
    through handles do **not** count against the breaker — only
    submission-path infrastructure errors do.

    The wrapper speaks the full executor protocol (``submit`` /
    ``submit_call`` / ``map`` / ``stats`` / ``shutdown`` / context
    manager), so ``make_executor`` callers are oblivious to which tier
    actually ran their jobs.
    """

    def __init__(
        self,
        primary,
        fallback_factory,
        breaker: CircuitBreaker | None = None,
        tracer=None,
    ):
        self.primary = primary
        self._fallback_factory = fallback_factory
        self._fallback = None
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.tracer = tracer
        self._lock = threading.Lock()
        self._degraded_submissions = 0

    def _fallback_executor(self, cause: str, job=None):
        with self._lock:
            if self._fallback is None:
                self._fallback = self._fallback_factory()
            self._degraded_submissions += 1
            fallback = self._fallback
        if self.tracer is not None:
            # A job that already has a span (the failed primary submit
            # minted one) keeps its trace across the tier change.
            self.tracer.emit(
                "degraded",
                cause=cause,
                breaker=self.breaker.state,
                trace_id=getattr(job, "trace_id", None),
                parent_span=getattr(job, "span_id", None),
            )
        return fallback

    def _submit_via(self, method: str, *args, **kwargs):
        job = args[0] if method == "submit" and args else None
        if self.breaker.allow():
            try:
                handle = getattr(self.primary, method)(*args, **kwargs)
            except (Overloaded, DeadlineExceeded):
                # Policy outcomes are verdicts, not infrastructure
                # faults: the fallback tier would only re-shed them.
                raise
            except Exception as exc:
                self.breaker.record_failure()
                return getattr(
                    self._fallback_executor(f"{type(exc).__name__}: {exc}", job),
                    method,
                )(*args, **kwargs)
            self.breaker.record_success()
            return handle
        return getattr(
            self._fallback_executor("breaker_open", job), method
        )(*args, **kwargs)

    def submit(self, job, priority: int | None = None):
        """Submit to the primary tier, degrading on broker failure."""
        return self._submit_via("submit", job, priority=priority)

    def submit_call(self, fn, *args, priority: int = 0, **kwargs):
        """``submit_call`` twin of :meth:`submit` (same degradation)."""
        return self._submit_via("submit_call", fn, *args, priority=priority, **kwargs)

    def map(self, jobs) -> list:
        """Submit all jobs, await all results (submission order)."""
        handles = [self.submit(job) for job in jobs]
        return [handle.result() for handle in handles]

    def stats(self) -> dict:
        """Primary-tier stats plus breaker/degradation accounting."""
        stats = self.primary.stats()
        with self._lock:
            degraded = self._degraded_submissions
            fallback = self._fallback
        stats["resilience"] = {
            "breaker": self.breaker.snapshot(),
            "degraded_submissions": degraded,
            "fallback_active": fallback is not None,
        }
        if fallback is not None:
            stats["fallback"] = fallback.stats()
        return stats

    def shutdown(self, wait: bool = True) -> None:
        """Shut both tiers down."""
        with self._lock:
            fallback = self._fallback
        try:
            self.primary.shutdown(wait=wait)
        finally:
            if fallback is not None:
                fallback.shutdown(wait=wait)

    def __enter__(self) -> "DegradingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
