"""The job model: log references and content-addressed abstraction jobs.

An :class:`AbstractionJob` is one unit of servable work — a log
reference plus a :class:`~repro.constraints.sets.ConstraintSet` plus a
:class:`~repro.core.gecco.GeccoConfig`.  Its :meth:`fingerprint` is the
content address the whole runtime is keyed by:

* ``log`` — digest of the resolved log's content,
* ``constraints`` — digest of the set's canonical JSON
  (:meth:`ConstraintSet.to_json`, order- and whitespace-stable),
* ``config`` — digest of the normalized (defaults-filled) config,
* ``full`` — the three combined.

The ``log`` component doubles as the cache *prefix* under which the
expensive per-log artifacts (compiled log, instance index, DFG) are
shared by every job on the same log, whatever its constraints.

A :class:`LogRef` names a log without necessarily holding it: builtin
datasets (``running_example``, ``loan:80``, ``synthetic:10x40``), files
(``.xes``/``.csv``), or inline :class:`~repro.eventlog.events.EventLog`
objects.  References resolve lazily and pickle compactly — builtin and
path references re-resolve inside worker processes instead of shipping
event data over the pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.constraints.sets import ConstraintSet
from repro.core.gecco import GeccoConfig
from repro.eventlog.events import EventLog
from repro.exceptions import ReproError
from repro.service import fingerprint as fp
from repro.service import serialization

#: Log-reference kinds.
LOG_REF_KINDS = ("builtin", "path", "inline")


def _build_running_example(arg: str | None) -> EventLog:
    from repro.datasets import running_example_log

    if arg:
        raise ReproError("builtin log 'running_example' takes no argument")
    return running_example_log()


def _build_loan(arg: str | None) -> EventLog:
    from repro.datasets import loan_application_log

    return loan_application_log(num_traces=int(arg) if arg else 300)


def _build_synthetic(arg: str | None) -> EventLog:
    from repro.datasets.attributes import enrich_log
    from repro.datasets.playout import playout
    from repro.datasets.process_tree import TreeSpec, random_tree

    spec = arg or "10x40"
    seed = 42
    if "@" in spec:
        spec, seed_text = spec.split("@", 1)
        seed = int(seed_text)
    try:
        classes_text, traces_text = spec.split("x", 1)
        num_classes, num_traces = int(classes_text), int(traces_text)
    except ValueError:
        raise ReproError(
            f"synthetic log spec must look like '10x40' or '10x40@7', got {arg!r}"
        ) from None
    tree = random_tree(TreeSpec(num_activities=num_classes), seed=seed)
    return enrich_log(playout(tree, num_traces, seed=seed), seed=seed)


#: Builtin dataset name -> builder taking the optional ``name:arg`` part.
BUILTIN_LOGS = {
    "running_example": _build_running_example,
    "loan": _build_loan,
    "synthetic": _build_synthetic,
}


class LogRef:
    """A resolvable, digestible reference to an event log."""

    __slots__ = ("kind", "spec", "_log", "_digest")

    def __init__(self, kind: str, spec: str | None = None, log: EventLog | None = None):
        if kind not in LOG_REF_KINDS:
            raise ReproError(f"unknown log reference kind {kind!r}; use {LOG_REF_KINDS}")
        if kind == "inline" and log is None:
            raise ReproError("inline log references need the log object")
        self.kind = kind
        self.spec = spec
        self._log = log
        self._digest: str | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def builtin(cls, spec: str) -> "LogRef":
        """Reference a builtin dataset, e.g. ``"loan:80"``."""
        name = spec.split(":", 1)[0]
        if name not in BUILTIN_LOGS:
            raise ReproError(
                f"unknown builtin log {name!r}; known: {sorted(BUILTIN_LOGS)}"
            )
        return cls("builtin", spec)

    @classmethod
    def path(cls, path: str) -> "LogRef":
        """Reference a log file (``.xes`` or ``.csv``)."""
        return cls("path", str(path))

    @classmethod
    def inline(cls, log: EventLog, name: str = "inline") -> "LogRef":
        """Wrap an in-memory log."""
        return cls("inline", name, log)

    @classmethod
    def from_spec(cls, spec: str) -> "LogRef":
        """Parse a manifest log field: a builtin name or a file path."""
        name = spec.split(":", 1)[0]
        if name in BUILTIN_LOGS:
            return cls.builtin(spec)
        if Path(spec).suffix.lower() in (".xes", ".csv"):
            return cls.path(spec)
        raise ReproError(
            f"log reference {spec!r} is neither a builtin "
            f"({sorted(BUILTIN_LOGS)}) nor an .xes/.csv path"
        )

    # -- resolution --------------------------------------------------------

    def resolve(self) -> EventLog:
        """Load/build the referenced log (memoized per reference)."""
        if self._log is None:
            if self.kind == "builtin":
                name, _, arg = (self.spec or "").partition(":")
                self._log = BUILTIN_LOGS[name](arg or None)
            elif self.kind == "path":
                from repro.eventlog import csv_io, xes

                suffix = Path(self.spec).suffix.lower()
                if suffix == ".xes":
                    self._log = xes.load(self.spec)
                elif suffix == ".csv":
                    self._log = csv_io.read_csv(self.spec)
                else:
                    raise ReproError(
                        f"unsupported log format {suffix!r} (use .xes or .csv)"
                    )
            else:  # pragma: no cover - inline always carries its log
                raise ReproError("inline log reference lost its log")
        return self._log

    def digest(self) -> str:
        """Content digest of the resolved log (memoized)."""
        if self._digest is None:
            self._digest = fp.log_digest(self.resolve())
        return self._digest

    def describe(self) -> str:
        """Short human-readable name for logs and batch rows."""
        return f"{self.kind}:{self.spec}"

    # -- serialization / pickling -----------------------------------------

    def to_dict(self) -> dict:
        """Manifest rendering: a spec string, or embedded event data."""
        if self.kind == "inline":
            return {
                "kind": "inline",
                "name": self.spec,
                "log": serialization.log_to_dict(self._log),
            }
        return {"kind": self.kind, "spec": self.spec}

    @classmethod
    def from_dict(cls, data: "dict | str") -> "LogRef":
        """Parse a manifest log field (string spec or mapping)."""
        if isinstance(data, str):
            return cls.from_spec(data)
        kind = data.get("kind")
        if kind == "inline":
            return cls.inline(
                serialization.log_from_dict(data["log"]), data.get("name", "inline")
            )
        if kind == "builtin":
            return cls.builtin(data["spec"])
        if kind == "path":
            return cls.path(data["spec"])
        return cls.from_spec(data["spec"])

    def __getstate__(self):
        # Builtin/path references re-resolve in the receiving process;
        # only inline references must ship their event data.  The digest
        # travels along so workers never recompute it.
        log = self._log if self.kind == "inline" else None
        return (self.kind, self.spec, log, self._digest)

    def __setstate__(self, state):
        self.kind, self.spec, self._log, self._digest = state

    def __repr__(self) -> str:
        return f"LogRef({self.describe()})"


def config_to_dict(config: GeccoConfig) -> dict:
    """Normalized (defaults-filled) plain-data rendering of a config."""
    return {f.name: getattr(config, f.name) for f in fields(config)}


def config_from_dict(data: dict) -> GeccoConfig:
    """Build a config from a (possibly partial) mapping."""
    known = {f.name for f in fields(GeccoConfig)}
    unknown = set(data) - known
    if unknown:
        raise ReproError(f"unknown config fields {sorted(unknown)}")
    return GeccoConfig(**data)


def share_log_refs(jobs: "list[AbstractionJob]") -> "list[AbstractionJob]":
    """Make jobs with the same builtin/path log share one :class:`LogRef`.

    Manifest parsing builds one reference per row; since a reference
    memoizes its resolved log and digest per *instance*, sharing them
    means each distinct log is parsed and hashed once at fingerprint
    time instead of once per job.  Inline references keep their own
    logs.  Returns ``jobs`` (mutated in place) for chaining.
    """
    shared: dict[tuple, LogRef] = {}
    for job in jobs:
        if job.log.kind != "inline":
            key = (job.log.kind, job.log.spec)
            job.log = shared.setdefault(key, job.log)
    return jobs


@dataclass(frozen=True)
class JobFingerprint:
    """The content address of a job, componentwise and combined."""

    log: str
    constraints: str
    config: str

    @property
    def full(self) -> str:
        """Digest of the full job (log × constraints × config)."""
        return fp.combine_digests(self.log, self.constraints, self.config)

    def artifact_key(self, instance_policy: str, engine: str) -> tuple:
        """Cache key of the shared per-log artifacts (the log *prefix*)."""
        return (self.log, instance_policy, engine)


@dataclass
class AbstractionJob:
    """One servable abstraction problem.

    ``deadline_ms`` and ``tenant`` are *policy* fields: they decide
    whether and where the job runs (deadline enforcement, admission
    control), never what it computes — so neither enters the
    :meth:`fingerprint` and two jobs differing only in policy share
    one cache entry.
    """

    log: LogRef
    constraints: ConstraintSet
    config: GeccoConfig = field(default_factory=GeccoConfig)
    job_id: str | None = None
    priority: int = 0
    #: End-to-end wall-clock budget in milliseconds (``None`` = none).
    deadline_ms: float | None = None
    #: Admission-control tenant for per-tenant quotas (``None`` = anonymous).
    tenant: str | None = None
    #: Absolute epoch deadline, pinned at submit time by :meth:`deadline`.
    #: Epoch (not monotonic) so the instant survives pickling into pool
    #: workers and broker queues.  Runtime-only: never in the manifest.
    deadline_at: float | None = field(default=None, compare=False)
    #: Span context, minted at submit by the tracing executor and
    #: carried inside the pickled payload through broker queues and
    #: pool pipes so worker-side events join the submit span's tree.
    #: Runtime-only policy fields like ``deadline_at``: never in the
    #: manifest, never in the fingerprint.
    trace_id: str | None = field(default=None, compare=False)
    span_id: str | None = field(default=None, compare=False)
    _fingerprint: JobFingerprint | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self):
        if not isinstance(self.log, LogRef):
            raise ReproError(f"job log must be a LogRef, got {type(self.log).__name__}")
        if not isinstance(self.constraints, ConstraintSet):
            self.constraints = ConstraintSet(self.constraints)
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError(f"deadline_ms must be > 0, got {self.deadline_ms}")

    def deadline(self):
        """The job's :class:`~repro.service.resilience.Deadline`, or ``None``.

        First call pins the absolute instant (``now + deadline_ms``);
        executors call this at submit so the budget covers queueing,
        claim, artifact build, and solve — not just compute time.
        """
        if self.deadline_ms is None:
            return None
        from repro.service.resilience import Deadline

        if self.deadline_at is None:
            self.deadline_at = Deadline.after_ms(self.deadline_ms).at
        return Deadline(at=self.deadline_at)

    def fingerprint(self) -> JobFingerprint:
        """The job's content address (memoized)."""
        if self._fingerprint is None:
            self._fingerprint = JobFingerprint(
                log=self.log.digest(),
                constraints=fp.digest_text(self.constraints.to_json()),
                config=fp.digest_text(fp.canonical_json(config_to_dict(self.config))),
            )
        return self._fingerprint

    # -- manifest rendering ------------------------------------------------

    def to_dict(self) -> dict:
        """One manifest row (JSON-able)."""
        row: dict[str, Any] = {
            "log": self.log.to_dict() if self.log.kind == "inline" else self.log.spec,
            "constraints": self.constraints.to_specs(),
            "config": config_to_dict(self.config),
        }
        if self.job_id is not None:
            row["id"] = self.job_id
        if self.priority:
            row["priority"] = self.priority
        if self.deadline_ms is not None:
            row["deadline_ms"] = self.deadline_ms
        if self.tenant is not None:
            row["tenant"] = self.tenant
        return row

    @classmethod
    def from_dict(cls, row: dict) -> "AbstractionJob":
        """Parse one manifest row.

        Required: ``log`` (spec string or mapping) and ``constraints``
        (a list of parser specifications).  Optional: ``config`` (a
        partial :class:`GeccoConfig` mapping), ``id``, ``priority``,
        ``deadline_ms``, ``tenant``.
        """
        from repro.constraints.parser import parse_constraints

        unknown = set(row) - {
            "log", "constraints", "config", "id", "priority",
            "deadline_ms", "tenant",
        }
        if unknown:
            raise ReproError(f"unknown job fields {sorted(unknown)}")
        if "log" not in row:
            raise ReproError(f"job row lacks 'log': {row}")
        if "constraints" not in row:
            raise ReproError(f"job row lacks 'constraints': {row}")
        deadline_ms = row.get("deadline_ms")
        return cls(
            log=LogRef.from_dict(row["log"]),
            constraints=parse_constraints(row["constraints"]),
            config=config_from_dict(row.get("config", {})),
            job_id=row.get("id"),
            priority=int(row.get("priority", 0)),
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
            tenant=row.get("tenant"),
        )
