"""Integrity scan & repair for disk stores and fs-broker directories.

``repro fsck`` is the offline counterpart of the self-healing read
paths: the cache and broker already quarantine corrupt entries the
moment a reader trips over them, but a large store can hold rot that
nothing has read yet, and killed writers leak staging files and
orphaned leases that no read path ever visits.  This module walks the
whole tree at once:

* :func:`fsck_store` — verify every disk-store entry (result and
  selection tiers) against its embedded sha256 seal *and* its schema
  (an entry that checksums but no longer parses is just as dead),
  quarantine failures, and delete stale ``*.tmp`` staging files;
* :func:`fsck_broker` — verify queue/claimed payload frames and
  result envelopes of a :class:`~repro.service.dist.fsbroker.FilesystemBroker`
  directory, drop leases (task and affinity) that outlived their task
  or their deadline, and clear staging junk.

Both are pure functions over a directory returning a JSON-ready
report; ``repair=False`` turns every repair into a dry-run count.
Run fsck against a store only when no fleet is actively writing to it
— the staging-file sweep assumes any ``*.tmp`` it sees is dead.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError
from repro.experiments.persistence import read_json
from repro.service.journal import (
    IntegrityError,
    sweep_stale_tmp,
    unframe_bytes,
    verify_seal,
)

#: Schema tag stamped on fsck reports.
FSCK_SCHEMA = "gecco-fsck/1"


def _quarantine_into(root: Path, path: Path, repair: bool) -> str:
    """Move a corrupt entry to ``<root>/quarantine/<name>.bad``."""
    rel = str(path.relative_to(root))
    if repair:
        quarantine = root / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, quarantine / (path.name + ".bad"))
        except OSError:
            pass
    return rel


def _verify_store_entry(path: Path, parser) -> Optional[str]:
    """Return an error string when a store entry is corrupt, else None."""
    try:
        payload = verify_seal(read_json(path))
    except IntegrityError as exc:
        return f"checksum: {exc}"
    except Exception as exc:  # noqa: BLE001 - any read/parse failure is rot
        return f"unreadable: {exc}"
    try:
        parser(payload)
    except Exception as exc:  # noqa: BLE001
        return f"schema: {exc}"
    return None


def fsck_store(
    disk_dir: "str | Path",
    *,
    repair: bool = True,
    tmp_max_age: float = 0.0,
) -> Dict[str, Any]:
    """Scan (and repair) an :class:`~repro.service.cache.ArtifactCache` disk store.

    Every result entry (``<2ch>/<fingerprint>.json``) and selection
    entry (``selection/<2ch>/<digest>.json``) is checksum-verified and
    re-parsed; failures move to ``quarantine/`` (suffixed ``.bad``) so
    the next put repairs the slot.  Stale ``*.tmp`` staging files are
    deleted (``tmp_max_age=0`` means *all* of them — offline use only).
    """
    from repro.service.cache import _selection_from_dict
    from repro.service.serialization import result_from_dict

    root = Path(disk_dir)
    report: Dict[str, Any] = {
        "root": str(root),
        "present": root.is_dir(),
        "scanned": 0,
        "ok": 0,
        "quarantined": [],
        "tmp_removed": [],
        "already_quarantined": 0,
    }
    if not report["present"]:
        return report
    # The two-level glob cannot match the three-level selection layout
    # and quarantined files carry a ``.bad`` suffix, so the patterns
    # partition the store (same invariant as ArtifactCache._disk_entries).
    tiers = (
        (root.glob("*/*.json"), result_from_dict),
        (root.glob("selection/*/*.json"), _selection_from_dict),
    )
    for entries, parser in tiers:
        for path in sorted(entries):
            if path.relative_to(root).parts[0] == "quarantine":
                continue
            report["scanned"] += 1
            error = _verify_store_entry(path, parser)
            if error is None:
                report["ok"] += 1
                continue
            rel = _quarantine_into(root, path, repair)
            report["quarantined"].append({"path": rel, "error": error})
    report["already_quarantined"] = sum(
        1 for _ in root.glob("quarantine/*.bad")
    )
    report["tmp_removed"] = sweep_stale_tmp(root, max_age=tmp_max_age)
    report["repaired"] = len(report["quarantined"]) if repair else 0
    return report


def _broker_root(broker: "str | Path") -> Path:
    """Resolve a broker URL or bare path to an fs-broker directory."""
    text = str(broker)
    if text.startswith("fs://"):
        return Path(text[len("fs://"):])
    if "://" in text:
        raise ReproError(
            f"repro fsck can only repair fs:// broker directories, not {text!r} "
            "(sqlite and redis backends have their own integrity machinery)"
        )
    return Path(text)


def fsck_broker(
    broker: "str | Path",
    *,
    repair: bool = True,
    tmp_max_age: float = 0.0,
) -> Dict[str, Any]:
    """Scan (and repair) a filesystem-broker directory.

    Checks, per sub-directory:

    * ``queue/`` and ``claimed/`` — entry names must parse and payload
      checksum frames must verify; the payload must also unpickle
      (undecodable tasks would only crash a worker later).  Failures
      move to ``quarantine/`` with a ``.reason`` sidecar;
    * ``results/`` — envelope frames must verify; corrupt results move
      to quarantine and are replaced by explicit error envelopes (the
      same self-healing the live read path applies);
    * ``leases/`` — a lease whose task has no queue/claimed entry and
      no pending result is orphaned (its owner died mid-claim) and is
      dropped; unreadable lease files are dropped too;
    * ``affinity/`` — expired ownership leases are dropped;
    * ``tmp/`` — staging files are deleted.
    """
    from repro.service.dist.broker import encode_result
    from repro.service.dist.fsbroker import _parse_entry_name
    from repro.service.journal import frame_bytes

    root = _broker_root(broker)
    report: Dict[str, Any] = {
        "root": str(root),
        "present": (root / "queue").is_dir(),
        "scanned": 0,
        "ok": 0,
        "quarantined": [],
        "orphaned_leases_removed": [],
        "expired_affinities_removed": [],
        "tmp_removed": [],
    }
    if not report["present"]:
        return report

    def quarantine_entry(path: Path, reason: str) -> None:
        rel = str(path.relative_to(root))
        if repair:
            target = root / "quarantine" / path.name
            try:
                os.replace(path, target)
            except OSError:
                return
            try:
                (root / "quarantine" / f"{path.name}.reason").write_bytes(
                    reason.encode("utf-8")
                )
            except OSError:
                pass
            meta = _parse_entry_name(path.name)
            if meta is not None:
                # Fail any executor still waiting on this task.
                result = root / "results" / f"{meta.task_id}.res"
                if not result.exists():
                    try:
                        result.write_bytes(
                            frame_bytes(
                                encode_result(
                                    error=f"task quarantined by fsck: {reason}"
                                )
                            )
                        )
                    except OSError:
                        pass
        report["quarantined"].append({"path": rel, "error": reason})

    live_tasks = set()
    for sub in ("queue", "claimed"):
        for path in sorted((root / sub).glob("*")):
            if not path.is_file() or path.name.endswith(".tmp"):
                continue
            meta = _parse_entry_name(path.name)
            if meta is None:
                report["scanned"] += 1
                quarantine_entry(path, "unparsable entry name")
                continue
            report["scanned"] += 1
            try:
                payload = unframe_bytes(path.read_bytes())
            except IntegrityError as exc:
                quarantine_entry(path, f"payload checksum failed: {exc}")
                continue
            except OSError:
                continue  # claimed/ can race a live worker; skip
            try:
                pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001 - any decode failure
                quarantine_entry(path, f"payload does not decode: {exc}")
                continue
            live_tasks.add(meta.task_id)
            report["ok"] += 1

    for path in sorted((root / "results").glob("*.res")):
        report["scanned"] += 1
        try:
            unframe_bytes(path.read_bytes())
        except IntegrityError as exc:
            rel = str(path.relative_to(root))
            if repair:
                task_id = path.name[: -len(".res")]
                try:
                    os.replace(path, root / "quarantine" / f"{path.name}.bad")
                except OSError:
                    pass
                try:
                    path.write_bytes(
                        frame_bytes(
                            encode_result(
                                error=(
                                    f"result for task {task_id} failed its "
                                    f"checksum: {exc}"
                                )
                            )
                        )
                    )
                except OSError:
                    pass
            report["quarantined"].append(
                {"path": rel, "error": f"result checksum failed: {exc}"}
            )
            continue
        except OSError:
            continue
        report["ok"] += 1
        live_tasks.add(path.name[: -len(".res")])

    for path in sorted((root / "leases").glob("*.json")):
        task_id = path.name[: -len(".json")]
        try:
            record = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            record = None
        if record is not None and task_id in live_tasks:
            continue
        rel = str(path.relative_to(root))
        if repair:
            try:
                path.unlink()
            except OSError:
                continue
        report["orphaned_leases_removed"].append(rel)

    now = time.time()
    for path in sorted((root / "affinity").glob("*.json")):
        try:
            record = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            record = {}
        if isinstance(record, dict) and record.get("deadline", 0.0) > now:
            continue
        rel = str(path.relative_to(root))
        if repair:
            try:
                path.unlink()
            except OSError:
                continue
        report["expired_affinities_removed"].append(rel)

    report["tmp_removed"] = sweep_stale_tmp(
        root / "tmp", max_age=tmp_max_age, patterns=("*.tmp",)
    )
    report["repaired"] = (
        len(report["quarantined"])
        + len(report["orphaned_leases_removed"])
        + len(report["expired_affinities_removed"])
        if repair
        else 0
    )
    return report


def fsck_report(
    cache_dir: "str | Path | None" = None,
    broker: "str | Path | None" = None,
    *,
    repair: bool = True,
) -> Dict[str, Any]:
    """Combined ``repro fsck`` report over a store and/or a broker dir."""
    if cache_dir is None and broker is None:
        raise ReproError("fsck needs --cache-dir and/or --broker to scan")
    report: Dict[str, Any] = {"schema": FSCK_SCHEMA, "repair": repair}
    totals = {"scanned": 0, "quarantined": 0, "repaired": 0, "tmp_removed": 0}
    if cache_dir is not None:
        store = fsck_store(cache_dir, repair=repair)
        report["store"] = store
        totals["scanned"] += store["scanned"]
        totals["quarantined"] += len(store["quarantined"])
        totals["repaired"] += store.get("repaired", 0)
        totals["tmp_removed"] += len(store["tmp_removed"])
    if broker is not None:
        broker_report = fsck_broker(broker, repair=repair)
        report["broker"] = broker_report
        totals["scanned"] += broker_report["scanned"]
        totals["quarantined"] += len(broker_report["quarantined"])
        totals["repaired"] += broker_report.get("repaired", 0)
        totals["tmp_removed"] += len(broker_report["tmp_removed"])
    report["totals"] = totals
    return report


def render_fsck(report: Dict[str, Any]) -> str:
    """Human-readable rendering of an fsck report."""
    lines: List[str] = []
    mode = "repair" if report.get("repair", True) else "dry-run"
    for section in ("store", "broker"):
        part = report.get(section)
        if part is None:
            continue
        lines.append(f"{section}: {part['root']} ({mode})")
        if not part.get("present", False):
            lines.append("  not present — nothing to scan")
            continue
        lines.append(
            f"  scanned {part['scanned']} entries, {part['ok']} ok, "
            f"{len(part['quarantined'])} quarantined, "
            f"{len(part['tmp_removed'])} stale tmp files removed"
        )
        for bad in part["quarantined"]:
            lines.append(f"    quarantined {bad['path']}: {bad['error']}")
        for extra_key in ("orphaned_leases_removed", "expired_affinities_removed"):
            for rel in part.get(extra_key, []):
                label = extra_key.replace("_", " ").replace(" removed", "")
                lines.append(f"    removed {label}: {rel}")
    totals = report.get("totals", {})
    lines.append(
        f"totals: scanned={totals.get('scanned', 0)} "
        f"quarantined={totals.get('quarantined', 0)} "
        f"repaired={totals.get('repaired', 0)} "
        f"tmp_removed={totals.get('tmp_removed', 0)}"
    )
    return "\n".join(lines)
