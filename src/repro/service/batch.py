"""Batch and serve entry points: JSONL manifests in, JSONL results out.

``repro batch`` turns a manifest — one JSON job per line, see
:meth:`~repro.service.jobs.AbstractionJob.from_dict` for the row
format — into a results file, fanning the jobs out over a
:class:`~repro.service.executor.PoolExecutor` (or the deterministic
sequential executor).  ``repro serve`` runs the same machinery as a
long-lived request/response loop over line-delimited JSON on
stdin/stdout or a TCP socket, so a warm cache keeps serving repeat
traffic without recomputation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

from repro.exceptions import ReproError
from repro.service.executor import PoolExecutor, SequentialExecutor
from repro.service.jobs import AbstractionJob, share_log_refs
from repro.service.resilience import DeadlineExceeded, Overloaded
from repro.service.serialization import result_to_dict


def load_manifest(source: "str | Path | IO | Iterable[str]") -> list[AbstractionJob]:
    """Parse a JSONL job manifest.

    Blank lines and ``#`` comment lines are skipped.  Jobs without an
    explicit ``id`` are named ``job-<line number>``.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text(encoding="utf-8").splitlines()
    elif hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = source
    jobs = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"manifest line {number} is not valid JSON: {exc}") from exc
        job = AbstractionJob.from_dict(row)
        if job.job_id is None:
            job.job_id = f"job-{number}"
        jobs.append(job)
    if not jobs:
        raise ReproError("manifest contains no jobs")
    return share_log_refs(jobs)


def job_row(job: AbstractionJob, result, cached: bool, seconds: float,
            include_log: bool = False) -> dict:
    """One JSONL result row for a finished job.

    ``seconds`` is whatever duration the caller measured for this job —
    batch rows report the job's own pipeline time (0.0 when served
    from a cache), serve responses report request wall time.
    """
    row = {
        "id": job.job_id,
        "log": job.log.describe(),
        "fingerprint": job.fingerprint().full,
        "cached": cached,
        "seconds": seconds,
        "feasible": result.feasible,
        "distance": result.distance,
        "num_candidates": result.num_candidates,
        "num_groups": len(result.grouping) if result.grouping is not None else None,
        "engine": result.engine,
        "selection": (
            result.selection_stats.as_dict()
            if getattr(result, "selection_stats", None) is not None
            else None
        ),
        "groups": (
            sorted(sorted(group) for group in result.grouping)
            if result.grouping is not None
            else None
        ),
    }
    if result.infeasibility is not None:
        row["infeasibility"] = result.infeasibility.summary()
    if include_log:
        from repro.service.serialization import log_to_dict

        row["abstracted_log"] = log_to_dict(result.abstracted_log)
    return row


@dataclass
class BatchReport:
    """Outcome of one batch run."""

    rows: list[dict] = field(default_factory=list)
    seconds: float = 0.0
    stats: dict = field(default_factory=dict)
    #: Journal accounting for ``run_dir`` runs: how many rows were
    #: replayed verbatim from the journal vs computed this run, plus
    #: torn/invalid journal lines dropped on load.
    journal: dict = field(default_factory=dict)

    @property
    def jobs_per_second(self) -> float:
        return len(self.rows) / self.seconds if self.seconds > 0 else 0.0

    def solved(self) -> int:
        """Number of jobs whose abstraction problem was feasible."""
        return sum(1 for row in self.rows if row["feasible"])

    def cache_hits(self) -> int:
        """Number of jobs served from a cache instead of computed."""
        return sum(1 for row in self.rows if row["cached"])

    def artifact_builds(self) -> int:
        """Per-log artifact builds across the parent and all workers."""
        parent = self.stats.get("parent", {}).get("artifact_builds", 0)
        workers = self.stats.get("workers_total", {}).get("artifact_builds", 0)
        return parent + workers


def make_executor(
    workers: int = 1,
    cache=None,
    disk_dir=None,
    max_pending: int | None = None,
    broker: str | None = None,
    max_load: int | None = None,
    admission=None,
    degrade: bool = True,
    trace=None,
    trace_rotate_mb: float | None = None,
):
    """Build the executor the CLI flags describe.

    Without a ``broker``: 1 worker means the deterministic
    :class:`SequentialExecutor`, more means a :class:`PoolExecutor`.
    With a broker URL (``fs://``, ``sqlite://``, ``redis://``): a
    :class:`~repro.service.dist.executor.DistributedExecutor` that
    spawns ``workers`` local worker processes against the broker
    (``workers=0`` relies entirely on external ``repro worker``
    processes joined to the same URL), wrapped — unless
    ``degrade=False`` — in a
    :class:`~repro.service.resilience.DegradingExecutor` so repeated
    broker failures trip a circuit breaker and jobs fall back to a
    local tier (pool when ``workers > 1``, else sequential) instead of
    erroring.  ``max_load`` / ``admission`` configure admission
    control and load shedding on the pool and distributed tiers (see
    :mod:`repro.service.resilience`); the sequential tier runs at
    submit time and cannot overload, so they are ignored there.
    ``trace`` (a JSONL path or a
    :class:`~repro.obs.trace.TraceWriter`) threads structured tracing
    through whichever executor is built — see :mod:`repro.obs`;
    ``trace_rotate_mb`` caps the trace file size by rotating it to
    ``<path>.1`` (the policy propagates to worker-process writers on
    the same path).
    """
    if trace_rotate_mb and trace is not None and not hasattr(trace, "emit"):
        import os as _os

        from repro.obs.trace import TraceWriter

        name = "dist-executor" if broker is not None else (
            "sequential" if workers <= 1 else f"pool-parent-{_os.getpid()}"
        )
        trace = TraceWriter(str(trace), worker=name, rotate_mb=trace_rotate_mb)
    if broker is not None:
        from repro.service.dist.executor import DistributedExecutor
        from repro.service.resilience import DegradingExecutor

        primary = DistributedExecutor(
            broker,
            workers=workers,
            cache=cache,
            disk_dir=disk_dir,
            max_pending=max_pending,
            max_load=max_load,
            admission=admission,
            trace=trace,
        )
        if not degrade:
            return primary
        if workers > 1:
            def fallback_factory(workers=workers, disk_dir=disk_dir, trace=trace):
                return PoolExecutor(workers=workers, disk_dir=disk_dir, trace=trace)
        else:
            def fallback_factory(disk_dir=disk_dir, trace=trace):
                from repro.service.cache import ArtifactCache

                return SequentialExecutor(
                    ArtifactCache(disk_dir=disk_dir),
                    tracer=_as_tracer(trace, worker="fallback-sequential"),
                )
        return DegradingExecutor(primary, fallback_factory, tracer=primary.tracer)
    if workers <= 1:
        from repro.service.cache import ArtifactCache

        return SequentialExecutor(
            cache or ArtifactCache(disk_dir=disk_dir),
            tracer=_as_tracer(trace, worker="sequential"),
        )
    return PoolExecutor(
        workers=workers,
        cache=cache,
        disk_dir=disk_dir,
        max_pending=max_pending,
        max_load=max_load,
        admission=admission,
        trace=trace,
    )


def _as_tracer(trace, worker: str):
    """Coerce a ``--trace`` value (path or TraceWriter) to a writer."""
    if trace is None or hasattr(trace, "emit"):
        return trace
    from repro.obs.trace import TraceWriter

    return TraceWriter(str(trace), worker=worker)


def run_batch(
    jobs: list[AbstractionJob],
    executor=None,
    workers: int = 1,
    output: "str | Path | IO | None" = None,
    include_log: bool = False,
    disk_dir=None,
    broker: str | None = None,
    max_load: int | None = None,
    trace=None,
    trace_rotate_mb: float | None = None,
    run_dir: "str | Path | None" = None,
    resume: bool = False,
) -> BatchReport:
    """Run a list of jobs and collect (optionally write) result rows.

    Rows are emitted in manifest order regardless of completion order,
    so batch output is reproducible — whichever executor ran them
    (sequential, pool, or a broker-backed distributed fleet when
    ``broker`` is given).  The executor is shut down only when it was
    created here.

    Typed resilience outcomes — a job shed by admission control
    (:class:`~repro.service.resilience.Overloaded`) or failed by its
    deadline (:class:`~repro.service.resilience.DeadlineExceeded`) —
    become error rows (``"error"`` key, ``"feasible": false``) instead
    of aborting the whole batch; any other failure still propagates.

    ``run_dir`` makes the run crash-resumable: every completed row is
    appended line-atomically to ``<run_dir>/journal.jsonl`` (see
    :class:`~repro.service.journal.RunJournal`) the moment it finishes.
    With ``resume=True`` journaled rows are emitted *verbatim* — zero
    recomputation, not even a cache lookup — and only the remaining
    jobs are submitted.  Error rows are deliberately not journaled, so
    shed or deadline-failed jobs get a fresh attempt on resume.  The
    ``output`` file is staged to ``<output>.partial`` and atomically
    finalized, so a kill mid-write never leaves a half-written results
    file in place.
    """
    owns_executor = executor is None
    if executor is None:
        executor = make_executor(
            workers=workers, disk_dir=disk_dir, broker=broker,
            max_load=max_load, trace=trace, trace_rotate_mb=trace_rotate_mb,
        )
    journal = None
    replayed: dict = {}
    if run_dir is not None:
        from repro.service.journal import RunJournal, manifest_digest

        journal = RunJournal(Path(run_dir))
        keys = [(job.job_id, job.fingerprint().full) for job in jobs]
        journal.check_manifest(manifest_digest(keys), resume=resume)
        if resume:
            replayed = journal.load()
    else:
        keys = [(job.job_id, job.fingerprint().full) for job in jobs]
    report = BatchReport()
    started = time.perf_counter()
    computed = 0
    try:
        submitted = [
            None if key in replayed else executor.submit(job)
            for key, job in zip(keys, jobs)
        ]
        for key, job, handle in zip(keys, jobs, submitted):
            if handle is None:
                report.rows.append(replayed[key])
                continue
            try:
                result = handle.result()
            except (DeadlineExceeded, Overloaded) as exc:
                report.rows.append({
                    "id": job.job_id,
                    "log": job.log.describe(),
                    "fingerprint": key[1],
                    "cached": False,
                    "seconds": 0.0,
                    "feasible": False,
                    "error": f"{type(exc).__name__}: {exc}",
                })
                continue
            cached = bool(handle.cached)
            # Per-row seconds: the job's own pipeline time — wall time
            # from submit would be order-dependent (it includes waiting
            # on every earlier row in this ordered collection loop).
            seconds = 0.0 if cached else result.timings.total
            row = job_row(job, result, cached, seconds, include_log)
            if journal is not None:
                journal.append(key[0], key[1], row)
            computed += 1
            report.rows.append(row)
        report.seconds = time.perf_counter() - started
        report.stats = executor.stats()
    finally:
        if journal is not None:
            journal.close()
        if owns_executor:
            executor.shutdown()
    if journal is not None:
        report.journal = {
            "replayed": len(replayed),
            "computed": computed,
            "skipped_lines": journal.skipped,
        }
    if output is not None:
        _write_rows(report.rows, output)
    return report


def _write_rows(rows: list[dict], target: "str | Path | IO") -> None:
    """Write result rows; path targets are staged and atomically renamed."""
    if hasattr(target, "write"):
        for row in rows:
            target.write(json.dumps(row) + "\n")
        return
    import os

    target = Path(target)
    partial = target.with_name(target.name + ".partial")
    with open(partial, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    os.replace(partial, target)


# -- serve loop -------------------------------------------------------------


def _serve_one(line: str, executor) -> tuple[dict, bool]:
    """Handle one request line; return ``(response, keep_going)``."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}, True
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}, True
    op = request.get("op", "run")
    if op == "shutdown":
        return {"ok": True, "bye": True}, False
    if op == "ping":
        return {"ok": True, "pong": True}, True
    if op == "stats":
        return {"ok": True, "stats": executor.stats()}, True
    if op != "run":
        return {"ok": False, "error": f"unknown op {op!r}"}, True
    payload = {key: value for key, value in request.items() if key != "op"}
    try:
        job = AbstractionJob.from_dict(payload)
        started = time.perf_counter()
        handle = executor.submit(job)
        result = handle.result()
        seconds = time.perf_counter() - started
    except Exception as exc:  # noqa: BLE001 - reported in-band, loop survives
        return {"ok": False, "error": str(exc)}, True
    row = job_row(job, result, bool(handle.cached), seconds)
    return {"ok": True, **row}, True


def _notify(observer, response: dict) -> None:
    """Best-effort per-response callback (metrics); never raises."""
    if observer is None:
        return
    try:
        observer(response)
    except Exception:
        pass


def serve_loop(input_stream: IO, output_stream: IO, executor,
               observer=None) -> int:
    """Serve line-delimited JSON requests until EOF or ``shutdown``.

    Requests: a job row (optionally with ``"op": "run"``), or control
    operations ``{"op": "stats"}``, ``{"op": "ping"}``,
    ``{"op": "shutdown"}``.  One JSON response per line; errors are
    reported in-band (``{"ok": false, ...}``) and never kill the loop.
    Returns the number of requests served.

    ``observer``, when given, is called with each response dict after
    it is written — the hook ``repro serve --metrics-port`` uses to
    feed its per-request duration histogram and outcome counters.
    Observer exceptions are swallowed.
    """
    served = 0
    for line in input_stream:
        if not line.strip():
            continue
        response, keep_going = _serve_one(line, executor)
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
        served += 1
        _notify(observer, response)
        if not keep_going:
            break
    return served


def serve_socket(
    host: str,
    port: int,
    executor,
    max_requests: int | None = None,
    conn_timeout: float | None = 30.0,
    on_bound=None,
    observer=None,
) -> int:
    """Serve the same protocol over TCP, one client at a time.

    The server keeps accepting connections (clients that connect and
    send nothing are harmless) until a client sends
    ``{"op": "shutdown"}`` or ``max_requests`` requests were served.
    Returns the number of requests served.  Intended for smoke tests
    and single-tenant deployments; heavy multi-tenant traffic should
    front several ``repro serve`` processes with a real load balancer
    (see ROADMAP).

    ``conn_timeout`` bounds how long one connection may sit idle
    between request lines (seconds; ``None`` disables): because the
    loop serves one client at a time, a hung client that connects and
    then goes silent would otherwise block the accept loop forever.  A
    timed-out connection is dropped and the server moves to the next
    ``accept``; requests already served on it are kept.

    ``port`` 0 binds an ephemeral port; ``on_bound`` (when given) is
    called with the server's actual ``(host, port)`` once the socket
    is listening, so callers can connect without racing the bind.
    ``observer`` is the same per-response metrics hook as on
    :func:`serve_loop`.
    """
    import socket

    served = 0
    stopped = False
    with socket.create_server((host, port)) as server:
        if on_bound is not None:
            on_bound(server.getsockname()[:2])
        while not stopped and (max_requests is None or served < max_requests):
            connection, _address = server.accept()
            with connection:
                connection.settimeout(conn_timeout)
                reader = connection.makefile("r", encoding="utf-8")
                writer = connection.makefile("w", encoding="utf-8")
                try:
                    for line in reader:
                        if not line.strip():
                            continue
                        response, keep_going = _serve_one(line, executor)
                        writer.write(json.dumps(response) + "\n")
                        writer.flush()
                        served += 1
                        _notify(observer, response)
                        if not keep_going:
                            stopped = True
                            break
                        if max_requests is not None and served >= max_requests:
                            break
                except (TimeoutError, socket.timeout, OSError):
                    # Idle or broken client: drop it, keep accepting.
                    continue
    return served
