"""``repro.service`` — the parallel, cache-backed abstraction runtime.

The batch pipeline (:class:`~repro.core.gecco.Gecco`) solves one
problem per call; this package turns it into a *servable* runtime that
amortizes work across requests:

* :mod:`~repro.service.jobs` — the job model: content-addressed
  :class:`AbstractionJob` (log reference × constraints × config) with
  canonical fingerprints;
* :mod:`~repro.service.cache` — the two-tier :class:`ArtifactCache`:
  per-log artifacts shared across constraint sets, finished results
  served without recomputation, optional on-disk persistence;
* :mod:`~repro.service.executor` — :class:`PoolExecutor`
  (multiprocessing, priorities, backpressure, per-worker artifact
  reuse) and the deterministic :class:`SequentialExecutor`;
* :mod:`~repro.service.dist` — :class:`DistributedExecutor`: the same
  executor protocol over a broker queue (filesystem / SQLite /
  optional Redis), scaling the fleet across processes and hosts with
  leases, heartbeats, and dead-worker requeue;
* :mod:`~repro.service.batch` — ``repro batch`` / ``repro serve``
  entry-point machinery (JSONL manifests, line-JSON serve loop);
* :mod:`~repro.service.resilience` — deadlines, admission control,
  retry policies, and circuit-breaker tier degradation
  (:class:`Deadline`, :class:`AdmissionController`,
  :class:`RetryPolicy`, :class:`DegradingExecutor`, and the typed
  :class:`DeadlineExceeded` / :class:`Overloaded` failures);
* :mod:`~repro.service.serialization` — lossless pickle/JSON
  round-trips for every object that crosses a process boundary.

Observability for the whole stack — structured JSONL tracing
(``--trace``), a Prometheus ``/metrics`` endpoint, and the ``repro
doctor`` forensics analyzer — lives in :mod:`repro.obs` and threads
through here via ``make_executor(..., trace=...)``.

Quickstart::

    from repro.service import AbstractionJob, LogRef, PoolExecutor
    from repro.constraints import ConstraintSet, MaxGroupSize

    job = AbstractionJob(
        log=LogRef.builtin("loan:80"),
        constraints=ConstraintSet([MaxGroupSize(5)]),
    )
    with PoolExecutor(workers=4) as pool:
        handle = pool.submit(job)
        result = handle.result()      # == Gecco(...).abstract(log)
"""

from repro.service.batch import (
    BatchReport,
    load_manifest,
    make_executor,
    run_batch,
    serve_loop,
    serve_socket,
)
from repro.service.cache import ArtifactCache, CacheStats, TierStats
from repro.service.dist import DistributedExecutor, connect_broker, worker_loop
from repro.service.fsck import fsck_broker, fsck_report, fsck_store
from repro.service.journal import IntegrityError, RunJournal
from repro.service.executor import (
    CallHandle,
    JobHandle,
    PoolExecutor,
    SequentialExecutor,
    run_job,
)
from repro.service.jobs import (
    BUILTIN_LOGS,
    AbstractionJob,
    JobFingerprint,
    LogRef,
)
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradingExecutor,
    Overloaded,
    RetryPolicy,
    TokenBucket,
)
from repro.service.serialization import (
    grouping_from_dict,
    grouping_to_dict,
    log_from_dict,
    log_to_dict,
    result_from_dict,
    result_signature,
    result_to_dict,
)
from repro.service.supervisor import FleetSupervisor, run_fleet

__all__ = [
    "AbstractionJob",
    "AdmissionController",
    "ArtifactCache",
    "BatchReport",
    "BUILTIN_LOGS",
    "CacheStats",
    "CallHandle",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "DegradingExecutor",
    "DistributedExecutor",
    "FleetSupervisor",
    "IntegrityError",
    "connect_broker",
    "JobFingerprint",
    "JobHandle",
    "LogRef",
    "Overloaded",
    "PoolExecutor",
    "RetryPolicy",
    "RunJournal",
    "SequentialExecutor",
    "TierStats",
    "TokenBucket",
    "fsck_broker",
    "fsck_report",
    "fsck_store",
    "grouping_from_dict",
    "grouping_to_dict",
    "load_manifest",
    "log_from_dict",
    "log_to_dict",
    "make_executor",
    "result_from_dict",
    "result_signature",
    "result_to_dict",
    "run_batch",
    "run_fleet",
    "run_job",
    "serve_loop",
    "serve_socket",
    "worker_loop",
]
