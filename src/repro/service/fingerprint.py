"""Content-addressed fingerprints: canonical JSON and digests.

Everything the service runtime caches is keyed by a fingerprint derived
from *content*, never from object identity: two jobs built
independently — in different processes, from a manifest or from code —
must collide exactly when they describe the same computation.  That
requires a canonical rendering: dictionaries are key-sorted, sets are
ordered, datetimes are ISO-rendered, and the JSON is whitespace-free,
so the bytes (and therefore the SHA-256) are reproducible across
interpreter runs regardless of ``PYTHONHASHSEED`` or insertion order.
"""

from __future__ import annotations

import hashlib
import json
from datetime import datetime
from typing import Any

from repro.eventlog.events import EventLog

#: Length of the hex digests used throughout the service layer.
DIGEST_LENGTH = 64


def canonical(value: Any) -> Any:
    """Normalize ``value`` into a deterministic JSON-able structure.

    * mappings become key-sorted dicts (keys coerced to ``str``),
    * sequences become lists, sets become sorted lists,
    * datetimes become ``{"$dt": <isoformat>}`` tags,
    * scalars pass through unchanged,
    * anything else falls back to a ``{"$repr": repr(value)}`` tag —
      stable enough for hashing, though not reconstructible.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime):
        return {"$dt": value.isoformat()}
    if isinstance(value, dict):
        return {str(key): canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (set, frozenset)):
        return sorted((canonical(item) for item in value), key=_sort_key)
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    return {"$repr": repr(value)}


def _sort_key(item: Any) -> str:
    return json.dumps(item, sort_keys=True, separators=(",", ":"))


def canonical_json(value: Any) -> str:
    """Whitespace-free, key-sorted JSON of :func:`canonical` output."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def digest_text(text: str) -> str:
    """SHA-256 hex digest of a text (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def combine_digests(*parts: str) -> str:
    """Fold several component digests into one (order-sensitive)."""
    return digest_text(":".join(parts))


def log_digest(log: EventLog) -> str:
    """Content digest of an event log.

    Covers log/trace/event attributes and the event-class sequences, so
    two logs with equal content — however they were loaded or built —
    share a digest, while any attribute or ordering difference changes
    it.

    The rendered shape deliberately mirrors
    :func:`repro.service.serialization.log_to_dict` (keep the two in
    sync when the event model grows a field) but encodes values with
    :func:`canonical` rather than the strict typed encoder: hashing
    must accept *any* attribute value (``$repr`` fallback), while the
    round-trip encoder must reject what it cannot reconstruct.
    """
    rendering = {
        "attributes": log.attributes,
        "traces": [
            {
                "attributes": trace.attributes,
                "events": [
                    [event.event_class, event.attributes] for event in trace
                ],
            }
            for trace in log
        ],
    }
    return digest_text(canonical_json(rendering))
