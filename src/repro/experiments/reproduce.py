"""One-call reproduction driver: regenerate every evaluation artifact.

``reproduce_all`` runs the full evaluation grid — Table III statistics,
Tables V/VI/VII, and the §VI-D case study — at a configurable scale and
writes every artifact (rendered tables, DOT figures, and the raw
problem-level results as JSON/CSV) into an output directory.  The
benchmark harness uses the same building blocks; this driver exists so
users can regenerate the evaluation with one command::

    gecco reproduce --output results/ --max-traces 50 --max-classes 10

Scale presets trade fidelity for wall-clock time; the defaults match
what EXPERIMENTS.md reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.constraints import ConstraintSet, MaxDistinctClassAttribute, MaxGroupSize
from repro.core.gecco import Gecco, GeccoConfig
from repro.datasets.collection import build_collection
from repro.datasets.loan_process import loan_application_log
from repro.eventlog.dfg import compute_dfg
from repro.experiments.configs import ALL_SET_NAMES, GECCO_SET_NAMES
from repro.experiments.figures import dfg_to_dot
from repro.experiments.persistence import export_csv, save_report
from repro.experiments.runner import ExperimentReport, run_experiment
from repro.experiments.tables import table3, table5, table6, table7


@dataclass
class ReproductionSummary:
    """What :func:`reproduce_all` produced."""

    output_dir: Path
    artifacts: list[str] = field(default_factory=list)
    seconds: float = 0.0
    problems_run: int = 0

    def describe(self) -> str:
        """Multi-line summary listing every produced artifact."""
        lines = [
            f"reproduction artifacts in {self.output_dir} "
            f"({self.problems_run} abstraction problems, {self.seconds:.0f}s):"
        ]
        lines.extend(f"  {name}" for name in self.artifacts)
        return "\n".join(lines)


def reproduce_all(
    output_dir: str | Path,
    max_traces: int = 50,
    max_classes: int = 10,
    candidate_timeout: float = 20.0,
    case_study_traces: int = 300,
    include_exhaustive: bool = True,
) -> ReproductionSummary:
    """Regenerate all evaluation artifacts into ``output_dir``."""
    started = time.perf_counter()
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    summary = ReproductionSummary(output_dir=output)

    def emit(name: str, text: str) -> None:
        (output / name).write_text(text + "\n", encoding="utf-8")
        summary.artifacts.append(name)

    # Table III.
    logs = build_collection(max_traces=max_traces, max_classes=max_classes)
    emit("table3.txt", table3(logs))

    # Tables V/VI/VII share one result pool.
    approaches = ["DFGinf", "DFGk"] + (["Exh"] if include_exhaustive else [])
    report = run_experiment(
        logs, ALL_SET_NAMES, approaches, candidate_timeout=candidate_timeout
    )
    baseline_report = ExperimentReport(rows=list(report.rows))
    baseline_report.rows.extend(
        run_experiment(
            logs, ["BL1", "BL2", "BL3"], ["BLQ"], candidate_timeout=candidate_timeout
        ).rows
    )
    baseline_report.rows.extend(
        run_experiment(logs, ["BL4"], ["BLP"], candidate_timeout=candidate_timeout).rows
    )
    baseline_report.rows.extend(
        run_experiment(
            logs, ["A", "M", "N"], ["BLG"], candidate_timeout=candidate_timeout
        ).rows
    )
    summary.problems_run = len(baseline_report.rows)

    table5_approach = "Exh" if include_exhaustive else "DFGinf"
    _, rendered5 = table5(baseline_report, approach=table5_approach)
    emit("table5.txt", rendered5)
    if include_exhaustive:
        _, rendered6 = table6(baseline_report)
        emit("table6.txt", rendered6)
    _, rendered7 = table7(baseline_report)
    emit("table7.txt", rendered7)
    save_report(baseline_report, output / "problems.json")
    summary.artifacts.append("problems.json")
    export_csv(baseline_report, output / "problems.csv")
    summary.artifacts.append("problems.csv")

    # Case study (Figs. 1 and 8).
    loan = loan_application_log(num_traces=case_study_traces)
    emit("fig1_loan_8020_dfg.dot", dfg_to_dot(compute_dfg(loan), 0.8, title="Fig1"))
    constraints = ConstraintSet(
        [MaxGroupSize(8), MaxDistinctClassAttribute("origin", 1)]
    )
    config = GeccoConfig(strategy="dfg", beam_width="auto", label_attribute="origin")
    result = Gecco(constraints, config).abstract(loan)
    if result.feasible:
        emit(
            "fig8_abstracted_8020_dfg.dot",
            dfg_to_dot(compute_dfg(result.abstracted_log), 0.8, title="Fig8"),
        )
        grouping_lines = [
            f"{result.grouping.label_of(group)}: {{{', '.join(sorted(group))}}}"
            for group in sorted(result.grouping, key=lambda g: sorted(g)[0])
        ]
        emit("fig8_grouping.txt", "\n".join(grouping_lines))

    summary.seconds = time.perf_counter() - started
    return summary
