"""Experiment runner: abstraction problems → measured result rows.

One *abstraction problem* is a (log, constraint set) pair (the paper
builds 121 of them from 13 logs × 10 sets).  The runner solves problems
with a GECCO configuration or a baseline and records the paper's
measures: feasibility (Solved), size reduction (S.red), complexity
reduction (C.red), silhouette coefficient (Sil.), and runtime.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.baselines.graph_query import abstract_with_graph_query
from repro.baselines.greedy import abstract_with_greedy
from repro.baselines.partitioning import abstract_with_partitioning
from repro.core.gecco import AbstractionResult, Gecco, GeccoConfig
from repro.eventlog.events import EventLog
from repro.exceptions import ReproError
from repro.experiments.configs import applicable, constraint_set_for_log
from repro.measures.reduction import complexity_reduction, size_reduction
from repro.measures.silhouette import silhouette_coefficient

#: Approach identifiers accepted by :func:`solve_problem`.
APPROACHES = ("Exh", "DFGinf", "DFGk", "BLQ", "BLP", "BLG")


@dataclass
class ProblemResult:
    """Measures of one solved (or unsolved) abstraction problem."""

    log_name: str
    constraint_set: str
    approach: str
    solved: bool
    size_red: float | None = None
    complexity_red: float | None = None
    silhouette: float | None = None
    seconds: float = 0.0
    num_groups: int | None = None
    num_candidates: int | None = None
    error: str = ""


@dataclass
class ExperimentReport:
    """All problem results of one experiment run."""

    rows: list[ProblemResult] = field(default_factory=list)

    def filtered(self, **criteria) -> list[ProblemResult]:
        """Rows matching all keyword criteria (attribute equality)."""
        selected = self.rows
        for key, value in criteria.items():
            selected = [row for row in selected if getattr(row, key) == value]
        return selected

    def aggregate(
        self, rows: list[ProblemResult] | None = None
    ) -> dict[str, float]:
        """Paper-style aggregation: Solved over all rows, rest over solved."""
        rows = self.rows if rows is None else rows
        if not rows:
            return {"Solved": 0.0, "S. red.": 0.0, "C. red.": 0.0, "Sil.": 0.0, "T(s)": 0.0}
        solved = [row for row in rows if row.solved]

        def mean(values: list[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        return {
            "Solved": len(solved) / len(rows),
            "S. red.": mean([row.size_red for row in solved if row.size_red is not None]),
            "C. red.": mean(
                [row.complexity_red for row in solved if row.complexity_red is not None]
            ),
            "Sil.": mean([row.silhouette for row in solved if row.silhouette is not None]),
            "T(s)": mean([row.seconds for row in solved]),
        }


def _gecco_config(approach: str, **overrides) -> GeccoConfig:
    if approach == "Exh":
        return GeccoConfig.exhaustive(**overrides)
    if approach == "DFGinf":
        return GeccoConfig.dfg_unlimited(**overrides)
    if approach == "DFGk":
        return GeccoConfig.dfg_adaptive(**overrides)
    raise ReproError(f"not a GECCO approach: {approach!r}")


def _row_from_result(
    log: EventLog,
    constraint_set_name: str,
    approach: str,
    log_name: str,
    result: AbstractionResult | None,
    seconds: float,
    error: str = "",
) -> ProblemResult:
    """Turn one pipeline outcome into a measured result row."""
    if result is None or not result.feasible or result.grouping is None:
        return ProblemResult(
            log_name=log_name,
            constraint_set=constraint_set_name,
            approach=approach,
            solved=False,
            seconds=seconds,
            num_candidates=None if result is None else result.num_candidates,
            error=error,
        )

    grouping = result.grouping
    return ProblemResult(
        log_name=log_name,
        constraint_set=constraint_set_name,
        approach=approach,
        solved=True,
        size_red=size_reduction(len(grouping), len(log.classes)),
        complexity_red=complexity_reduction(log, result.abstracted_log),
        silhouette=silhouette_coefficient(log, grouping),
        seconds=seconds,
        num_groups=len(grouping),
        num_candidates=result.num_candidates,
    )


def solve_problem(
    log: EventLog,
    constraint_set_name: str,
    approach: str,
    log_name: str = "log",
    candidate_timeout: float | None = 60.0,
    seed: int = 0,
    config_overrides: dict | None = None,
) -> ProblemResult:
    """Solve one abstraction problem and measure the outcome.

    ``config_overrides`` are extra :class:`GeccoConfig` fields applied
    to the GECCO approaches (ignored by baselines) — e.g.
    ``{"selection": "monolithic"}`` or ``{"solver": "auto"}`` to sweep
    Step-2 configurations over the same problem grid.
    """
    if approach not in APPROACHES:
        raise ReproError(f"unknown approach {approach!r}; use one of {APPROACHES}")
    constraints = constraint_set_for_log(constraint_set_name, log)
    started = time.perf_counter()
    result: AbstractionResult | None = None
    error = ""
    try:
        if approach in ("Exh", "DFGinf", "DFGk"):
            config = _gecco_config(
                approach,
                candidate_timeout=candidate_timeout,
                **(config_overrides or {}),
            )
            result = Gecco(constraints, config).abstract(log)
        elif approach == "BLQ":
            result = abstract_with_graph_query(log, constraints)
        elif approach == "BLP":
            result = abstract_with_partitioning(
                log, max(1, len(log.classes) // 2), seed=seed
            )
        elif approach == "BLG":
            result = abstract_with_greedy(log, constraints)
    except ReproError as exc:
        error = str(exc)
    seconds = time.perf_counter() - started
    return _row_from_result(
        log, constraint_set_name, approach, log_name, result, seconds, error
    )


def run_experiment(
    logs: dict[str, EventLog],
    constraint_set_names: Iterable[str],
    approaches: Iterable[str],
    candidate_timeout: float | None = 60.0,
    executor=None,
    config_overrides: dict | None = None,
) -> ExperimentReport:
    """Cross product of logs × constraint sets × approaches.

    Inapplicable combinations (per :func:`repro.experiments.configs.applicable`,
    e.g. BL3 on logs without class-level attributes) are skipped, as in
    the paper.

    ``executor`` optionally routes the GECCO cells of the grid through a
    :mod:`repro.service` executor (e.g. a
    :class:`~repro.service.executor.PoolExecutor`): every (log ×
    constraint set × configuration) cell becomes an
    :class:`~repro.service.jobs.AbstractionJob`, so the grid fans out
    across cores and per-log artifacts are shared between cells instead
    of being recomputed per cell.  Baseline approaches always run
    in-process.  Row order matches the sequential path; ``seconds`` of
    executor rows is the pipeline time measured inside the job
    (:attr:`~repro.core.gecco.StepTimings.total`), not parent wall time.

    ``config_overrides`` apply extra :class:`GeccoConfig` fields to all
    GECCO cells of the grid (see :func:`solve_problem`).
    """
    report = ExperimentReport()
    if executor is None:
        for approach in approaches:
            for set_name in constraint_set_names:
                for log_name, log in logs.items():
                    if not applicable(set_name, log):
                        continue
                    report.rows.append(
                        solve_problem(
                            log,
                            set_name,
                            approach,
                            log_name=log_name,
                            candidate_timeout=candidate_timeout,
                            config_overrides=config_overrides,
                        )
                    )
        return report

    from repro.service.jobs import AbstractionJob, LogRef

    refs = {name: LogRef.inline(log, name=name) for name, log in logs.items()}
    cells = []
    for approach in approaches:
        for set_name in constraint_set_names:
            for log_name, log in logs.items():
                if not applicable(set_name, log):
                    continue
                handle = None
                if approach in ("Exh", "DFGinf", "DFGk"):
                    job = AbstractionJob(
                        log=refs[log_name],
                        constraints=constraint_set_for_log(set_name, log),
                        config=_gecco_config(
                            approach,
                            candidate_timeout=candidate_timeout,
                            **(config_overrides or {}),
                        ),
                        job_id=f"{approach}/{set_name}/{log_name}",
                    )
                    handle = executor.submit(job)
                cells.append((approach, set_name, log_name, handle))
    for approach, set_name, log_name, handle in cells:
        log = logs[log_name]
        if handle is None:
            report.rows.append(
                solve_problem(
                    log,
                    set_name,
                    approach,
                    log_name=log_name,
                    candidate_timeout=candidate_timeout,
                    config_overrides=config_overrides,
                )
            )
            continue
        error = ""
        result: AbstractionResult | None = None
        try:
            result = handle.result()
        except ReproError as exc:
            error = str(exc)
        seconds = result.timings.total if result is not None else 0.0
        report.rows.append(
            _row_from_result(
                log, set_name, approach, log_name, result, seconds, error
            )
        )
    return report
