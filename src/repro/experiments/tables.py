"""Rendering of the paper's result tables from experiment reports.

Each ``table_*`` function aggregates an :class:`ExperimentReport` the
way the corresponding paper table does and returns both the raw rows
(for programmatic checks) and an aligned ASCII rendering (what the
benchmark harness prints next to the paper's numbers).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.datasets.collection import TABLE_III_SPECS
from repro.eventlog.events import EventLog
from repro.eventlog.statistics import describe
from repro.experiments.configs import BASELINE_SET_NAMES, GECCO_SET_NAMES
from repro.experiments.runner import ExperimentReport


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Align ``rows`` under ``headers`` as monospace text."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def table3(logs: Mapping[str, EventLog]) -> str:
    """Table III: properties of the (synthetic) log collection."""
    reference_of = {spec.name: spec.reference for spec in TABLE_III_SPECS}
    rows = []
    for name, log in logs.items():
        stats = describe(log)
        rows.append(
            [
                reference_of.get(name, "-"),
                name,
                stats.num_classes,
                stats.num_traces,
                stats.num_variants,
                stats.num_variant_events,
                round(stats.avg_trace_length, 2),
            ]
        )
    return format_table(
        ["Ref", "Log", "|CL|", "Traces", "Variants", "|E|", "Avg |s|"],
        rows,
        title="Table III: properties of the log collection (synthetic)",
    )


def table5(report: ExperimentReport, approach: str = "Exh") -> tuple[list[dict], str]:
    """Table V: results per constraint set for one configuration."""
    rows = []
    for set_name in GECCO_SET_NAMES + BASELINE_SET_NAMES:
        subset = report.filtered(constraint_set=set_name, approach=approach)
        if not subset:
            continue
        aggregate = report.aggregate(subset)
        rows.append({"Const.": set_name, **aggregate})
    rendered = format_table(
        ["Const.", "Solved", "S. red.", "C. red.", "Sil.", "T(s)"],
        [
            [row["Const."], row["Solved"], row["S. red."], row["C. red."], row["Sil."], row["T(s)"]]
            for row in rows
        ],
        title=f"Table V: results for {approach}, averaged over solved problems",
    )
    return rows, rendered


def table6(report: ExperimentReport) -> tuple[list[dict], str]:
    """Table VI: results per GECCO configuration."""
    rows = []
    for approach, label in (("Exh", "Exh"), ("DFGinf", "DFG inf"), ("DFGk", "DFG k")):
        subset = report.filtered(approach=approach)
        if not subset:
            continue
        aggregate = report.aggregate(subset)
        rows.append({"Conf.": label, **aggregate})
    rendered = format_table(
        ["Conf.", "Solved", "S. red.", "C. red.", "Sil.", "T(s)"],
        [
            [row["Conf."], row["Solved"], row["S. red."], row["C. red."], row["Sil."], row["T(s)"]]
            for row in rows
        ],
        title="Table VI: results per configuration over solved problems",
    )
    return rows, rendered


def table7(report: ExperimentReport) -> tuple[list[dict], str]:
    """Table VII: baseline comparison over the applicable constraint sets."""
    blocks = [
        ("BL[1-3]", ["BL1", "BL2", "BL3"], [("DFGinf", "DFG inf"), ("BLQ", "BL Q")]),
        ("BL4", ["BL4"], [("Exh", "Exh"), ("BLP", "BL P")]),
        ("A,M,N", ["A", "M", "N"], [("DFGk", "DFG k"), ("BLG", "BL G")]),
    ]
    rows = []
    for block_label, set_names, entries in blocks:
        for approach, label in entries:
            subset = [
                row
                for row in report.rows
                if row.approach == approach and row.constraint_set in set_names
            ]
            if not subset:
                continue
            aggregate = report.aggregate(subset)
            rows.append({"Const.": block_label, "Conf.": label, **aggregate})
    rendered = format_table(
        ["Const.", "Conf.", "Solved", "S. red.", "C. red.", "Sil.", "T(s)"],
        [
            [
                row["Const."], row["Conf."], row["Solved"], row["S. red."],
                row["C. red."], row["Sil."], row["T(s)"],
            ]
            for row in rows
        ],
        title="Table VII: baseline comparison over applicable constraint sets",
    )
    return rows, rendered
