"""Persistence of experiment reports (JSON and CSV).

Long experiment grids should survive interpreter restarts and be
consumable by external tooling (spreadsheets, notebooks).  Reports
round-trip losslessly through JSON; CSV export flattens the same rows
for spreadsheet use.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import IO

from repro.exceptions import ReproError
from repro.experiments.runner import ExperimentReport, ProblemResult


def write_json_atomic(data: dict, path: str | os.PathLike) -> None:
    """Write JSON via a same-directory temp file plus atomic rename.

    Concurrent writers (the service runtime's disk cache is shared by
    several worker processes) each land a complete file; readers never
    observe a partially written one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def read_json(path: str | os.PathLike) -> dict:
    """Read a JSON file written by :func:`write_json_atomic`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)

_FIELDS = [
    "log_name",
    "constraint_set",
    "approach",
    "solved",
    "size_red",
    "complexity_red",
    "silhouette",
    "seconds",
    "num_groups",
    "num_candidates",
    "error",
]


def report_to_dict(report: ExperimentReport) -> dict:
    """Serialize a report to plain data."""
    return {
        "rows": [
            {field: getattr(row, field) for field in _FIELDS}
            for row in report.rows
        ]
    }


def report_from_dict(data: dict) -> ExperimentReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    if "rows" not in data:
        raise ReproError("experiment report data lacks 'rows'")
    rows = []
    for entry in data["rows"]:
        unknown = set(entry) - set(_FIELDS)
        if unknown:
            raise ReproError(f"unknown report fields: {sorted(unknown)}")
        rows.append(ProblemResult(**entry))
    return ExperimentReport(rows=rows)


def save_report(report: ExperimentReport, target: str | os.PathLike | IO) -> None:
    """Write a report as JSON."""
    data = report_to_dict(report)
    if hasattr(target, "write"):
        json.dump(data, target, indent=2)
        return
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)


def load_report(source: str | os.PathLike | IO) -> ExperimentReport:
    """Read a report written by :func:`save_report`."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        with open(source, encoding="utf-8") as handle:
            data = json.load(handle)
    return report_from_dict(data)


def export_csv(report: ExperimentReport, target: str | os.PathLike | IO) -> None:
    """Write the report rows as CSV (one row per abstraction problem)."""
    if hasattr(target, "write"):
        handle = target
        close = False
    else:
        handle = open(target, "w", newline="", encoding="utf-8")
        close = True
    try:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for row in report.rows:
            writer.writerow({field: getattr(row, field) for field in _FIELDS})
    finally:
        if close:
            handle.close()
