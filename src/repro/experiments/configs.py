"""The evaluation's constraint sets (paper Table IV).

Every set additionally includes the class-based constraint ``|g| <= 8``
used in the paper to bound problem size.  The instance-based sets use
the logs' ``duration`` attribute (seconds) and ``org:role``; BL3 uses
the class-level ``origin`` attribute.  BL2's cannot-link pair and BL4's
group count depend on the log and are bound per log by
:func:`constraint_set_for_log`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.constraints import (
    CannotLink,
    ConstraintSet,
    ExactGroups,
    MaxDistinctClassAttribute,
    MaxDistinctInstanceAttribute,
    MaxGroups,
    MaxGroupSize,
    MaxInstanceAggregate,
    MinInstanceAggregate,
)
from repro.eventlog.events import ROLE_KEY, EventLog

#: Names of the GECCO constraint sets evaluated in Table V.
GECCO_SET_NAMES = ("A", "M", "N", "Gr", "C1", "C2")

#: Names of the baseline constraint sets.
BASELINE_SET_NAMES = ("BL1", "BL2", "BL3", "BL4")

ALL_SET_NAMES = GECCO_SET_NAMES + BASELINE_SET_NAMES

#: The base constraint included in every set.
BASE_MAX_GROUP_SIZE = 8


def _base() -> list:
    return [MaxGroupSize(BASE_MAX_GROUP_SIZE)]


def _two_frequent_classes(log: EventLog) -> tuple[str, str]:
    """The two most frequent classes (BL2's cannot-link pair)."""
    ranked = sorted(log.class_counts.items(), key=lambda item: (-item[1], item[0]))
    if len(ranked) < 2:
        raise ValueError("log needs at least two classes for BL2")
    return ranked[0][0], ranked[1][0]


def constraint_set_for_log(name: str, log: EventLog) -> ConstraintSet:
    """Instantiate Table IV set ``name`` for a concrete log.

    Set definitions (constraint categories as in the paper):

    * ``A``   (R_I): ``|g.role| <= 3`` per instance (anti-monotonic);
    * ``M``   (R_I): ``sum(g.duration) >= 101`` per instance (monotonic);
    * ``N``   (R_I): ``avg(g.duration) <= 5 * 10^5`` per instance
      (non-monotonic);
    * ``Gr``  (R_G): ``|G| <= 3``;
    * ``C1``  = A ∧ N ∧ Gr;  ``C2`` = A ∧ M ∧ N ∧ Gr;
    * ``BL1`` (R_C): ``|g| <= 5``;
    * ``BL2`` (R_C): BL1 plus a cannot-link between the log's two most
      frequent classes;
    * ``BL3`` (R_C): ``|g.D| = 1`` over the class-level ``origin``
      attribute;
    * ``BL4`` (R_G): ``|G| = |C_L| / 2``.
    """
    constraints: list = _base()
    if name == "A":
        constraints.append(MaxDistinctInstanceAttribute(ROLE_KEY, 3))
    elif name == "M":
        constraints.append(MinInstanceAggregate("duration", "sum", 101.0))
    elif name == "N":
        constraints.append(MaxInstanceAggregate("duration", "avg", 5e5))
    elif name == "Gr":
        constraints.append(MaxGroups(3))
    elif name == "C1":
        constraints.append(MaxDistinctInstanceAttribute(ROLE_KEY, 3))
        constraints.append(MaxInstanceAggregate("duration", "avg", 5e5))
        constraints.append(MaxGroups(3))
    elif name == "C2":
        constraints.append(MaxDistinctInstanceAttribute(ROLE_KEY, 3))
        constraints.append(MinInstanceAggregate("duration", "sum", 101.0))
        constraints.append(MaxInstanceAggregate("duration", "avg", 5e5))
        constraints.append(MaxGroups(3))
    elif name == "BL1":
        constraints.append(MaxGroupSize(5))
    elif name == "BL2":
        constraints.append(MaxGroupSize(5))
        constraints.append(CannotLink(*_two_frequent_classes(log)))
    elif name == "BL3":
        constraints.append(MaxDistinctClassAttribute("origin", 1))
    elif name == "BL4":
        constraints.append(ExactGroups(max(1, len(log.classes) // 2)))
    else:
        raise ValueError(f"unknown constraint set {name!r}; use one of {ALL_SET_NAMES}")
    return ConstraintSet(constraints)


def applicable(name: str, log: EventLog) -> bool:
    """Whether a set applies to the log (BL3 needs the origin attribute)."""
    if name == "BL3":
        return any(
            "origin" in event.attributes for trace in log for event in trace
        )
    if name == "BL2":
        return len(log.classes) >= 2
    return True


#: Builder signature for custom sets in the runner.
ConstraintBuilder = Callable[[EventLog], ConstraintSet]
