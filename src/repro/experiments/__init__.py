"""Experiment harness: constraint sets, runner, tables and figures."""

from repro.experiments.configs import (
    ALL_SET_NAMES,
    BASELINE_SET_NAMES,
    GECCO_SET_NAMES,
    applicable,
    constraint_set_for_log,
)
from repro.experiments.runner import (
    APPROACHES,
    ExperimentReport,
    ProblemResult,
    run_experiment,
    solve_problem,
)
from repro.experiments.persistence import export_csv, load_report, save_report
from repro.experiments.reproduce import ReproductionSummary, reproduce_all
from repro.experiments.tables import format_table, table3, table5, table6, table7
from repro.experiments import figures

__all__ = [
    "ALL_SET_NAMES",
    "BASELINE_SET_NAMES",
    "GECCO_SET_NAMES",
    "applicable",
    "constraint_set_for_log",
    "APPROACHES",
    "ExperimentReport",
    "ProblemResult",
    "run_experiment",
    "solve_problem",
    "export_csv",
    "load_report",
    "save_report",
    "ReproductionSummary",
    "reproduce_all",
    "format_table",
    "table3",
    "table5",
    "table6",
    "table7",
    "figures",
]
