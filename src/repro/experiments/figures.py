"""Rendering of the paper's figures: DFGs as DOT and ASCII.

Every figure in the paper is (a view of) a directly-follows graph or a
bipartite candidate/class graph.  These helpers render them as Graphviz
DOT (for files) and as deterministic ASCII edge lists (for terminal
output and golden tests):

* Fig. 1 / Fig. 8 — 80/20-filtered DFG of the loan log, before/after
  abstraction (:func:`dfg_to_dot` with ``keep_fraction=0.8``);
* Fig. 2 / Fig. 3 — running-example DFG before/after abstraction;
* Fig. 6 — behavioral alternatives highlighted
  (:func:`dot_with_alternatives`);
* Fig. 7 — candidate/class bipartite graph (:func:`bipartite_to_dot`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def dfg_to_dot(
    dfg: DirectlyFollowsGraph,
    keep_fraction: float = 1.0,
    title: str = "DFG",
) -> str:
    """Render a DFG as Graphviz DOT (optionally frequency-filtered)."""
    graph = dfg if keep_fraction >= 1.0 else dfg.filtered(keep_fraction)
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes):
        count = dfg.start_counts.get(node, 0) + dfg.end_counts.get(node, 0)
        shape = "box" if count else "ellipse"
        lines.append(f"  {_quote(node)} [shape={shape}];")
    for (a, b), count in sorted(graph.edge_counts.items()):
        lines.append(f"  {_quote(a)} -> {_quote(b)} [label={count}];")
    lines.append("}")
    return "\n".join(lines)


def dfg_to_ascii(dfg: DirectlyFollowsGraph, keep_fraction: float = 1.0) -> str:
    """Deterministic edge-list rendering of a DFG."""
    graph = dfg if keep_fraction >= 1.0 else dfg.filtered(keep_fraction)
    lines = [f"nodes: {', '.join(sorted(graph.nodes))}"]
    for (a, b), count in sorted(graph.edge_counts.items()):
        lines.append(f"  {a} -> {b}  [{count}]")
    return "\n".join(lines)


def log_dfg_dot(log: EventLog, keep_fraction: float = 1.0, title: str = "DFG") -> str:
    """DOT of a log's DFG (the Fig. 1/2/3/8 shape)."""
    return dfg_to_dot(compute_dfg(log), keep_fraction=keep_fraction, title=title)


def dot_with_alternatives(
    dfg: DirectlyFollowsGraph,
    alternatives: Iterable[frozenset[str]],
    exclusives: Iterable[frozenset[str]] = (),
    title: str = "Fig6",
) -> str:
    """Fig. 6: proper behavioral alternatives (blue) vs. exclusives (red)."""
    blue = {cls for group in alternatives for cls in group}
    red = {cls for group in exclusives for cls in group}
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    for node in sorted(dfg.nodes):
        if node in blue:
            lines.append(f"  {_quote(node)} [color=blue, penwidth=2];")
        elif node in red:
            lines.append(f"  {_quote(node)} [color=red, penwidth=2];")
        else:
            lines.append(f"  {_quote(node)};")
    for (a, b), count in sorted(dfg.edge_counts.items()):
        lines.append(f"  {_quote(a)} -> {_quote(b)} [label={count}];")
    lines.append("}")
    return "\n".join(lines)


def bipartite_to_dot(
    candidates: Iterable[frozenset[str]],
    selected: Iterable[frozenset[str]] = (),
    distances: Mapping[frozenset[str], float] | None = None,
    title: str = "Fig7",
) -> str:
    """Fig. 7: candidate groups vs. event classes, optimum highlighted."""
    candidates = sorted({frozenset(group) for group in candidates}, key=sorted)
    chosen = {frozenset(group) for group in selected}
    classes = sorted({cls for group in candidates for cls in group})
    lines = [f"digraph {_quote(title)} {{", "  rankdir=TB;"]
    for cls in classes:
        lines.append(f"  {_quote('class:' + cls)} [label={_quote(cls)}, shape=circle];")
    for group in candidates:
        label = "{" + ", ".join(sorted(group)) + "}"
        if distances is not None and group in distances:
            label += f"\\ndist={distances[group]:.2f}"
        style = ", style=filled, fillcolor=lightgray" if group in chosen else ""
        lines.append(
            f"  {_quote('group:' + '|'.join(sorted(group)))} "
            f"[label={_quote(label)}, shape=box{style}];"
        )
    for group in candidates:
        group_id = "group:" + "|".join(sorted(group))
        for cls in sorted(group):
            lines.append(f"  {_quote(group_id)} -> {_quote('class:' + cls)};")
    lines.append("}")
    return "\n".join(lines)
