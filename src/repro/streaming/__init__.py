"""Online abstraction: sliding windows, drift detection, re-grouping."""

from repro.streaming.abstractor import (
    GroupingEpoch,
    StreamingAbstractor,
    StreamingStats,
)
from repro.streaming.drift import DriftDetector, DriftVerdict, dfg_distance
from repro.streaming.window import TraceWindow

__all__ = [
    "GroupingEpoch",
    "StreamingAbstractor",
    "StreamingStats",
    "DriftDetector",
    "DriftVerdict",
    "dfg_distance",
    "TraceWindow",
]
