"""Sliding trace windows over an event stream.

The online setting (the paper's third future-work item) observes
completed traces one at a time.  GECCO's algorithms need a log, so the
streaming layer maintains a bounded window of the most recent traces —
a count-based sliding window with optional tumbling behavior — and
materializes it as an :class:`~repro.eventlog.events.EventLog` on
demand.
"""

from __future__ import annotations

from collections import deque

from repro.eventlog.events import EventLog, Trace
from repro.exceptions import EventLogError


class TraceWindow:
    """A bounded FIFO window of completed traces.

    Parameters
    ----------
    capacity:
        Maximum number of traces retained; the oldest trace is evicted
        when a new one arrives at capacity.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise EventLogError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: deque[Trace] = deque()
        self.total_seen = 0

    def push(self, trace: Trace) -> Trace | None:
        """Add ``trace``; returns the evicted trace, if any."""
        if not isinstance(trace, Trace):
            raise EventLogError(f"expected Trace, got {type(trace).__name__}")
        self.total_seen += 1
        evicted = None
        if len(self._traces) >= self.capacity:
            evicted = self._traces.popleft()
        self._traces.append(trace)
        return evicted

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def is_full(self) -> bool:
        return len(self._traces) >= self.capacity

    def as_log(self) -> EventLog:
        """Materialize the current window as an event log."""
        return EventLog(list(self._traces))

    def clear(self) -> None:
        """Drop all retained traces (tumbling-window reset)."""
        self._traces.clear()
