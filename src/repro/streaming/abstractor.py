"""Online GECCO: streaming abstraction with drift-triggered re-grouping.

The paper's final future-work item: *"we plan to lift our work to
online settings, so that identified groupings are dynamically adapted
to new arrivals in a stream."*  :class:`StreamingAbstractor` implements
that lifting on top of the batch pipeline:

* completed traces arrive one at a time and enter a sliding
  :class:`~repro.streaming.window.TraceWindow`;
* each arriving trace is abstracted immediately with the *current*
  grouping (classes unknown to the grouping pass through unchanged, so
  downstream consumers never block);
* a :class:`~repro.streaming.drift.DriftDetector` watches the window's
  directly-follows profile; when behavior drifts — or a new event class
  appears — the batch GECCO pipeline is re-run on the window and the
  grouping is swapped;
* every swap is recorded as a :class:`GroupingEpoch`, giving a full
  audit trail of how the abstraction evolved with the stream;
* with an ``executor`` (a :mod:`repro.service` executor such as the
  multiprocessing :class:`~repro.service.executor.PoolExecutor`),
  re-grouping is *offloaded*: the window snapshot is submitted as an
  :class:`~repro.service.jobs.AbstractionJob` and the hot per-trace
  abstraction path keeps running under the old grouping until the new
  one arrives — arriving traces are never blocked behind a pipeline
  run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.sets import ConstraintSet
from repro.core.abstraction import abstract_trace
from repro.core.gecco import Gecco, GeccoConfig
from repro.core.grouping import Grouping
from repro.core.instances import InstanceIndex
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import EventLog, Trace
from repro.streaming.drift import DriftDetector, DriftVerdict
from repro.streaming.window import TraceWindow


@dataclass
class GroupingEpoch:
    """One period during which a fixed grouping was in effect."""

    grouping: Grouping | None
    started_at_trace: int
    reason: str
    distance: float | None = None


@dataclass
class StreamingStats:
    """Counters of a streaming run."""

    traces_processed: int = 0
    regroupings: int = 0
    drift_checks: int = 0
    infeasible_regroupings: int = 0


class StreamingAbstractor:
    """Drift-adaptive online abstraction.

    Parameters
    ----------
    constraints / config:
        Passed to the batch :class:`~repro.core.gecco.Gecco` pipeline on
        every re-grouping.
    window_size:
        Number of recent traces the grouping is computed from.
    drift_threshold:
        Directly-follows distance above which re-grouping triggers.
    min_traces:
        No grouping is attempted before this many traces arrived
        (avoids overfitting the first few cases).
    check_every:
        Drift is checked every ``check_every`` arrivals once a grouping
        exists (checking per trace would recompute the window DFG
        constantly).
    executor:
        Optional :mod:`repro.service` executor.  When given, drift-
        triggered re-groupings are submitted asynchronously and adopted
        when finished; the per-trace path never blocks on a pipeline
        run.  At most one re-grouping is in flight at a time.  (The
        constraint set must consist of parser-registered constraint
        types, since jobs are fingerprinted via their canonical
        specification.)
    """

    def __init__(
        self,
        constraints: ConstraintSet,
        config: GeccoConfig | None = None,
        window_size: int = 200,
        drift_threshold: float = 0.2,
        min_traces: int = 20,
        check_every: int = 10,
        executor=None,
    ):
        self.gecco = Gecco(constraints, config)
        self.window = TraceWindow(window_size)
        self.detector = DriftDetector(drift_threshold)
        self.min_traces = max(1, min_traces)
        self.check_every = max(1, check_every)
        self.grouping: Grouping | None = None
        self.epochs: list[GroupingEpoch] = []
        self.stats = StreamingStats()
        self.executor = executor
        self._pending: tuple[object, str] | None = None

    # -- streaming interface ------------------------------------------------

    def process(self, trace: Trace) -> Trace:
        """Consume one completed trace; return its abstracted form.

        The trace is abstracted with the grouping in effect *on
        arrival*; re-grouping (if triggered) affects later traces.
        """
        self._adopt_pending()
        abstracted = self._abstract_now(trace)
        self.window.push(trace)
        self.stats.traces_processed += 1

        window_filled = len(self.window) >= self.min_traces
        due = (
            self.grouping is None
            or self.stats.traces_processed % self.check_every == 0
        )
        if window_filled and due:
            self._maybe_regroup()
        return abstracted

    def process_log(self, log: EventLog) -> EventLog:
        """Stream every trace of ``log`` through :meth:`process`."""
        return EventLog([self.process(trace) for trace in log], dict(log.attributes))

    def flush(self) -> None:
        """Await and adopt an in-flight offloaded re-grouping, if any."""
        if self._pending is not None:
            self._pending[0].result()
            self._adopt_pending()

    # -- internals -----------------------------------------------------------

    def _abstract_now(self, trace: Trace) -> Trace:
        if self.grouping is None:
            return trace
        known = {cls for group in self.grouping for cls in group}
        unknown = [e for e in trace if e.event_class not in known]
        covered = Trace(
            [e for e in trace if e.event_class in known], dict(trace.attributes)
        )
        if len(covered) == 0:
            return trace
        index = InstanceIndex(EventLog([covered]), policy=self.gecco.config.instance_policy)
        abstracted = abstract_trace(
            covered, self.grouping, index, 0,
            strategy=self.gecco.config.abstraction_strategy,
        )
        if unknown:
            # Pass through events of classes the grouping has not seen;
            # order within the abstracted trace is approximate (appended),
            # which a later re-grouping resolves.
            merged = Trace(list(abstracted) + unknown, dict(trace.attributes))
            return merged
        return abstracted

    def _adopt_pending(self) -> None:
        """Swap in an asynchronously computed grouping once it is done."""
        if self._pending is None:
            return
        handle, reason = self._pending
        if not handle.done():
            return
        self._pending = None
        result = handle.result()
        if not result.feasible:
            self.stats.infeasible_regroupings += 1
            self.epochs.append(
                GroupingEpoch(
                    grouping=self.grouping,
                    started_at_trace=self.stats.traces_processed,
                    reason=f"re-grouping infeasible after drift ({reason})",
                )
            )
            return
        self.grouping = result.grouping
        self.epochs.append(
            GroupingEpoch(
                grouping=result.grouping,
                started_at_trace=self.stats.traces_processed,
                reason=reason,
                distance=result.distance,
            )
        )

    def _maybe_regroup(self) -> None:
        if self._pending is not None:
            return  # a re-grouping is already in flight
        log = self.window.as_log()
        dfg = compute_dfg(log)
        self.stats.drift_checks += 1
        verdict: DriftVerdict = self.detector.check(dfg)
        if not verdict.drifted:
            return
        if self.executor is not None:
            from repro.service.jobs import AbstractionJob, LogRef

            job = AbstractionJob(
                log=LogRef.inline(log, name="stream-window"),
                constraints=self.gecco.constraints,
                config=self.gecco.config,
            )
            self._pending = (self.executor.submit(job), verdict.reason)
            self.stats.regroupings += 1
            # Rebase now so the next checks measure drift against the
            # window the pending re-grouping was computed from.
            self.detector.rebase(dfg)
            return
        result = self.gecco.abstract(log)
        self.stats.regroupings += 1
        if not result.feasible:
            self.stats.infeasible_regroupings += 1
            self.epochs.append(
                GroupingEpoch(
                    grouping=self.grouping,
                    started_at_trace=self.stats.traces_processed,
                    reason=f"re-grouping infeasible after drift ({verdict.reason})",
                )
            )
            # Keep the old grouping; rebase so we do not retry every check.
            self.detector.rebase(dfg)
            return
        self.grouping = result.grouping
        self.detector.rebase(dfg)
        self.epochs.append(
            GroupingEpoch(
                grouping=result.grouping,
                started_at_trace=self.stats.traces_processed,
                reason=verdict.reason,
                distance=result.distance,
            )
        )
