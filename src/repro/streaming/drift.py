"""Drift detection over streaming directly-follows behavior.

To adapt a grouping "dynamically to new arrivals in a stream" (paper
§VIII) without re-solving after every trace, the streaming abstractor
re-groups only when the observed behavior has *drifted*.  Drift is
measured between directly-follows frequency profiles: the detector
keeps the profile the current grouping was computed on (the
*reference*) and compares it against the profile of the current window
using total-variation-style distance over normalized edge frequencies,
plus a hard trigger when event classes appear or disappear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eventlog.dfg import DirectlyFollowsGraph
from repro.exceptions import EventLogError


def _normalized_profile(dfg: DirectlyFollowsGraph) -> dict[tuple[str, str], float]:
    total = sum(dfg.edge_counts.values())
    if total == 0:
        return {}
    return {edge: count / total for edge, count in dfg.edge_counts.items()}


def dfg_distance(reference: DirectlyFollowsGraph, current: DirectlyFollowsGraph) -> float:
    """Total-variation distance between two DFG frequency profiles.

    0 means identical directly-follows behavior, 1 means disjoint.
    """
    profile_a = _normalized_profile(reference)
    profile_b = _normalized_profile(current)
    edges = set(profile_a) | set(profile_b)
    return 0.5 * sum(
        abs(profile_a.get(edge, 0.0) - profile_b.get(edge, 0.0)) for edge in edges
    )


@dataclass
class DriftVerdict:
    """Outcome of one drift check."""

    drifted: bool
    distance: float
    new_classes: frozenset[str]
    lost_classes: frozenset[str]

    @property
    def reason(self) -> str:
        if not self.drifted:
            return "stable"
        reasons = []
        if self.new_classes:
            reasons.append(f"new classes {sorted(self.new_classes)}")
        if self.lost_classes:
            reasons.append(f"lost classes {sorted(self.lost_classes)}")
        if not reasons or self.distance > 0:
            reasons.append(f"DF distance {self.distance:.3f}")
        return ", ".join(reasons)


class DriftDetector:
    """Compares the current window's DFG against a reference DFG.

    Parameters
    ----------
    threshold:
        Total-variation distance above which drift is declared.
        Class appearance/disappearance always declares drift (the
        grouping would not even be an exact cover anymore).
    """

    def __init__(self, threshold: float = 0.2):
        if not 0.0 < threshold <= 1.0:
            raise EventLogError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.reference: DirectlyFollowsGraph | None = None

    def rebase(self, dfg: DirectlyFollowsGraph) -> None:
        """Adopt ``dfg`` as the new reference profile."""
        self.reference = dfg

    def check(self, current: DirectlyFollowsGraph) -> DriftVerdict:
        """Judge whether ``current`` drifted away from the reference."""
        if self.reference is None:
            return DriftVerdict(
                drifted=True,
                distance=1.0,
                new_classes=current.nodes,
                lost_classes=frozenset(),
            )
        new_classes = current.nodes - self.reference.nodes
        lost_classes = self.reference.nodes - current.nodes
        distance = dfg_distance(self.reference, current)
        drifted = bool(new_classes or lost_classes) or distance > self.threshold
        return DriftVerdict(
            drifted=drifted,
            distance=distance,
            new_classes=frozenset(new_classes),
            lost_classes=frozenset(lost_classes),
        )
