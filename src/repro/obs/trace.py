"""Structured JSONL tracing for the executor fleet.

One :class:`TraceWriter` per process appends one JSON object per line
to a shared trace file.  Every event carries:

* ``schema`` — the trace schema tag (:data:`TRACE_SCHEMA`), stamped on
  the first event each writer emits so merged fleet traces stay
  self-describing;
* ``event`` — one of :data:`TRACE_EVENTS`;
* ``ts`` — wall-clock epoch seconds (cross-process orderable);
* ``mono`` — ``time.monotonic()`` seconds (same-process interval
  arithmetic, immune to clock steps);
* ``pid`` — the emitting process id;
* ``worker`` — the emitting worker's fleet name, when it has one;

plus event-specific fields (job ``fingerprint``, ``task_id``,
``attempt``, cache ``tier``, ``seconds`` stage timings, failure
``reason``/``cause`` strings — see ``docs/observability.md`` for the
full schema table).

Span fields: executors mint a ``trace_id`` (one per submitted job) and
a ``span_id`` per lifecycle phase, with ``parent_span`` linking child
phases to the phase that spawned them — the submit span is the root,
the worker's claim opens a child span, and stage events
(``artifact_build``/``solve``) nest under the claim.  Span context
rides inside the pickled job payload across brokers and pool pipes, so
one job's cross-process lifecycle reassembles into an exact tree
(:func:`repro.obs.doctor.analyze_trace`) instead of a timestamp guess.
Traces without span fields (pre-span writers) stay fully parseable;
consumers fall back to timestamp ordering.

Crash-safety and interleaving: each event is a single ``os.write`` to
a file descriptor opened with ``O_APPEND``, so POSIX guarantees the
line lands contiguously even when pool workers, fleet workers, and the
submitting executor all write to the same file; a process that dies
mid-run loses at most the event it was formatting.  The reader side
(:func:`read_trace`) skips torn or corrupt lines instead of raising,
and :func:`merge_traces` reassembles a fleet-wide timeline from many
per-host files by wall-clock order.

Writers **never raise** into the hot path: tracing is an observer, and
a full disk or revoked permission must not fail jobs that would
otherwise succeed.  Failed appends are counted on
``TraceWriter.dropped`` and otherwise ignored.
"""

from __future__ import annotations

import binascii
import gzip
import json
import os
import threading
import time

#: Trace schema tag; bump when event fields change incompatibly.
#: Span fields (``trace_id``/``span_id``/``parent_span``) are additive
#: and optional, so span-bearing traces keep the same tag.
TRACE_SCHEMA = "gecco-trace/1"

#: The job-lifecycle vocabulary.  Writers may emit only these names;
#: the doctor ignores unknown events (forward compatibility) but the
#: schema round-trip test pins this exact set.
TRACE_EVENTS = (
    "submitted",          # executor accepted a job (fingerprint known)
    "queued",             # job entered a queue (pool scheduler / broker)
    "claimed",            # a worker took the job (carries attempt number)
    "heartbeat",          # lease renewal outcome (errors / fail-fast only)
    "requeued",           # lease-expired tasks swept back to the queue
    "released",           # worker voluntarily handed a claim back
    "quarantined",        # poisonous/exhausted task parked (with reason)
    "shed",               # admission control refused the job (with cause)
    "deadline_exceeded",  # job failed its deadline (with stage)
    "cache_hit",          # a cache tier answered (tier: artifacts/results/
                          #   selection/disk_results/disk_selection)
    "artifact_build",     # per-log artifacts built (seconds)
    "solve",              # the abstraction computation ran (stage seconds)
    "retry",              # a resilience retry fired (op + cause)
    "degraded",           # DegradingExecutor fell back a tier
    "done",               # terminal job outcome (ok/error/cached, seconds)
    "worker_exit",        # final WorkerStats of one worker loop
    "metrics_endpoint",   # a /metrics server bound (host, port, url)
    "worker_restart",     # supervisor respawned a crashed worker slot
    "supervisor_started",  # repro fleet supervisor came up (slots, broker)
    "supervisor_slot_quarantined",  # crash-looping slot taken out of service
    "supervisor_exit",    # supervisor drained (restart totals per slot)
)


def new_trace_id() -> str:
    """Mint a 128-bit hex trace id (one per submitted job)."""
    return binascii.hexlify(os.urandom(16)).decode("ascii")


def new_span_id() -> str:
    """Mint a 64-bit hex span id (one per lifecycle phase)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


_SPAN_CONTEXT = threading.local()


def current_span() -> tuple[str, str] | None:
    """The active ``(trace_id, span_id)`` for this thread, if any."""
    stack = getattr(_SPAN_CONTEXT, "stack", None)
    return stack[-1] if stack else None


def child_span_id() -> str | None:
    """A fresh span id when a span scope is active, else ``None``.

    Stage emitters use this so span fields appear only on traced runs:
    ``None`` fields are elided by :meth:`TraceWriter.emit`, keeping
    untraced and pre-span trace formats unchanged.
    """
    return new_span_id() if current_span() is not None else None


class span_scope:
    """Context manager that makes ``(trace_id, span_id)`` ambient.

    While active, :meth:`TraceWriter.emit` stamps ``trace_id`` and
    ``parent_span`` onto events that don't carry them explicitly, so
    deeply nested emitters (cache tiers, the solver stage timer) join
    the job's span tree without threading ids through every signature.
    A ``None`` ``trace_id`` makes the scope a no-op, which keeps call
    sites free of conditionals.
    """

    def __init__(self, trace_id: str | None, span_id: str | None):
        self._active = trace_id is not None and span_id is not None
        self._trace_id = trace_id
        self._span_id = span_id

    def __enter__(self) -> "span_scope":
        if self._active:
            stack = getattr(_SPAN_CONTEXT, "stack", None)
            if stack is None:
                stack = _SPAN_CONTEXT.stack = []
            stack.append((self._trace_id, self._span_id))
        return self

    def __exit__(self, *exc_info) -> None:
        if self._active:
            stack = getattr(_SPAN_CONTEXT, "stack", None)
            if stack:
                stack.pop()


class TraceWriter:
    """Append-only, multi-process-safe JSONL event writer.

    Parameters
    ----------
    path:
        The trace file; created on first emit, opened ``O_APPEND`` so
        concurrent writers interleave whole lines.
    worker:
        Optional fleet name stamped on every event this writer emits.
    rotate_mb:
        Optional size cap in MiB.  When an append would push the file
        past the cap, the writer atomically renames it to ``<path>.1``
        (one rotated generation, overwriting any previous one) and
        starts a fresh file.  Concurrent writers on the same path
        detect the rename via inode comparison and re-open; a handful
        of stragglers landing in the rotated segment is harmless
        because readers merge both segments.

    A writer is cheap to construct (the file opens lazily) and safe to
    share across threads; cross-process sharing means each process
    constructs its own writer on the same path.
    """

    def __init__(self, path, worker: str | None = None, rotate_mb: float | None = None):
        self.path = str(path)
        self.worker = worker
        self.emitted = 0
        #: Events lost to I/O errors (disk full, permissions); tracing
        #: is best-effort and never raises into the traced code.
        self.dropped = 0
        self.rotations = 0
        #: Public so executors can propagate the rotation policy to the
        #: writers their worker processes open on the same path.
        self.rotate_mb = rotate_mb
        self._rotate_bytes = (
            int(rotate_mb * 1024 * 1024) if rotate_mb and rotate_mb > 0 else None
        )
        self._fd: int | None = None
        self._lock = threading.Lock()
        self._stamped = False

    def emit(self, event: str, **fields) -> None:
        """Append one event; ``None``-valued fields are elided.

        When a :class:`span_scope` is active on the calling thread,
        ``trace_id`` and ``parent_span`` are stamped from it unless the
        caller supplied them explicitly — a caller-passed ``span_id``
        with no ``parent_span`` means "this event opens a child span
        of the ambient one".
        """
        record: dict = {"ts": time.time(), "mono": time.monotonic(), "event": event}
        if not self._stamped:
            record["schema"] = TRACE_SCHEMA
        record["pid"] = os.getpid()
        if self.worker is not None:
            record["worker"] = self.worker
        ambient = current_span()
        if ambient is not None:
            if fields.get("trace_id") is None:
                fields["trace_id"] = ambient[0]
            if fields.get("parent_span") is None:
                fields["parent_span"] = ambient[1]
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        try:
            line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
            data = line.encode("utf-8")
        except Exception:
            self.dropped += 1
            return
        with self._lock:
            try:
                if self._fd is None:
                    self._fd = os.open(
                        self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                    )
                if self._rotate_bytes is not None:
                    self._maybe_rotate(len(data))
                os.write(self._fd, data)
            except Exception:
                self.dropped += 1
                return
            self._stamped = True
            self.emitted += 1

    def _maybe_rotate(self, incoming: int) -> None:
        """Rotate ``path`` → ``path.1`` when the cap would be crossed.

        Called under the lock with the fd open.  Another process may
        have rotated already: if our fd no longer backs ``path`` (the
        inode moved), re-open instead of rotating a fresh file away.
        """
        here = os.fstat(self._fd)
        try:
            on_disk = os.stat(self.path)
        except OSError:
            on_disk = None
        if on_disk is None or on_disk.st_ino != here.st_ino:
            os.close(self._fd)
            self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            here = os.fstat(self._fd)
        if here.st_size > 0 and here.st_size + incoming > self._rotate_bytes:
            os.replace(self.path, self.path + ".1")
            os.close(self._fd)
            self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            self.rotations += 1

    def close(self) -> None:
        """Close the file descriptor (further emits reopen it)."""
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except Exception:
                    pass
                self._fd = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def trace_segments(path) -> list[str]:
    """All on-disk segments of one logical trace, oldest first.

    Rotation produces ``<path>.1`` (optionally compressed offline to
    ``<path>.1.gz``); ``<path>`` itself may also have been compressed
    to ``<path>.gz`` after a run.  Only segments that exist are
    returned, so the common unrotated case is just ``[path]``.
    """
    path = str(path)
    candidates = [path + ".1.gz", path + ".1", path + ".gz", path]
    if path.endswith(".gz"):
        base = path[: -len(".gz")]
        candidates = [base + ".1.gz", base + ".1", path]
    return [p for p in candidates if os.path.exists(p)]


def read_trace(path) -> list[dict]:
    """Parse one trace file; skip torn or corrupt lines.

    A trace written by a crashing fleet may end mid-line or carry a
    line mangled by an interleaving bug on a non-POSIX filesystem; the
    reader's job is forensics, so it salvages every parseable event
    rather than raising on the first bad byte.  Paths ending in
    ``.gz`` are decompressed transparently (truncated archives yield
    the events that decompressed cleanly).
    """
    path = str(path)
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rb") as fh:
                raw = fh.read()
        else:
            with open(path, "rb") as fh:
                raw = fh.read()
    except (OSError, EOFError):
        return []
    return parse_trace_bytes(raw)


def parse_trace_bytes(raw: bytes) -> list[dict]:
    """Parse raw JSONL trace bytes, salvaging every well-formed line."""
    events: list[dict] = []
    for line in raw.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "event" in record:
            events.append(record)
    return events


def _merge_key(event: dict) -> tuple:
    """Stable cross-host ordering: ``(ts, writer, mono)``.

    ``mono`` values from different processes are not comparable, so
    they may only break ties *within* one writer — keyed here as
    ``(worker, pid)`` — never across writers.  A pure-``ts`` sort
    would interleave same-millisecond events from one writer out of
    emission order whenever another writer's event landed between
    them.
    """
    return (
        event.get("ts", 0.0),
        (str(event.get("worker", "")), str(event.get("pid", ""))),
        event.get("mono", 0.0),
    )


def merge_traces(paths) -> list[dict]:
    """Merge fleet trace files into one wall-clock-ordered timeline.

    Each path is expanded to its rotated/compressed segments
    (:func:`trace_segments`), so a rotated trace contributes both
    generations.  The merge is a stable sort by :func:`_merge_key`.
    """
    events: list[dict] = []
    seen: set[str] = set()
    for path in paths:
        segments = trace_segments(path) or [str(path)]
        for segment in segments:
            if segment in seen:
                continue
            seen.add(segment)
            events.extend(read_trace(segment))
    events.sort(key=_merge_key)
    return events
