"""Structured JSONL tracing for the executor fleet.

One :class:`TraceWriter` per process appends one JSON object per line
to a shared trace file.  Every event carries:

* ``schema`` — the trace schema tag (:data:`TRACE_SCHEMA`), stamped on
  the first event each writer emits so merged fleet traces stay
  self-describing;
* ``event`` — one of :data:`TRACE_EVENTS`;
* ``ts`` — wall-clock epoch seconds (cross-process orderable);
* ``mono`` — ``time.monotonic()`` seconds (same-process interval
  arithmetic, immune to clock steps);
* ``pid`` — the emitting process id;
* ``worker`` — the emitting worker's fleet name, when it has one;

plus event-specific fields (job ``fingerprint``, ``task_id``,
``attempt``, cache ``tier``, ``seconds`` stage timings, failure
``reason``/``cause`` strings — see ``docs/observability.md`` for the
full schema table).

Crash-safety and interleaving: each event is a single ``os.write`` to
a file descriptor opened with ``O_APPEND``, so POSIX guarantees the
line lands contiguously even when pool workers, fleet workers, and the
submitting executor all write to the same file; a process that dies
mid-run loses at most the event it was formatting.  The reader side
(:func:`read_trace`) skips torn or corrupt lines instead of raising,
and :func:`merge_traces` reassembles a fleet-wide timeline from many
per-host files by wall-clock order.

Writers **never raise** into the hot path: tracing is an observer, and
a full disk or revoked permission must not fail jobs that would
otherwise succeed.  Failed appends are counted on
``TraceWriter.dropped`` and otherwise ignored.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Trace schema tag; bump when event fields change incompatibly.
TRACE_SCHEMA = "gecco-trace/1"

#: The job-lifecycle vocabulary.  Writers may emit only these names;
#: the doctor ignores unknown events (forward compatibility) but the
#: schema round-trip test pins this exact set.
TRACE_EVENTS = (
    "submitted",          # executor accepted a job (fingerprint known)
    "queued",             # job entered a queue (pool scheduler / broker)
    "claimed",            # a worker took the job (carries attempt number)
    "heartbeat",          # lease renewal outcome (errors / fail-fast only)
    "requeued",           # lease-expired tasks swept back to the queue
    "released",           # worker voluntarily handed a claim back
    "quarantined",        # poisonous/exhausted task parked (with reason)
    "shed",               # admission control refused the job (with cause)
    "deadline_exceeded",  # job failed its deadline (with stage)
    "cache_hit",          # a cache tier answered (tier: artifacts/results/
                          #   selection/disk_results/disk_selection)
    "artifact_build",     # per-log artifacts built (seconds)
    "solve",              # the abstraction computation ran (stage seconds)
    "retry",              # a resilience retry fired (op + cause)
    "degraded",           # DegradingExecutor fell back a tier
    "done",               # terminal job outcome (ok/error/cached, seconds)
    "worker_exit",        # final WorkerStats of one worker loop
)


class TraceWriter:
    """Append-only, multi-process-safe JSONL event writer.

    Parameters
    ----------
    path:
        The trace file; created on first emit, opened ``O_APPEND`` so
        concurrent writers interleave whole lines.
    worker:
        Optional fleet name stamped on every event this writer emits.

    A writer is cheap to construct (the file opens lazily) and safe to
    share across threads; cross-process sharing means each process
    constructs its own writer on the same path.
    """

    def __init__(self, path, worker: str | None = None):
        self.path = str(path)
        self.worker = worker
        self.emitted = 0
        #: Events lost to I/O errors (disk full, permissions); tracing
        #: is best-effort and never raises into the traced code.
        self.dropped = 0
        self._fd: int | None = None
        self._lock = threading.Lock()
        self._stamped = False

    def emit(self, event: str, **fields) -> None:
        """Append one event; ``None``-valued fields are elided."""
        record: dict = {"ts": time.time(), "mono": time.monotonic(), "event": event}
        if not self._stamped:
            record["schema"] = TRACE_SCHEMA
        record["pid"] = os.getpid()
        if self.worker is not None:
            record["worker"] = self.worker
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        try:
            line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
            data = line.encode("utf-8")
        except Exception:
            self.dropped += 1
            return
        with self._lock:
            try:
                if self._fd is None:
                    self._fd = os.open(
                        self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                    )
                os.write(self._fd, data)
            except Exception:
                self.dropped += 1
                return
            self._stamped = True
            self.emitted += 1

    def close(self) -> None:
        """Close the file descriptor (further emits reopen it)."""
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except Exception:
                    pass
                self._fd = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path) -> list[dict]:
    """Parse one trace file; skip torn or corrupt lines.

    A trace written by a crashing fleet may end mid-line or carry a
    line mangled by an interleaving bug on a non-POSIX filesystem; the
    reader's job is forensics, so it salvages every parseable event
    rather than raising on the first bad byte.
    """
    events: list[dict] = []
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError:
        return events
    for line in raw.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "event" in record:
            events.append(record)
    return events


def merge_traces(paths) -> list[dict]:
    """Merge fleet trace files into one wall-clock-ordered timeline.

    Monotonic timestamps break ties within a process but are not
    comparable across hosts, so the merge orders by ``(ts, mono)`` —
    wall clock first, monotonic as a same-process tiebreaker.  Events
    missing timestamps (hand-written fixtures) sort first.
    """
    events: list[dict] = []
    for path in paths:
        events.extend(read_trace(path))
    events.sort(key=lambda e: (e.get("ts", 0.0), e.get("mono", 0.0)))
    return events
