"""``repro doctor`` — offline forensics over merged fleet traces.

The doctor turns raw trace events (:mod:`repro.obs.trace`) into the
questions an operator actually asks after a bad night:

* **what failed, and why** — a taxonomy of retries (by op and cause),
  requeues (lease expiry vs voluntary release), quarantines (by
  reason), admission sheds (by cause), and deadline failures (by
  stage);
* **who is hurting** — top-offender jobs (most redeliveries and
  failures) and workers (quarantines, heartbeat errors, broker errors,
  from their final ``worker_exit`` stats);
* **where the time goes** — p50/p99 of queue wait (``queued`` →
  ``claimed``), artifact build, solve, and end-to-end job latency;
* **is the cache working** — hit counts per tier from ``cache_hit``
  events plus true hit *rates* from worker cache snapshots;
* **when it happened** — a chronological requeue/quarantine timeline;
* **what to change** — :func:`recommend` turns the taxonomy, latency,
  and cache sections into evidence-backed tuning suggestions
  (``repro doctor --recommend``), each citing the counts that
  triggered it.

Span-bearing traces (``trace_id``/``span_id``/``parent_span`` minted
by the executors since :mod:`repro.obs.trace` grew span context) get a
``spans`` section with exact parent/child trees: every claimed job's
worker-side events nest under its submit span instead of being
correlated by timestamp heuristics.  Pre-span traces parse unchanged —
the ``spans`` section is empty and every analysis below falls back to
timestamp ordering.

Attribution is reconstructive: a ``claimed`` event with ``attempt > 0``
is a redelivery; if a ``released`` event for the same task precedes
it, the redelivery was voluntary (e.g. a corrupt payload handed back),
otherwise the lease expired — which, with a ``heartbeat`` error event
in between, points at heartbeat loss rather than worker death.  This
is exactly the fault vocabulary the chaos harness
(:mod:`repro.service.dist.chaos`) injects, so a seeded chaos drill can
assert every injected fault class lands in the right taxonomy bucket.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import defaultdict

from repro.obs.trace import merge_traces

#: Doctor report schema tag.
DOCTOR_SCHEMA = "gecco-doctor/1"


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile on a sorted copy (no numpy needed)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _stage_summary(samples: list[float]) -> dict:
    return {
        "count": len(samples),
        "total_s": round(sum(samples), 6),
        "p50_s": round(_percentile(samples, 0.50), 6),
        "p99_s": round(_percentile(samples, 0.99), 6),
    }


def analyze_trace(paths_or_events) -> dict:
    """Merge traces and distill them into one forensics report dict.

    Accepts a list of trace file paths, or (for tests and embedding) a
    pre-merged list of event dicts.  Returns a JSON-ready report; see
    ``docs/observability.md`` for the field reference.
    """
    if paths_or_events and isinstance(paths_or_events[0], dict):
        events = list(paths_or_events)
    else:
        events = merge_traces(paths_or_events)

    counts = TallyCounter(e.get("event", "?") for e in events)
    workers = sorted(
        {e["worker"] for e in events if e.get("worker")}
    )

    # --- failure taxonomy -------------------------------------------------
    retries: TallyCounter = TallyCounter()
    for e in events:
        if e.get("event") == "retry":
            retries[f'{e.get("op", "?")}:{e.get("cause", "?")}'] += 1

    released_tasks: dict[str, int] = defaultdict(int)
    for e in events:
        if e.get("event") == "released":
            key = e.get("task_id") or e.get("fingerprint") or "?"
            released_tasks[key] += 1

    heartbeat_errors = sum(
        1 for e in events if e.get("event") == "heartbeat" and e.get("error")
    )

    redeliveries = {"released": 0, "lease_expired": 0}
    redelivered_jobs: TallyCounter = TallyCounter()
    budget: dict[str, int] = defaultdict(int)  # releases not yet matched
    for e in events:
        name = e.get("event")
        key = e.get("task_id") or e.get("fingerprint") or "?"
        if name == "released":
            budget[key] += 1
        elif name == "claimed" and e.get("attempt", 0) > 0:
            redelivered_jobs[e.get("fingerprint") or key] += 1
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                redeliveries["released"] += 1
            else:
                redeliveries["lease_expired"] += 1
    requeue_sweeps = sum(
        e.get("count", 0) for e in events if e.get("event") == "requeued"
    )

    quarantines: TallyCounter = TallyCounter()
    for e in events:
        if e.get("event") == "quarantined":
            quarantines[_reason_class(e.get("reason", ""))] += 1

    sheds: TallyCounter = TallyCounter(
        e.get("cause", "overload") for e in events if e.get("event") == "shed"
    )
    deadlines: TallyCounter = TallyCounter(
        e.get("stage", "?") for e in events if e.get("event") == "deadline_exceeded"
    )
    degraded: TallyCounter = TallyCounter(
        e.get("cause", "?") for e in events if e.get("event") == "degraded"
    )
    failures = sum(
        1
        for e in events
        if e.get("event") == "done"
        and (e.get("error") or e.get("ok") is False)
    )
    worker_restarts = counts.get("worker_restart", 0)
    slot_quarantines = counts.get("supervisor_slot_quarantined", 0)

    # --- latency breakdown ------------------------------------------------
    queued_at: dict[str, float] = {}
    queue_waits: list[float] = []
    for e in events:
        key = e.get("task_id") or e.get("fingerprint")
        if key is None:
            continue
        name = e.get("event")
        if name in ("queued", "submitted"):
            # first enqueue wins; redeliveries measure from original entry
            queued_at.setdefault(key, e.get("ts", 0.0))
        elif name == "claimed" and key in queued_at:
            queue_waits.append(max(0.0, e.get("ts", 0.0) - queued_at[key]))

    stage_samples: dict[str, list[float]] = defaultdict(list)
    for e in events:
        name = e.get("event")
        if name == "artifact_build" and "seconds" in e:
            stage_samples["artifact_build"].append(float(e["seconds"]))
        elif name == "solve":
            timings = e.get("timings") or {}
            for stage, seconds in timings.items():
                stage_samples[f"solve_{stage}"].append(float(seconds))
            if "seconds" in e:
                stage_samples["solve"].append(float(e["seconds"]))
        elif name == "done" and "seconds" in e:
            stage_samples["job_total"].append(float(e["seconds"]))
    latency = {"queue_wait": _stage_summary(queue_waits)}
    for stage in sorted(stage_samples):
        latency[stage] = _stage_summary(stage_samples[stage])

    # --- cache ------------------------------------------------------------
    tier_hits: TallyCounter = TallyCounter(
        e.get("tier", "?") for e in events if e.get("event") == "cache_hit"
    )
    snapshot_totals: dict[str, TallyCounter] = defaultdict(TallyCounter)
    for e in events:
        if e.get("event") == "worker_exit":
            cache = e.get("stats", {}).get("cache") or {}
            for tier, counters in cache.items():
                if isinstance(counters, dict):
                    for key, value in counters.items():
                        if isinstance(value, (int, float)):
                            snapshot_totals[tier][key] += value
    hit_rates = {}
    lookups = {}
    for tier, counters in sorted(snapshot_totals.items()):
        hits, misses = counters.get("hits", 0), counters.get("misses", 0)
        if hits + misses:
            hit_rates[tier] = round(hits / (hits + misses), 4)
            lookups[tier] = int(hits + misses)

    # --- offenders --------------------------------------------------------
    job_trouble: TallyCounter = TallyCounter()
    job_trouble.update(redelivered_jobs)
    for e in events:
        key = e.get("fingerprint") or e.get("task_id")
        if key is None:
            continue
        name = e.get("event")
        if name == "quarantined" or (
            name == "done" and (e.get("error") or e.get("ok") is False)
        ):
            job_trouble[key] += 1
        elif name == "deadline_exceeded":
            job_trouble[key] += 1
    worker_trouble: list[dict] = []
    for e in events:
        if e.get("event") != "worker_exit":
            continue
        stats = e.get("stats", {})
        score = sum(
            stats.get(k, 0)
            for k in (
                "failed", "quarantined", "released",
                "broker_errors", "heartbeat_errors",
            )
        )
        worker_trouble.append(
            {
                "worker": stats.get("worker") or e.get("worker", "?"),
                "trouble_score": score,
                "completed": stats.get("completed", 0),
                "failed": stats.get("failed", 0),
                "quarantined": stats.get("quarantined", 0),
                "released": stats.get("released", 0),
                "requeued": stats.get("requeued", 0),
                "broker_errors": stats.get("broker_errors", 0),
                "heartbeat_errors": stats.get("heartbeat_errors", 0),
            }
        )
    worker_trouble.sort(key=lambda w: (-w["trouble_score"], w["worker"]))

    # --- timeline ---------------------------------------------------------
    timeline = [
        {
            "ts": e.get("ts", 0.0),
            "event": e.get("event"),
            "task_id": e.get("task_id"),
            "fingerprint": e.get("fingerprint"),
            "worker": e.get("worker"),
            "attempt": e.get("attempt"),
            "reason": e.get("reason") or e.get("cause") or e.get("stage"),
        }
        for e in events
        if e.get("event")
        in ("requeued", "released", "quarantined", "shed",
            "deadline_exceeded", "worker_restart",
            "supervisor_slot_quarantined")
        or (e.get("event") == "claimed" and e.get("attempt", 0) > 0)
    ]
    for entry in timeline:
        for key in list(entry):
            if entry[key] is None:
                del entry[key]

    return {
        "schema": DOCTOR_SCHEMA,
        "events": sum(counts.values()),
        "event_counts": dict(sorted(counts.items())),
        "workers": workers,
        "taxonomy": {
            "retries": dict(sorted(retries.items())),
            "redeliveries": dict(redeliveries),
            "requeue_sweep_moves": requeue_sweeps,
            "releases": sum(released_tasks.values()),
            "heartbeat_errors": heartbeat_errors,
            "quarantines": dict(sorted(quarantines.items())),
            "sheds": dict(sorted(sheds.items())),
            "deadline_exceeded": dict(sorted(deadlines.items())),
            "degraded": dict(sorted(degraded.items())),
            "job_failures": failures,
            "worker_restarts": worker_restarts,
            "slot_quarantines": slot_quarantines,
        },
        "latency": latency,
        "cache": {
            "tier_hits": dict(sorted(tier_hits.items())),
            "hit_rates": hit_rates,
            "lookups": lookups,
        },
        "spans": _analyze_spans(events),
        "offenders": {
            "jobs": [
                {"job": job, "trouble_score": score}
                for job, score in job_trouble.most_common(10)
            ],
            "workers": worker_trouble[:10],
        },
        "timeline": timeline,
    }


#: How many span trees the report embeds (the rest are counted only).
_MAX_TREES = 10

#: Recursion guard for corrupt traces with parent cycles.
_MAX_SPAN_DEPTH = 64


def _analyze_spans(events: list[dict]) -> dict:
    """Build exact parent/child span trees from span-bearing events.

    Events carrying a ``span_id`` become tree nodes; events carrying
    only a ``parent_span`` (ambient-stamped annotations like
    ``cache_hit`` or executor-side ``done``) attach to their parent
    node as annotations.  Trees are grouped per ``trace_id`` and
    rooted at ``submitted`` spans, so one job's cross-process
    lifecycle — submit, claim, artifact build, solve — reads as a
    single nested structure.  Traces without span fields yield an
    empty section (``traced_jobs == 0``) and the rest of the report
    degrades gracefully to timestamp ordering.
    """
    nodes: dict[str, dict] = {}
    order: list[str] = []
    annotations: list[tuple[str, dict]] = []
    span_events = 0
    trace_ids: set[str] = set()
    for e in events:
        sid, parent = e.get("span_id"), e.get("parent_span")
        if sid is None and parent is None:
            continue
        span_events += 1
        if e.get("trace_id"):
            trace_ids.add(e["trace_id"])
        if sid is not None:
            if sid not in nodes:
                fingerprint = e.get("fingerprint")
                nodes[sid] = {
                    "event": e.get("event", "?"),
                    "span_id": sid,
                    "parent_span": parent,
                    "trace_id": e.get("trace_id"),
                    "fingerprint": (
                        str(fingerprint)[:12] if fingerprint else None
                    ),
                    "worker": e.get("worker"),
                    "seconds": e.get("seconds"),
                    "children": [],
                    "annotations": [],
                }
                order.append(sid)
        elif parent is not None:
            annotations.append((parent, e))

    for sid in order:
        parent = nodes[sid]["parent_span"]
        if parent is not None and parent in nodes and parent != sid:
            nodes[parent]["children"].append(nodes[sid])
    for parent, e in annotations:
        if parent in nodes:
            nodes[parent]["annotations"].append(e.get("event", "?"))

    roots = [
        nodes[sid]
        for sid in order
        if nodes[sid]["parent_span"] is None
        or nodes[sid]["parent_span"] not in nodes
    ]

    def depth(node: dict, budget: int = _MAX_SPAN_DEPTH) -> int:
        if budget <= 0:
            return 0
        return 1 + max(
            (depth(child, budget - 1) for child in node["children"]),
            default=0,
        )

    def export(node: dict, budget: int = _MAX_SPAN_DEPTH) -> dict:
        entry = {"event": node["event"], "span_id": node["span_id"]}
        for key in ("fingerprint", "worker", "seconds"):
            if node[key] is not None:
                entry[key] = node[key]
        if node["annotations"]:
            entry["annotations"] = list(node["annotations"])
        if node["children"] and budget > 0:
            entry["children"] = [
                export(child, budget - 1) for child in node["children"]
            ]
        return entry

    max_depth = max((depth(root) for root in roots), default=0)
    submit_roots = [r for r in roots if r["event"] == "submitted"]
    trees = [export(root) for root in (submit_roots or roots)[:_MAX_TREES]]
    return {
        "traced_jobs": len(submit_roots),
        "span_events": span_events,
        "traces": len(trace_ids),
        "max_depth": max_depth,
        "trees": trees,
    }


#: Evidence thresholds for :func:`recommend`.  Kept as one flat table
#: so the boundary tests and the docs cite the same numbers.
RECOMMEND_THRESHOLDS = {
    "lease_expired_min": 2,       # lease redeliveries before lease advice
    "poison_min": 1,              # poison quarantines before payload advice
    "released_min": 1,            # voluntary releases paired with poison
    "attempts_exhausted_min": 1,  # attempt-budget quarantines
    "shed_min": 1,                # admission sheds before capacity advice
    "cache_lookups_min": 20,      # lookups before judging a tier's hit rate
    "cache_hit_rate_max": 0.5,    # below this the disk tier is undersized
    "queue_wait_ratio": 2.0,      # queue-wait p50 vs solve p50 multiple
    "queue_wait_count_min": 5,    # queue-wait samples before scaling advice
    "worker_restart_min": 3,      # supervisor restarts before crash advice
    "slot_quarantine_min": 1,     # quarantined fleet slots (always advise)
}


def recommend(report: dict) -> list[dict]:
    """Turn an :func:`analyze_trace` report into tuning suggestions.

    Every recommendation is evidence-backed: the rule only fires past
    the :data:`RECOMMEND_THRESHOLDS` floor and the returned dict cites
    the exact counts that triggered it, so an operator can check the
    arithmetic before touching a flag.  A healthy trace returns ``[]``.
    """
    thresholds = RECOMMEND_THRESHOLDS
    tax = report.get("taxonomy", {})
    latency = report.get("latency", {})
    cache = report.get("cache", {})
    recs: list[dict] = []

    redeliveries = tax.get("redeliveries", {})
    lease_expired = redeliveries.get("lease_expired", 0)
    released = redeliveries.get("released", 0)
    heartbeat_errors = tax.get("heartbeat_errors", 0)
    if (
        lease_expired >= thresholds["lease_expired_min"]
        and lease_expired >= released
    ):
        recs.append({
            "id": "lease_tuning",
            "severity": "warning",
            "message": (
                f"{lease_expired} redelivery(ies) came from lease expiry "
                f"vs {released} voluntary release(s)"
                + (
                    f" with {heartbeat_errors} heartbeat error(s)"
                    if heartbeat_errors
                    else ""
                )
                + "; raise --lease or shorten the heartbeat interval so "
                "healthy workers keep their claims."
            ),
            "evidence": {
                "redeliveries_lease_expired": lease_expired,
                "redeliveries_released": released,
                "heartbeat_errors": heartbeat_errors,
            },
        })

    quarantines = tax.get("quarantines", {})
    poison = quarantines.get("poison_payload", 0)
    releases = tax.get("releases", 0)
    if (
        poison >= thresholds["poison_min"]
        and releases >= thresholds["released_min"]
    ):
        recs.append({
            "id": "max_attempts_tuning",
            "severity": "warning",
            "message": (
                f"{releases} payload release(s) ended in {poison} poison "
                "quarantine(s): the redelivery budget is being spent on "
                "undecodable payloads. Inspect the quarantine directory; "
                "if corruption is transient, raise --max-attempts, "
                "otherwise fix the producer."
            ),
            "evidence": {
                "releases": releases,
                "quarantines_poison_payload": poison,
            },
        })

    exhausted = quarantines.get("attempts_exhausted", 0)
    if exhausted >= thresholds["attempts_exhausted_min"]:
        recs.append({
            "id": "attempts_exhausted",
            "severity": "warning",
            "message": (
                f"{exhausted} task(s) burned their full attempt budget "
                "before quarantine; inspect those jobs for crash loops "
                "before raising --max-attempts."
            ),
            "evidence": {"quarantines_attempts_exhausted": exhausted},
        })

    hit_rates = cache.get("hit_rates", {})
    lookups = cache.get("lookups", {})
    for tier in sorted(hit_rates):
        if not tier.startswith("disk"):
            continue
        rate = hit_rates[tier]
        seen = lookups.get(tier, 0)
        if (
            seen >= thresholds["cache_lookups_min"]
            and rate < thresholds["cache_hit_rate_max"]
        ):
            recs.append({
                "id": f"disk_cache_sizing:{tier}",
                "severity": "info",
                "message": (
                    f"cache tier {tier} hit only {rate:.0%} of {seen} "
                    "lookup(s); raise --disk-max-entries/--disk-max-bytes "
                    "so warm results survive eviction."
                ),
                "evidence": {"tier": tier, "hit_rate": rate,
                             "lookups": seen},
            })

    queue_wait = latency.get("queue_wait", {})
    solve = latency.get("solve", {})
    wait_p50 = queue_wait.get("p50_s", 0.0)
    solve_p50 = solve.get("p50_s", 0.0)
    if (
        queue_wait.get("count", 0) >= thresholds["queue_wait_count_min"]
        and solve.get("count", 0) > 0
        and solve_p50 > 0
        and wait_p50 > thresholds["queue_wait_ratio"] * solve_p50
    ):
        recs.append({
            "id": "worker_scaling",
            "severity": "info",
            "message": (
                f"median queue wait {wait_p50:.3f}s is more than "
                f"{thresholds['queue_wait_ratio']:.0f}x the median solve "
                f"time {solve_p50:.3f}s over {queue_wait['count']} "
                "sample(s); add workers (or raise --workers) to drain "
                "the queue faster."
            ),
            "evidence": {
                "queue_wait_p50_s": wait_p50,
                "solve_p50_s": solve_p50,
                "queue_wait_count": queue_wait.get("count", 0),
            },
        })

    restarts = tax.get("worker_restarts", 0)
    slot_quarantines = tax.get("slot_quarantines", 0)
    if (
        slot_quarantines >= thresholds["slot_quarantine_min"]
        or restarts >= thresholds["worker_restart_min"]
    ):
        recs.append({
            "id": "crash_loop",
            "severity": "warning",
            "message": (
                f"the supervisor restarted workers {restarts} time(s) and "
                f"quarantined {slot_quarantines} slot(s); workers are "
                "dying repeatedly. Check the quarantine directory for the "
                "poisonous task a crash loop chases, and worker stderr "
                "for OOM kills, before re-enabling the slots."
            ),
            "evidence": {
                "worker_restarts": restarts,
                "slot_quarantines": slot_quarantines,
            },
        })

    sheds = tax.get("sheds", {})
    shed_total = sum(sheds.values())
    if shed_total >= thresholds["shed_min"]:
        recs.append({
            "id": "admission_shedding",
            "severity": "info",
            "message": (
                f"{shed_total} submission(s) were shed "
                f"({', '.join(f'{k}={v}' for k, v in sorted(sheds.items()))}); "
                "raise --max-load / per-tenant quotas or add capacity if "
                "this load is expected."
            ),
            "evidence": {"sheds": dict(sorted(sheds.items()))},
        })

    return recs


def _reason_class(reason: str) -> str:
    """Collapse free-text quarantine reasons into stable classes."""
    text = (reason or "").lower()
    if "deserialize" in text or "poison" in text or "pickle" in text:
        return "poison_payload"
    if "attempt" in text or "exhaust" in text or "budget" in text:
        return "attempts_exhausted"
    return "other"


def render_report(report: dict) -> str:
    """Human-readable rendering of an :func:`analyze_trace` report."""
    lines: list[str] = []
    out = lines.append
    out(f"repro doctor — {report['events']} events from "
        f"{len(report['workers'])} worker(s)")
    out("")
    out("Event counts:")
    for name, count in report["event_counts"].items():
        out(f"  {name:<18} {count}")
    tax = report["taxonomy"]
    out("")
    out("Failure taxonomy:")
    out(f"  redeliveries       lease_expired={tax['redeliveries']['lease_expired']} "
        f"released={tax['redeliveries']['released']}")
    out(f"  requeue sweeps     moved {tax['requeue_sweep_moves']} task(s)")
    out(f"  voluntary releases {tax['releases']}")
    out(f"  heartbeat errors   {tax['heartbeat_errors']}")
    if tax.get("worker_restarts") or tax.get("slot_quarantines"):
        out(f"  worker restarts    {tax.get('worker_restarts', 0)} "
            f"(slots quarantined: {tax.get('slot_quarantines', 0)})")
    for label, table in (
        ("retries", tax["retries"]),
        ("quarantines", tax["quarantines"]),
        ("sheds", tax["sheds"]),
        ("deadline_exceeded", tax["deadline_exceeded"]),
        ("degraded", tax["degraded"]),
    ):
        if table:
            out(f"  {label}:")
            for key, count in table.items():
                out(f"    {key:<28} {count}")
    out(f"  job failures       {tax['job_failures']}")
    out("")
    out("Latency (seconds):")
    for stage, summary in report["latency"].items():
        out(f"  {stage:<16} n={summary['count']:<5} "
            f"p50={summary['p50_s']:.4f} p99={summary['p99_s']:.4f} "
            f"total={summary['total_s']:.3f}")
    cache = report["cache"]
    if cache["tier_hits"] or cache["hit_rates"]:
        out("")
        out("Cache:")
        for tier, hits in cache["tier_hits"].items():
            out(f"  hits[{tier}] = {hits}")
        for tier, rate in cache["hit_rates"].items():
            out(f"  hit_rate[{tier}] = {rate:.2%}")
    spans = report.get("spans") or {}
    if spans.get("span_events"):
        out("")
        out(f"Spans: {spans['span_events']} span-bearing event(s), "
            f"{spans['traced_jobs']} traced job(s), "
            f"max depth {spans['max_depth']}")

        def walk(node: dict, indent: int) -> None:
            label = node["event"]
            extra = []
            if node.get("worker"):
                extra.append(str(node["worker"]))
            if node.get("fingerprint"):
                extra.append(node["fingerprint"])
            if node.get("seconds") is not None:
                extra.append(f"{node['seconds']:.4f}s")
            if node.get("annotations"):
                extra.append("+" + ",".join(node["annotations"]))
            out("  " * indent + f"  {label} [{node['span_id'][:8]}]"
                + (" " + " ".join(extra) if extra else ""))
            for child in node.get("children", ()):
                walk(child, indent + 1)

        for tree in spans.get("trees", ())[:5]:
            walk(tree, 0)
    offenders = report["offenders"]
    if offenders["jobs"]:
        out("")
        out("Top-offender jobs:")
        for entry in offenders["jobs"]:
            out(f"  {entry['job'][:40]:<42} trouble={entry['trouble_score']}")
    if offenders["workers"]:
        out("")
        out("Workers:")
        for w in offenders["workers"]:
            out(f"  {w['worker']:<28} completed={w['completed']} "
                f"failed={w['failed']} quarantined={w['quarantined']} "
                f"released={w['released']} hb_err={w['heartbeat_errors']} "
                f"broker_err={w['broker_errors']}")
    if report["timeline"]:
        out("")
        out("Incident timeline:")
        for entry in report["timeline"][:50]:
            what = entry.get("reason", "")
            who = entry.get("worker", "")
            ref = entry.get("task_id") or entry.get("fingerprint") or ""
            attempt = entry.get("attempt")
            tag = f" attempt={attempt}" if attempt is not None else ""
            out(f"  {entry['ts']:.3f} {entry['event']:<18} {ref[:16]:<16} "
                f"{who}{tag} {what}".rstrip())
        if len(report["timeline"]) > 50:
            out(f"  ... {len(report['timeline']) - 50} more")
    if "recommendations" in report:
        out("")
        recs = report["recommendations"]
        if recs:
            out("Recommendations:")
            for rec in recs:
                out(f"  [{rec['severity']}] {rec['id']}")
                out(f"    {rec['message']}")
                evidence = ", ".join(
                    f"{k}={v}" for k, v in rec["evidence"].items()
                )
                out(f"    evidence: {evidence}")
        else:
            out("Recommendations: none — trace looks healthy.")
    return "\n".join(lines) + "\n"


def main_doctor(paths, as_json: bool = False,
                recommend_flag: bool = False) -> str:
    """The ``repro doctor`` entry point body (CLI wires argv to this)."""
    report = analyze_trace(list(paths))
    if recommend_flag:
        report["recommendations"] = recommend(report)
    if as_json:
        return json.dumps(report, indent=2, sort_keys=False) + "\n"
    return render_report(report)
