"""Live trace ingestion: tail fleet traces into rolling-window stats.

The doctor (:mod:`repro.obs.doctor`) re-reads whole trace files after
a run; this module turns the same JSONL streams into a **live control
surface**:

* :class:`TraceFollower` — incremental tail over one or more trace
  files.  Each file gets a resumable byte cursor; a partially written
  last line is carried in a buffer until its newline arrives (writers
  are line-atomic, but the reader may race the ``os.write``);
  truncation and size-based rotation (``<path>`` → ``<path>.1``, see
  :class:`~repro.obs.trace.TraceWriter`) are detected by a shrinking
  size, in which case the rotated segment's unread tail is drained
  before the cursor resets.  Pre-existing rotated/compressed segments
  (``<path>.1``, ``<path>.1.gz``) are read once up front.  Each
  ``poll()`` returns only the *new* events, merged across files in
  ``(ts, writer, mono)`` order — no full re-read between refreshes.
* :class:`LiveAggregator` — maintains the doctor's headline stats
  incrementally, O(delta) per ``feed``: throughput and SLO
  deadline-miss burn rate over a rolling window, per-stage latency
  percentiles via fixed-bucket streaming histograms
  (:class:`~repro.obs.metrics.Histogram`), the failure taxonomy with
  voluntary-release vs lease-expiry redelivery attribution, queue
  depth, worker liveness, hot jobs, and a recent-incident ring.
* :func:`render_top` / :func:`main_top` — the ``repro top`` terminal
  dashboard: plain ANSI redraw (no curses), plus ``--once``/``--json``
  snapshot modes for scripting and CI.

Traces without span fields (pre-span writers) feed through unchanged —
the aggregator keys on fingerprints/task ids and timestamps, and span
counters simply stay at zero.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import Counter, deque

from repro.obs.metrics import Histogram
from repro.obs.trace import _merge_key, parse_trace_bytes, read_trace

#: Schema tag of `repro top --json` snapshots.
TOP_SCHEMA = "gecco-top/1"

#: Events surfaced in the incident ring (newest last).
_INCIDENT_EVENTS = (
    "released",
    "quarantined",
    "requeued",
    "shed",
    "deadline_exceeded",
    "degraded",
    "worker_restart",
    "supervisor_slot_quarantined",
)


class _Cursor:
    """One followed file: byte offset, torn-line carry, rotation state."""

    __slots__ = ("path", "offset", "buffer", "primed")

    def __init__(self, path: str, offset: int = 0):
        self.path = path
        self.offset = offset
        self.buffer = b""
        self.primed = False


class TraceFollower:
    """Incrementally tail one or more trace files as an ordered stream.

    Parameters
    ----------
    paths:
        Trace files to follow (they may not exist yet — a file appears
        when its writer first emits).
    cursors:
        Optional ``{path: byte_offset}`` mapping (from a previous
        follower's :meth:`cursors`) to resume from instead of reading
        from the start.  Resumed cursors skip the pre-existing rotated
        segments too (they were read by the original follower).
    """

    def __init__(self, paths, cursors: dict | None = None):
        self._cursors = []
        for path in paths:
            cursor = _Cursor(str(path))
            if cursors is not None and str(path) in cursors:
                cursor.offset = int(cursors[str(path)])
                cursor.primed = True
            self._cursors.append(cursor)

    def cursors(self) -> dict:
        """Resumable ``{path: byte_offset}`` snapshot of the cursors."""
        return {cursor.path: cursor.offset for cursor in self._cursors}

    def _prime(self, cursor: _Cursor) -> list[dict]:
        """First poll of one file: drain pre-existing rotated segments."""
        cursor.primed = True
        events: list[dict] = []
        for rotated in (cursor.path + ".1.gz", cursor.path + ".1"):
            if os.path.exists(rotated):
                events.extend(read_trace(rotated))
        return events

    def _drain_rotated_tail(self, cursor: _Cursor) -> list[dict]:
        """The main file shrank: finish the rotated generation first.

        Size-based rotation renames the file to ``<path>.1``, so the
        bytes past our cursor live there now; anything already in the
        carry buffer is contiguous with that tail.  A bare truncation
        (no ``.1``, or one shorter than our offset) just drops the
        carry buffer — those bytes are gone.
        """
        events: list[dict] = []
        rotated = cursor.path + ".1"
        try:
            size = os.stat(rotated).st_size
        except OSError:
            size = -1
        if size >= cursor.offset:
            try:
                with open(rotated, "rb") as fh:
                    fh.seek(cursor.offset)
                    tail = fh.read()
            except OSError:
                tail = b""
            events.extend(parse_trace_bytes(cursor.buffer + tail))
        cursor.buffer = b""
        cursor.offset = 0
        return events

    def _poll_one(self, cursor: _Cursor) -> list[dict]:
        events: list[dict] = []
        if not cursor.primed:
            events.extend(self._prime(cursor))
        try:
            size = os.stat(cursor.path).st_size
        except OSError:
            return events
        if size < cursor.offset:
            events.extend(self._drain_rotated_tail(cursor))
        try:
            with open(cursor.path, "rb") as fh:
                fh.seek(cursor.offset)
                chunk = fh.read()
        except OSError:
            return events
        cursor.offset += len(chunk)
        data = cursor.buffer + chunk
        head, newline, tail = data.rpartition(b"\n")
        if newline:
            cursor.buffer = tail
            events.extend(parse_trace_bytes(head))
        else:
            cursor.buffer = data
        return events

    def poll(self) -> list[dict]:
        """New events since the last poll, merged in stream order."""
        events: list[dict] = []
        for cursor in self._cursors:
            events.extend(self._poll_one(cursor))
        events.sort(key=_merge_key)
        return events


def _span_depth(event: dict, parents: dict) -> int:
    """Tree depth of one span-bearing event (root submit span = 1)."""
    depth, parent = 1, event.get("parent_span")
    while parent is not None and depth < 64:
        depth += 1
        parent = parents.get(parent)
    return depth


class LiveAggregator:
    """Rolling-window doctor stats maintained incrementally.

    ``feed(events)`` costs O(len(events)); ``snapshot()`` costs
    O(window contents + buckets), never O(trace).  Timestamps come
    from the events themselves (not the wall clock), so replaying a
    recorded trace yields the same snapshot the live run showed.
    """

    def __init__(self, window: float = 60.0):
        self.window = float(window)
        self.events = 0
        self.last_ts = 0.0
        self.event_counts: Counter = Counter()
        self._lock = threading.Lock()
        self._stage_hist: dict[str, Histogram] = {}
        #: queue key (task_id or fingerprint) -> queued-at wall ts.
        self._queued_at: dict[str, float] = {}
        self._released_budget: Counter = Counter()
        self.taxonomy: Counter = Counter()
        self.quarantine_reasons: Counter = Counter()
        self.shed_causes: Counter = Counter()
        self.workers: dict[str, dict] = {}
        self._done_window: deque = deque()      # (ts, ok)
        self._miss_window: deque = deque()      # ts of deadline misses
        self._incidents: deque = deque(maxlen=32)
        self._hot: Counter = Counter()
        self.span_events = 0
        self.max_span_depth = 0
        self._span_parents: dict[str, str | None] = {}
        self._trace_ids: set = set()

    def _hist(self, stage: str) -> Histogram:
        hist = self._stage_hist.get(stage)
        if hist is None:
            hist = Histogram(stage, "", self._lock)
            self._stage_hist[stage] = hist
        return hist

    def feed(self, events) -> int:
        """Absorb a batch of trace events; returns how many were fed."""
        fed = 0
        for event in events:
            self._feed_one(event)
            fed += 1
        return fed

    def _feed_one(self, event: dict) -> None:
        name = event.get("event")
        if not isinstance(name, str):
            return
        ts = float(event.get("ts", 0.0) or 0.0)
        self.events += 1
        self.last_ts = max(self.last_ts, ts)
        self.event_counts[name] += 1
        worker = event.get("worker")
        if worker is not None:
            record = self.workers.setdefault(
                str(worker),
                {"pid": event.get("pid"), "last_ts": ts, "exited": False, "done": 0},
            )
            record["last_ts"] = max(record["last_ts"], ts)
        span_id = event.get("span_id")
        if span_id is not None or event.get("parent_span") is not None:
            self.span_events += 1
            if span_id is not None:
                self._span_parents[span_id] = event.get("parent_span")
            self.max_span_depth = max(
                self.max_span_depth, _span_depth(event, self._span_parents)
            )
        trace_id = event.get("trace_id")
        if trace_id is not None and len(self._trace_ids) < 100_000:
            self._trace_ids.add(trace_id)
        fingerprint = event.get("fingerprint")
        if fingerprint is not None:
            self._hot[str(fingerprint)[:12]] += 1
        key = event.get("task_id") or fingerprint
        if name == "queued" and key is not None:
            self._queued_at[key] = ts
        elif name == "claimed":
            if key is not None:
                queued_ts = self._queued_at.pop(key, None)
                if queued_ts is not None and ts >= queued_ts:
                    self._hist("queue_wait").observe(ts - queued_ts)
            attempt = event.get("attempt") or 0
            if attempt > 0:
                task_id = event.get("task_id")
                if task_id is not None and self._released_budget.get(task_id, 0) > 0:
                    self._released_budget[task_id] -= 1
                    self.taxonomy["redeliveries_released"] += 1
                else:
                    self.taxonomy["redeliveries_lease_expired"] += 1
        elif name in ("artifact_build", "solve"):
            seconds = event.get("seconds")
            if isinstance(seconds, (int, float)):
                self._hist(name).observe(float(seconds))
        elif name == "done":
            # A queued job may die (shed/quarantine) without a claim;
            # drop its pending queue mark so depth doesn't drift.
            if key is not None:
                self._queued_at.pop(key, None)
            ok = event.get("ok", event.get("error") is None)
            seconds = event.get("seconds")
            if isinstance(seconds, (int, float)):
                self._hist("job_total").observe(float(seconds))
            self._done_window.append((ts, bool(ok)))
            if not ok:
                self.taxonomy["job_failures"] += 1
            if worker is not None:
                self.workers[str(worker)]["done"] += 1
        elif name == "released":
            task_id = event.get("task_id")
            if task_id is not None:
                self._released_budget[task_id] += 1
            self.taxonomy["releases"] += 1
        elif name == "quarantined":
            self.taxonomy["quarantines"] += 1
            self.quarantine_reasons[_classify_reason(event.get("reason"))] += 1
        elif name == "shed":
            if key is not None:
                self._queued_at.pop(key, None)
            self.taxonomy["sheds"] += 1
            self.shed_causes[str(event.get("cause") or "other")] += 1
        elif name == "deadline_exceeded":
            if key is not None:
                self._queued_at.pop(key, None)
            self.taxonomy["deadline_exceeded"] += 1
            self._miss_window.append(ts)
        elif name == "retry":
            self.taxonomy["retries"] += 1
        elif name == "degraded":
            self.taxonomy["degraded"] += 1
        elif name == "heartbeat":
            if event.get("error") is not None:
                self.taxonomy["heartbeat_errors"] += 1
        elif name == "requeued":
            self.taxonomy["requeue_sweep_moves"] += int(event.get("count", 1) or 1)
        elif name == "worker_restart":
            self.taxonomy["worker_restarts"] += 1
        elif name == "supervisor_slot_quarantined":
            self.taxonomy["slot_quarantines"] += 1
        elif name == "worker_exit":
            if worker is not None:
                self.workers[str(worker)]["exited"] = True
                stats = event.get("stats")
                if isinstance(stats, dict):
                    self.workers[str(worker)]["stats"] = {
                        k: v for k, v in stats.items() if not isinstance(v, dict)
                    }
        if name in _INCIDENT_EVENTS or (
            name == "done" and event.get("ok") is False
        ) or (name == "heartbeat" and event.get("error") is not None):
            self._incidents.append(
                {
                    "ts": ts,
                    "event": name,
                    "worker": worker,
                    "detail": event.get("reason")
                    or event.get("cause")
                    or event.get("error")
                    or event.get("stage")
                    or (f"count={event.get('count')}" if name == "requeued" else None)
                    or (
                        f"slot={event.get('slot')} exit={event.get('exitcode')}"
                        if name in ("worker_restart",
                                    "supervisor_slot_quarantined")
                        else None
                    ),
                    "task": (event.get("task_id") or "")[:12] or None,
                }
            )

    def _prune(self) -> None:
        cutoff = self.last_ts - self.window
        while self._done_window and self._done_window[0][0] < cutoff:
            self._done_window.popleft()
        while self._miss_window and self._miss_window[0] < cutoff:
            self._miss_window.popleft()

    def snapshot(self) -> dict:
        """JSON-ready rolling view (the ``repro top --json`` payload)."""
        self._prune()
        window_done = len(self._done_window)
        window_ok = sum(1 for _, ok in self._done_window if ok)
        window_misses = len(self._miss_window)
        stages = {}
        for stage, hist in sorted(self._stage_hist.items()):
            count = hist.count()
            if count:
                stages[stage] = {
                    "count": count,
                    "p50_s": hist.quantile(0.5),
                    "p99_s": hist.quantile(0.99),
                }
        workers = {}
        for name, record in sorted(self.workers.items()):
            workers[name] = {
                "pid": record.get("pid"),
                "last_seen_ts": record["last_ts"],
                "age_s": max(0.0, self.last_ts - record["last_ts"]),
                "alive": not record["exited"],
                "done": record["done"],
            }
        return {
            "schema": TOP_SCHEMA,
            "events": self.events,
            "window_s": self.window,
            "last_ts": self.last_ts,
            "throughput": {
                "window_done": window_done,
                "window_ok": window_ok,
                "window_errors": window_done - window_ok,
                "done_per_s": window_done / self.window if self.window else 0.0,
            },
            "queue_depth": len(self._queued_at),
            "stages": stages,
            "workers": workers,
            "taxonomy": {
                **{k: int(v) for k, v in sorted(self.taxonomy.items())},
                "quarantine_reasons": dict(sorted(self.quarantine_reasons.items())),
                "shed_causes": dict(sorted(self.shed_causes.items())),
            },
            "slo": {
                "window_deadline_misses": window_misses,
                "burn_rate": (
                    window_misses / (window_done + window_misses)
                    if (window_done + window_misses)
                    else 0.0
                ),
            },
            "spans": {
                "events_with_span": self.span_events,
                "traces": len(self._trace_ids),
                "max_depth": self.max_span_depth,
            },
            "hot_jobs": [
                {"fingerprint": fingerprint, "events": count}
                for fingerprint, count in self._hot.most_common(5)
            ],
            "incidents": list(self._incidents),
        }


def _classify_reason(reason) -> str:
    """Collapse quarantine reasons the way the doctor does."""
    text = str(reason or "")
    if "deserialize" in text:
        return "poison_payload"
    if "attempts" in text:
        return "attempts_exhausted"
    return "other"


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_top(snapshot: dict, color: bool = True) -> str:
    """Render one dashboard frame as plain text (ANSI when ``color``)."""
    bold = "\x1b[1m" if color else ""
    dim = "\x1b[2m" if color else ""
    red = "\x1b[31m" if color else ""
    reset = "\x1b[0m" if color else ""
    through = snapshot["throughput"]
    slo = snapshot["slo"]
    lines = [
        f"{bold}repro top{reset} — {snapshot['events']} events, "
        f"window {snapshot['window_s']:.0f}s, "
        f"{through['window_done']} done "
        f"({through['window_errors']} err, "
        f"{through['done_per_s']:.2f}/s), "
        f"queue depth {snapshot['queue_depth']}, "
        f"deadline burn {slo['burn_rate']:.0%}",
    ]
    spans = snapshot["spans"]
    if spans["events_with_span"]:
        lines.append(
            f"{dim}spans: {spans['traces']} traces, "
            f"{spans['events_with_span']} span events, "
            f"max depth {spans['max_depth']}{reset}"
        )
    if snapshot["stages"]:
        lines.append(f"{bold}stages{reset}")
        for stage, stats in snapshot["stages"].items():
            lines.append(
                f"  {stage:<16} n={stats['count']:<6} "
                f"p50={_fmt_seconds(stats['p50_s']):<8} "
                f"p99={_fmt_seconds(stats['p99_s'])}"
            )
    if snapshot["workers"]:
        lines.append(f"{bold}workers{reset}")
        for name, record in snapshot["workers"].items():
            state = "up" if record["alive"] else "exited"
            mark = "" if record["alive"] else dim
            lines.append(
                f"  {mark}{name:<28} {state:<7} done={record['done']:<5} "
                f"seen {record['age_s']:.1f}s ago{reset}"
            )
    if snapshot["hot_jobs"]:
        lines.append(f"{bold}hot jobs{reset}")
        for job in snapshot["hot_jobs"]:
            lines.append(f"  {job['fingerprint']:<14} {job['events']} events")
    taxonomy = {
        key: value
        for key, value in snapshot["taxonomy"].items()
        if isinstance(value, int) and value
    }
    if taxonomy:
        lines.append(
            f"{bold}taxonomy{reset} "
            + " ".join(f"{key}={value}" for key, value in taxonomy.items())
        )
    if snapshot["incidents"]:
        lines.append(f"{bold}incidents{reset} (newest last)")
        for incident in snapshot["incidents"][-8:]:
            where = f" [{incident['worker']}]" if incident.get("worker") else ""
            what = f": {incident['detail']}" if incident.get("detail") else ""
            lines.append(
                f"  {red}{incident['event']:<18}{reset}{where}{what}"
            )
    return "\n".join(lines)


def main_top(
    paths,
    once: bool = False,
    as_json: bool = False,
    interval: float = 1.0,
    window: float = 60.0,
    iterations: int | None = None,
    out=None,
) -> int:
    """The ``repro top`` entry point; returns a process exit code.

    ``--once`` polls the follower a single time (reading everything
    currently on disk) and prints one frame — with ``--json``, the
    :meth:`LiveAggregator.snapshot` dict, which is what CI asserts on.
    Otherwise: poll/feed/redraw every ``interval`` seconds until
    interrupted (or ``iterations`` frames, for tests).
    """
    out = out if out is not None else sys.stdout
    follower = TraceFollower(paths)
    aggregator = LiveAggregator(window=window)
    color = (not as_json) and hasattr(out, "isatty") and out.isatty()
    frame = 0
    try:
        while True:
            aggregator.feed(follower.poll())
            frame += 1
            snapshot = aggregator.snapshot()
            if as_json:
                print(json.dumps(snapshot, indent=2), file=out, flush=True)
            else:
                prefix = "" if once else "\x1b[H\x1b[2J"
                print(prefix + render_top(snapshot, color=color), file=out, flush=True)
            if once or (iterations is not None and frame >= iterations):
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
