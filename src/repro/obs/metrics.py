"""Lock-cheap metrics registry with a Prometheus-text ``/metrics`` endpoint.

The executor stack already counts everything that matters — scheduler
dispatches, affinity hits, cache tiers, admission sheds, requeues,
breaker state — but each component keeps its own ``stats()`` dict.
This module gives them one home:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  instrument kinds, each supporting label sets (``inc(1, worker="w0")``)
  behind a single registry lock held only for a dict update;
* :class:`MetricsRegistry` — creates instruments idempotently and
  renders the whole set in the Prometheus text exposition format
  (version 0.0.4: ``# HELP``/``# TYPE`` headers, ``le`` buckets with
  ``+Inf``, ``_sum``/``_count`` series);
* :func:`sync_executor_stats` / :func:`sync_worker_stats` — absorb the
  ad-hoc ``stats()`` dicts (executor scheduler/admission/broker/cache,
  per-worker snapshots, :class:`~repro.service.dist.worker.WorkerStats`)
  into gauges, called before every scrape so the endpoint always
  reflects live state;
* :class:`MetricsServer` — a daemon-thread ``http.server`` bound to
  ``--metrics-port`` on ``repro serve`` / ``repro worker`` that answers
  ``GET /metrics``.

Zero dependencies, and instruments are safe to update from any thread.
"""

from __future__ import annotations

import math
import threading

#: Default histogram bucket upper bounds (seconds) — spans the fast
#: cache-hit path (sub-millisecond) through multi-minute solves.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _format_labels(key: tuple, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: dict[tuple, float] = {}

    def inc(self, value: float = 1.0, /, **labels) -> None:
        """Add ``value`` (default 1) to the series for ``labels``."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current total for ``labels`` (0 when never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        """Exposition-format lines for this instrument."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_format_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


class Gauge:
    """A value that can go up and down, optionally per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: dict[tuple, float] = {}

    def set(self, value: float, /, **labels) -> None:
        """Replace the series for ``labels`` with ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = value

    def inc(self, value: float = 1.0, /, **labels) -> None:
        """Add ``value`` (default 1, may be negative) for ``labels``."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value for ``labels`` (0 when never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        """Exposition-format lines for this instrument."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_format_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        if not self._values:
            lines.append(f"{self.name} 0")
        return lines


class Histogram:
    """Cumulative-bucket histogram with fixed upper bounds.

    Bounds are fixed at construction (Prometheus convention), so an
    observation is one pass over a short tuple plus two adds — cheap
    enough for per-job timing in the hot path.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str, lock: threading.Lock, buckets=DEFAULT_BUCKETS
    ):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = lock
        # per label set: ([count per bound] + [+Inf count], sum, count)
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, /, **labels) -> None:
        """Record one observation of ``value`` for ``labels``."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = series
            counts, _, _ = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            counts[-1] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels) -> int:
        """Number of observations recorded for ``labels``."""
        series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def quantile(self, q: float, **labels) -> float | None:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Upper-bound rule (the streaming twin of the doctor's
        nearest-rank percentiles): the estimate is the upper bound of
        the first bucket whose cumulative count reaches rank
        ``ceil(q*n)``; observations past the largest finite bound
        report that bound.  ``None`` with no observations.  O(buckets)
        and O(1) memory — what makes rolling-window percentile
        refreshes O(delta) for the live dashboard.
        """
        series = self._series.get(_label_key(labels))
        if not series or series[2] == 0:
            return None
        counts, _, n = series
        rank = max(1, math.ceil(q * n))
        for i, bound in enumerate(self.buckets):
            if counts[i] >= rank:
                return bound
        return self.buckets[-1]

    def render(self) -> list[str]:
        """Exposition-format lines: ``_bucket``/``_sum``/``_count``."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        for key in sorted(self._series):
            counts, total, n = self._series[key]
            for i, bound in enumerate(self.buckets):
                le = 'le="%s"' % _format_value(bound)
                lines.append(
                    f"{self.name}_bucket{_format_labels(key, le)} {counts[i]}"
                )
            inf_le = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{_format_labels(key, inf_le)} {counts[-1]}"
            )
            lines.append(f"{self.name}_sum{_format_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_format_labels(key)} {n}")
        return lines


class MetricsRegistry:
    """A named set of instruments rendered as one Prometheus page.

    Instrument constructors are idempotent: asking for an existing name
    returns the existing instrument (and raises if the kind differs),
    so call sites do not need to coordinate registration order.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Create (or return the existing) :class:`Counter` ``name``."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Create (or return the existing) :class:`Gauge` ``name``."""
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        """Create (or return the existing) :class:`Histogram` ``name``."""
        return self._get(Histogram, name, help, buckets=buckets)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + "\n"


def _flatten(prefix: str, value, out: list):
    """Flatten a nested stats dict into (dotted_path, number) pairs."""
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}_{key}" if prefix else str(key), sub, out)
    elif isinstance(value, bool):
        out.append((prefix, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((prefix, float(value)))


def sync_executor_stats(registry: MetricsRegistry, stats: dict) -> None:
    """Mirror an executor ``stats()`` dict into the registry as gauges.

    Numeric leaves become ``repro_<dotted_path>`` gauges; the
    ``workers`` list (per-worker cache snapshots from the pool) becomes
    ``repro_worker_cache_<counter>{worker="N"}`` series; non-numeric
    leaves (mode strings, ``broker_error`` messages) become ``_info``
    gauges carrying the text as a label, the Prometheus idiom for
    string-valued state.
    """
    workers = stats.get("workers")
    scalar = {k: v for k, v in stats.items() if k != "workers"}
    pairs: list = []
    _flatten("", scalar, pairs)
    for path, value in pairs:
        registry.gauge(f"repro_{path}", "Executor stats mirror.").set(value)
    for key, value in scalar.items():
        if isinstance(value, str):
            registry.gauge(
                f"repro_{key}_info", "String-valued executor state."
            ).set(1.0, value=value)
    if isinstance(workers, dict):
        worker_items = list(workers.items())
    elif isinstance(workers, list):
        worker_items = list(enumerate(workers))
    else:
        worker_items = []
    if worker_items:
        gauge = registry.gauge(
            "repro_worker_cache", "Per-pool-worker cache counters."
        )
        for name, snapshot in worker_items:
            if not isinstance(snapshot, dict):
                continue
            pairs = []
            _flatten("", snapshot, pairs)
            for path, value in pairs:
                gauge.set(value, worker=str(name), counter=path)


def sync_worker_stats(registry: MetricsRegistry, stats) -> None:
    """Mirror one :class:`~repro.service.dist.worker.WorkerStats` into gauges.

    Accepts the dataclass or its ``as_dict()`` form; every counter
    becomes ``repro_worker_<name>{worker="<id>"}`` so a fleet of
    workers scraped by one collector stays distinguishable.
    """
    record = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    worker = str(record.pop("worker", "") or "")
    cache = record.pop("cache", {}) or {}
    for key, value in record.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            registry.gauge(
                f"repro_worker_{key}", "Worker loop lifetime counter."
            ).set(float(value), worker=worker)
    pairs: list = []
    _flatten("", cache, pairs)
    for path, value in pairs:
        registry.gauge(
            "repro_worker_cache", "Per-pool-worker cache counters."
        ).set(value, worker=worker, counter=path)


class MetricsServer:
    """A daemon-thread HTTP endpoint answering ``GET /metrics``.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to render per scrape.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        ``self.port``).
    refresh:
        Optional zero-argument callable run before each render —
        the hook :func:`sync_executor_stats` rides in on, so gauges
        mirror live executor state at scrape time rather than at
        server start.
    """

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 0, refresh=None):
        import http.server

        self.registry = registry
        self.refresh = refresh
        self.scrapes = 0
        server_self = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                if self.path.split("?")[0].rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    if server_self.refresh is not None:
                        server_self.refresh()
                    body = server_self.registry.render().encode("utf-8")
                except Exception as exc:
                    self.send_error(500, f"{type(exc).__name__}: {exc}")
                    return
                server_self.scrapes += 1
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet: scrapes are not news
                del args

        self._server = http.server.ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name=f"metrics-server:{self.port}",
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """The scrape URL, with the bound (possibly ephemeral) port."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and join the server thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
