"""``repro.obs`` — fleet observability: tracing, metrics, forensics.

The executor stack (:mod:`repro.service`) emits rich runtime signals —
scheduler and affinity counters, requeue/quarantine events, cache-tier
hits, selection stats, admission sheds, chaos outcomes — that used to
die in per-process ``stats()`` dicts the moment a worker exited.  This
package turns them into three durable, zero-dependency surfaces:

* :mod:`~repro.obs.trace` — **structured tracing**: a
  :class:`TraceWriter` appends one JSONL event per job-lifecycle
  transition (``submitted``/``queued``/``claimed``/``heartbeat``/
  ``requeued``/``released``/``quarantined``/``shed``/
  ``deadline_exceeded``/``cache_hit``/``artifact_build``/``solve``/
  ``done``/``worker_exit``) with wall and monotonic timestamps, job
  fingerprint, worker id and pid, attempt number, and per-stage
  timings.  Appends are line-atomic (one ``O_APPEND`` write per
  event), so any number of processes — pool workers, fleet workers on
  other hosts via a shared directory, the submitting executor — can
  interleave into one file that :mod:`~repro.obs.doctor` reassembles.
  Wired in with ``--trace PATH`` on ``repro batch``/``serve``/
  ``worker`` and ``trace=`` on
  :func:`~repro.service.batch.make_executor`.
* :mod:`~repro.obs.metrics` — **metrics**: a lock-cheap
  :class:`MetricsRegistry` (counters, gauges, histograms with fixed
  bucket bounds) rendered in the Prometheus text exposition format and
  scraped from a ``/metrics`` endpoint (:class:`MetricsServer`) on
  ``repro serve --metrics-port`` and ``repro worker --metrics-port``.
  :func:`sync_executor_stats` absorbs the ad-hoc executor ``stats()``
  dicts (scheduler, broker, admission, workers, cache tiers) into the
  registry on every scrape.
* :mod:`~repro.obs.doctor` — **failure forensics**: ``repro doctor
  <trace.jsonl ...>`` merges fleet traces and reports a failure
  taxonomy (quarantine/deadline/shed/retry by cause), top-offender
  jobs and workers, per-stage latency percentiles (queue wait vs
  artifact build vs solve), cache-tier hit rates, exact parent/child
  span trees, and a requeue/quarantine timeline — as JSON or
  human-readable text.  ``--recommend`` adds an evidence-backed
  tuning engine (:func:`recommend`) that cites the counts behind
  every suggestion.
* :mod:`~repro.obs.live` — **live monitoring**: a resumable
  :class:`TraceFollower` tails growing (and rotating) trace files by
  byte cursor, a :class:`LiveAggregator` folds the delta into
  rolling-window stats (streaming p50/p99 per stage, failure
  taxonomy, worker liveness, queue depth, deadline burn rate), and
  ``repro top`` renders the snapshot as an ANSI dashboard or
  ``--once --json`` machine output.

Since spans landed, every ``submit`` mints ``trace_id``/``span_id``
and the ids ride inside the pickled job through broker queues and
pool pipes, so one job's cross-process lifecycle reassembles as a
tree (``submitted`` → ``claimed`` → ``artifact_build``/``solve``)
rather than a flat timestamp ordering.

Tracing is **off-by-default-free**: with no tracer configured the hot
paths pay a ``None`` check, and with one configured results stay
byte-identical to an untraced run (tracing never touches computation —
enforced by the differential tests in ``tests/test_obs.py`` and the
``observability`` section of ``benchmarks/run_perf.py``).
"""

from repro.obs.doctor import analyze_trace, recommend, render_report
from repro.obs.live import (
    TOP_SCHEMA,
    LiveAggregator,
    TraceFollower,
    main_top,
    render_top,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsServer,
    sync_executor_stats,
    sync_worker_stats,
)
from repro.obs.trace import (
    TRACE_EVENTS,
    TRACE_SCHEMA,
    TraceWriter,
    merge_traces,
    new_span_id,
    new_trace_id,
    read_trace,
    span_scope,
    trace_segments,
)

__all__ = [
    "LiveAggregator",
    "MetricsRegistry",
    "MetricsServer",
    "TOP_SCHEMA",
    "TRACE_EVENTS",
    "TRACE_SCHEMA",
    "TraceFollower",
    "TraceWriter",
    "analyze_trace",
    "main_top",
    "merge_traces",
    "new_span_id",
    "new_trace_id",
    "read_trace",
    "recommend",
    "render_report",
    "render_top",
    "span_scope",
    "trace_segments",
    "sync_executor_stats",
    "sync_worker_stats",
]
