"""``repro.obs`` — fleet observability: tracing, metrics, forensics.

The executor stack (:mod:`repro.service`) emits rich runtime signals —
scheduler and affinity counters, requeue/quarantine events, cache-tier
hits, selection stats, admission sheds, chaos outcomes — that used to
die in per-process ``stats()`` dicts the moment a worker exited.  This
package turns them into three durable, zero-dependency surfaces:

* :mod:`~repro.obs.trace` — **structured tracing**: a
  :class:`TraceWriter` appends one JSONL event per job-lifecycle
  transition (``submitted``/``queued``/``claimed``/``heartbeat``/
  ``requeued``/``released``/``quarantined``/``shed``/
  ``deadline_exceeded``/``cache_hit``/``artifact_build``/``solve``/
  ``done``/``worker_exit``) with wall and monotonic timestamps, job
  fingerprint, worker id and pid, attempt number, and per-stage
  timings.  Appends are line-atomic (one ``O_APPEND`` write per
  event), so any number of processes — pool workers, fleet workers on
  other hosts via a shared directory, the submitting executor — can
  interleave into one file that :mod:`~repro.obs.doctor` reassembles.
  Wired in with ``--trace PATH`` on ``repro batch``/``serve``/
  ``worker`` and ``trace=`` on
  :func:`~repro.service.batch.make_executor`.
* :mod:`~repro.obs.metrics` — **metrics**: a lock-cheap
  :class:`MetricsRegistry` (counters, gauges, histograms with fixed
  bucket bounds) rendered in the Prometheus text exposition format and
  scraped from a ``/metrics`` endpoint (:class:`MetricsServer`) on
  ``repro serve --metrics-port`` and ``repro worker --metrics-port``.
  :func:`sync_executor_stats` absorbs the ad-hoc executor ``stats()``
  dicts (scheduler, broker, admission, workers, cache tiers) into the
  registry on every scrape.
* :mod:`~repro.obs.doctor` — **failure forensics**: ``repro doctor
  <trace.jsonl ...>`` merges fleet traces and reports a failure
  taxonomy (quarantine/deadline/shed/retry by cause), top-offender
  jobs and workers, per-stage latency percentiles (queue wait vs
  artifact build vs solve), cache-tier hit rates, and a
  requeue/quarantine timeline — as JSON or human-readable text.

Tracing is **off-by-default-free**: with no tracer configured the hot
paths pay a ``None`` check, and with one configured results stay
byte-identical to an untraced run (tracing never touches computation —
enforced by the differential tests in ``tests/test_obs.py`` and the
``observability`` section of ``benchmarks/run_perf.py``).
"""

from repro.obs.doctor import analyze_trace, render_report
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsServer,
    sync_executor_stats,
    sync_worker_stats,
)
from repro.obs.trace import (
    TRACE_EVENTS,
    TRACE_SCHEMA,
    TraceWriter,
    merge_traces,
    read_trace,
)

__all__ = [
    "MetricsRegistry",
    "MetricsServer",
    "TRACE_EVENTS",
    "TRACE_SCHEMA",
    "TraceWriter",
    "analyze_trace",
    "merge_traces",
    "read_trace",
    "render_report",
    "sync_executor_stats",
    "sync_worker_stats",
]
