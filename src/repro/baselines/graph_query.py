"""Baseline BL_Q: graph-query-based candidate computation (paper §VI-A).

BL_Q replaces GECCO's Step 1 with graph querying: the log's DFG is
stored in a graph database and queried for candidate groups with
class-level predicates, in the spirit of Cypher variable-length path
patterns.  We store the DFG in a :mod:`networkx` digraph (playing the
graph-database role) and provide a small query engine whose patterns
are bounded-length directed path expressions with node- and pair-level
predicates::

    PathQuery(min_length=1, max_length=5,
              node_predicate=...,          # e.g. class attribute filter
              forbidden_pairs={(a, b)})    # cannot-link

Because a DFG captures the log at the class level, BL_Q can only
express class-based constraints (BL1–BL3 in the evaluation); it knows
nothing about instances and performs no exclusive-candidate merging —
which is exactly why its candidate sets, and hence its groupings, are
subpar (Table VII).  Steps 2 and 3 are shared with GECCO.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import networkx as nx

from repro.constraints.sets import ConstraintSet, class_attribute_view
from repro.core.distance import DistanceFunction
from repro.core.gecco import AbstractionResult, StepTimings
from repro.core.abstraction import abstract_log
from repro.core.instances import InstanceIndex
from repro.core.selection import select_optimal_grouping
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog

import time


@dataclass
class PathQuery:
    """A Cypher-style variable-length path pattern over the DFG.

    Matches directed simple paths whose length (in nodes) lies in
    ``[min_length, max_length]``, every node satisfies
    ``node_predicate``, and no unordered node pair is in
    ``forbidden_pairs``.
    """

    min_length: int = 1
    max_length: int = 5
    node_predicate: Callable[[str], bool] | None = None
    forbidden_pairs: set[frozenset[str]] = field(default_factory=set)

    def admits_node(self, node: str) -> bool:
        """Whether ``node`` may appear in a match."""
        return self.node_predicate is None or self.node_predicate(node)

    def admits_pair(self, node_a: str, node_b: str) -> bool:
        """Whether the two nodes may co-occur in a match."""
        return frozenset({node_a, node_b}) not in self.forbidden_pairs


def dfg_to_graph(dfg: DirectlyFollowsGraph) -> "nx.DiGraph":
    """Load a DFG into the networkx 'graph database'."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.nodes)
    for (a, b), count in dfg.edge_counts.items():
        graph.add_edge(a, b, frequency=count)
    return graph


def query_candidates(
    graph: "nx.DiGraph", query: PathQuery
) -> set[frozenset[str]]:
    """Evaluate ``query``: node sets of all matching simple paths."""
    candidates: set[frozenset[str]] = set()

    def extend(path: list[str], members: set[str]) -> None:
        if len(path) >= query.min_length:
            candidates.add(frozenset(members))
        if len(path) >= query.max_length:
            return
        for successor in graph.successors(path[-1]):
            if successor in members or not query.admits_node(successor):
                continue
            if any(not query.admits_pair(successor, node) for node in members):
                continue
            path.append(successor)
            members.add(successor)
            extend(path, members)
            members.discard(successor)
            path.pop()

    for node in graph.nodes:
        if query.admits_node(node):
            extend([node], {node})
    return candidates


def query_from_constraints(
    log: EventLog, constraints: ConstraintSet
) -> PathQuery:
    """Translate BL_Q-compatible (class-based) constraints into a query.

    Supported: ``MaxGroupSize`` (path length bound), ``CannotLink``
    (forbidden pair), ``MaxDistinctClassAttribute`` with bound 1 (node
    predicate partitioning by the attribute is realized pairwise via
    forbidden pairs).  Other constraint kinds are outside BL_Q's scope
    and ignored — matching the paper's scoping of this baseline.
    """
    from repro.constraints.classbased import (
        CannotLink,
        MaxDistinctClassAttribute,
        MaxGroupSize,
    )

    max_length = len(log.classes)
    forbidden: set[frozenset[str]] = set()
    attributes = class_attribute_view(log)
    for constraint in constraints.class_based:
        if isinstance(constraint, MaxGroupSize):
            max_length = min(max_length, constraint.bound)
        elif isinstance(constraint, CannotLink):
            forbidden.add(frozenset({constraint.class_a, constraint.class_b}))
        elif isinstance(constraint, MaxDistinctClassAttribute):
            classes = sorted(log.classes)
            for i, cls_a in enumerate(classes):
                values_a = attributes.get(cls_a, {}).get(constraint.key, frozenset())
                for cls_b in classes[i + 1 :]:
                    values_b = attributes.get(cls_b, {}).get(
                        constraint.key, frozenset()
                    )
                    if len(values_a | values_b) > constraint.bound:
                        forbidden.add(frozenset({cls_a, cls_b}))
    return PathQuery(min_length=1, max_length=max_length, forbidden_pairs=forbidden)


def abstract_with_graph_query(
    log: EventLog,
    constraints: ConstraintSet,
    solver: str = "scipy",
    abstraction_strategy: str = "complete",
) -> AbstractionResult:
    """Run the full BL_Q pipeline: query → MIP selection → abstraction."""
    timings = StepTimings()
    instance_index = InstanceIndex(log)
    distance = DistanceFunction(log, instance_index)

    started = time.perf_counter()
    graph = dfg_to_graph(compute_dfg(log))
    query = query_from_constraints(log, constraints)
    candidates = query_candidates(graph, query)
    timings.candidates = time.perf_counter() - started

    started = time.perf_counter()
    selection = select_optimal_grouping(
        log,
        candidates,
        distance,
        min_groups=constraints.min_groups,
        max_groups=constraints.max_groups,
        backend=solver,
    )
    timings.selection = time.perf_counter() - started

    if not selection.feasible:
        return AbstractionResult(
            abstracted_log=log,
            grouping=None,
            distance=None,
            feasible=False,
            num_candidates=len(candidates),
            timings=timings,
            original_log=log,
        )

    started = time.perf_counter()
    abstracted = abstract_log(
        log, selection.grouping, instance_index, strategy=abstraction_strategy
    )
    timings.abstraction = time.perf_counter() - started
    return AbstractionResult(
        abstracted_log=abstracted,
        grouping=selection.grouping,
        distance=selection.objective,
        feasible=True,
        num_candidates=len(candidates),
        timings=timings,
        original_log=log,
    )
