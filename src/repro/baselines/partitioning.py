"""Baseline BL_P: spectral graph partitioning of the DFG (paper §VI-A).

BL_P partitions the DFG into a prescribed number of groups while
minimizing the (normalized) directly-follows weight of cut edges —
classic spectral partitioning per von Luxburg's tutorial:

1. build the symmetric weighted adjacency ``W`` from normalized
   directly-follows frequencies,
2. form the symmetric normalized Laplacian ``L = I - D^{-1/2} W D^{-1/2}``,
3. embed the classes into the ``k`` smallest eigenvectors,
4. cluster the (row-normalized) embedding with k-means.

The baseline supports only a strict grouping constraint (the number of
partitions); class- and instance-based constraints cannot be expressed,
which is the comparison's point.  A deterministic, seeded k-means with
farthest-point initialization is included so results are reproducible.
"""

from __future__ import annotations

import time

try:  # pragma: no cover - exercised by the numpy-absent CI smoke
    import numpy as np
except ImportError:  # pragma: no cover - the GECCO pipeline never needs this
    np = None

from repro.core.abstraction import abstract_log
from repro.core.gecco import AbstractionResult, StepTimings
from repro.core.grouping import Grouping
from repro.core.instances import InstanceIndex
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog
from repro.exceptions import GroupingError


def normalized_adjacency(dfg: DirectlyFollowsGraph, classes: list[str]) -> "np.ndarray":
    """Symmetric adjacency of normalized directly-follows frequencies."""
    if np is None:
        raise GroupingError(
            "the spectral-partitioning baseline requires numpy"
        )
    n = len(classes)
    index = {cls: position for position, cls in enumerate(classes)}
    matrix = np.zeros((n, n))
    max_count = max(dfg.edge_counts.values(), default=1)
    for (a, b), count in dfg.edge_counts.items():
        if a == b:
            continue
        weight = count / max_count
        i, j = index[a], index[b]
        matrix[i, j] += weight
        matrix[j, i] += weight
    return matrix


def spectral_embedding(adjacency: np.ndarray, dimensions: int) -> np.ndarray:
    """Rows of the ``dimensions`` smallest eigenvectors of the normalized Laplacian."""
    n = adjacency.shape[0]
    degrees = adjacency.sum(axis=1)
    # Guard isolated nodes: give them a self-degree so D^{-1/2} exists.
    degrees[degrees == 0] = 1.0
    inv_sqrt = np.diag(1.0 / np.sqrt(degrees))
    laplacian = np.eye(n) - inv_sqrt @ adjacency @ inv_sqrt
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    embedding = eigenvectors[:, order[:dimensions]]
    # Row-normalize (Ng-Jordan-Weiss) for stable k-means behavior.
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return embedding / norms


def kmeans(points: np.ndarray, k: int, seed: int = 0, iterations: int = 100) -> np.ndarray:
    """Deterministic k-means with farthest-point initialization.

    Returns an integer label per point; every cluster is guaranteed
    non-empty (empty clusters are reseeded with the point farthest from
    its centroid).
    """
    n = points.shape[0]
    if k <= 0 or k > n:
        raise GroupingError(f"cannot cluster {n} points into {k} clusters")
    rng = np.random.default_rng(seed)
    centroids = [points[int(rng.integers(n))]]
    while len(centroids) < k:
        distances = np.min(
            [np.linalg.norm(points - centroid, axis=1) for centroid in centroids],
            axis=0,
        )
        centroids.append(points[int(np.argmax(distances))])
    centers = np.array(centroids)

    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(distances, axis=1)
        # Reseed empty clusters with the worst-fitting point.
        for cluster in range(k):
            if not np.any(new_labels == cluster):
                residuals = np.linalg.norm(
                    points - centers[new_labels], axis=1
                )
                stray = int(np.argmax(residuals))
                new_labels[stray] = cluster
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
    return labels


def spectral_grouping(
    log: EventLog, num_groups: int, seed: int = 0
) -> Grouping:
    """Partition the log's classes into ``num_groups`` spectral clusters."""
    classes = sorted(log.classes)
    if num_groups > len(classes):
        raise GroupingError(
            f"cannot partition {len(classes)} classes into {num_groups} groups"
        )
    dfg = compute_dfg(log)
    adjacency = normalized_adjacency(dfg, classes)
    embedding = spectral_embedding(adjacency, min(num_groups, len(classes)))
    labels = kmeans(embedding, num_groups, seed=seed)
    groups: dict[int, set[str]] = {}
    for cls, label in zip(classes, labels):
        groups.setdefault(int(label), set()).add(cls)
    return Grouping(groups.values(), log.classes)


def abstract_with_partitioning(
    log: EventLog,
    num_groups: int,
    seed: int = 0,
    abstraction_strategy: str = "complete",
) -> AbstractionResult:
    """Run the full BL_P pipeline: spectral partition → abstraction."""
    timings = StepTimings()
    started = time.perf_counter()
    grouping = spectral_grouping(log, num_groups, seed=seed)
    timings.candidates = time.perf_counter() - started

    instance_index = InstanceIndex(log)
    started = time.perf_counter()
    abstracted = abstract_log(
        log, grouping, instance_index, strategy=abstraction_strategy
    )
    timings.abstraction = time.perf_counter() - started

    from repro.core.distance import DistanceFunction

    distance = DistanceFunction(log, instance_index)
    return AbstractionResult(
        abstracted_log=abstracted,
        grouping=grouping,
        distance=distance.grouping_distance(grouping),
        feasible=True,
        num_candidates=num_groups,
        timings=timings,
        original_log=log,
    )
