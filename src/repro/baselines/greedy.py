"""Baseline BL_G: greedy agglomerative abstraction (paper §VI-A).

BL_G starts from the singleton grouping and repeatedly merges the pair
of groups whose union yields the lowest overall grouping distance,
provided the merged group violates no constraint; it stops when no
merge improves the total distance.  Working directly on the event log,
it *can* evaluate instance-based constraints (unlike BL_Q and BL_P),
but its hill-climbing nature gets stuck in local optima — the
comparison against GECCO's global MIP optimum is the point of this
baseline (Table VII).

Grouping constraints cannot be enforced by the iterative strategy and
are rejected.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from repro.constraints.sets import ConstraintSet
from repro.core.abstraction import abstract_log
from repro.core.checker import GroupChecker
from repro.core.distance import DistanceFunction
from repro.core.gecco import AbstractionResult, StepTimings
from repro.core.grouping import Grouping
from repro.core.instances import InstanceIndex
from repro.eventlog.events import EventLog
from repro.exceptions import ConstraintError


@dataclass
class GreedyStats:
    """Bookkeeping of a greedy run."""

    merges: int = 0
    merge_candidates_evaluated: int = 0
    iterations: int = 0


def greedy_grouping(
    log: EventLog,
    constraints: ConstraintSet,
    checker: GroupChecker | None = None,
    distance: DistanceFunction | None = None,
) -> tuple[Grouping, GreedyStats]:
    """Compute BL_G's grouping by iterative best-merge hill climbing."""
    if constraints.grouping:
        raise ConstraintError(
            "the greedy baseline cannot enforce grouping constraints "
            f"({'; '.join(c.describe() for c in constraints.grouping)})"
        )
    checker = checker or GroupChecker(log, constraints)
    distance = distance or DistanceFunction(log, checker.instances)
    stats = GreedyStats()

    groups: list[frozenset[str]] = [frozenset([cls]) for cls in sorted(log.classes)]
    # The greedy strategy starts from the singleton grouping; when that
    # starting point already violates the constraints there is nothing
    # to repair by merging (merges only grow groups), so the problem is
    # unsolvable for BL_G — this is why the paper reports BL_G solving
    # fewer problems than GECCO's configurations.
    violating = [group for group in groups if not checker.holds(group)]
    if violating:
        raise ConstraintError(
            "greedy baseline cannot start: singleton groups violate the "
            f"constraints for classes {sorted(next(iter(g)) for g in violating)}"
        )
    current_cost = sum(distance.group_distance(group) for group in groups)

    while True:
        stats.iterations += 1
        best_delta = 0.0
        best_pair: tuple[int, int] | None = None
        for i, j in itertools.combinations(range(len(groups)), 2):
            merged = groups[i] | groups[j]
            stats.merge_candidates_evaluated += 1
            # Merging classes that never co-occur is allowed here only
            # when the log still gives the merged group instances
            # (mirrors GECCO's occurs check in a weaker, greedy form).
            delta = (
                distance.group_distance(merged)
                - distance.group_distance(groups[i])
                - distance.group_distance(groups[j])
            )
            if delta < best_delta - 1e-12:
                if checker.holds(merged):
                    best_delta = delta
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        merged = groups[i] | groups[j]
        groups = [
            group for position, group in enumerate(groups) if position not in (i, j)
        ]
        groups.append(merged)
        current_cost += best_delta
        stats.merges += 1

    return Grouping(groups, log.classes), stats


def abstract_with_greedy(
    log: EventLog,
    constraints: ConstraintSet,
    abstraction_strategy: str = "complete",
) -> AbstractionResult:
    """Run the full BL_G pipeline: greedy merging → abstraction."""
    timings = StepTimings()
    instance_index = InstanceIndex(log)
    checker = GroupChecker(log, constraints, instance_index)
    distance = DistanceFunction(log, instance_index)

    started = time.perf_counter()
    grouping, _stats = greedy_grouping(log, constraints, checker, distance)
    timings.candidates = time.perf_counter() - started

    started = time.perf_counter()
    abstracted = abstract_log(
        log, grouping, instance_index, strategy=abstraction_strategy
    )
    timings.abstraction = time.perf_counter() - started
    return AbstractionResult(
        abstracted_log=abstracted,
        grouping=grouping,
        distance=distance.grouping_distance(grouping),
        feasible=True,
        num_candidates=len(grouping),
        timings=timings,
        original_log=log,
    )
