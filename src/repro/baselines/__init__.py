"""Baselines of the paper's evaluation: BL_Q, BL_P and BL_G."""

from repro.baselines.graph_query import (
    PathQuery,
    abstract_with_graph_query,
    query_candidates,
    query_from_constraints,
)
from repro.baselines.greedy import GreedyStats, abstract_with_greedy, greedy_grouping
from repro.baselines.partitioning import (
    abstract_with_partitioning,
    kmeans,
    spectral_grouping,
)

__all__ = [
    "PathQuery",
    "abstract_with_graph_query",
    "query_candidates",
    "query_from_constraints",
    "GreedyStats",
    "abstract_with_greedy",
    "greedy_grouping",
    "abstract_with_partitioning",
    "kmeans",
    "spectral_grouping",
]
