"""Presolver: optimality-preserving reductions of the Step-2 program.

Three reductions shrink a weighted set-partitioning program before it
reaches a solver, each with a replayable *certificate* entry proving it
preserves the set of optimal solutions:

* **duplicate-column merge** — candidates with an identical class set
  keep only the cheapest copy (first in order on cost ties).  Safe
  because any solution using a pricier duplicate is improved (or left
  equal) by swapping in the kept copy.
* **forced singleton fixing** — a class covered by exactly one
  candidate forces that candidate into *every* feasible partition; the
  candidate is fixed, its classes leave the universe, and every
  candidate overlapping it (which could never be selected alongside it)
  is dropped.  Iterated to a fixpoint.  This preserves the feasible set
  exactly, so it is safe under any Eq. 5 cardinality bound — the fixed
  groups simply count toward the bound.
* **dominated-group elimination** — a multi-class candidate ``g`` is
  dropped when every one of its classes has a singleton candidate and
  the singletons' total cost is *strictly* below ``cost(g)``: any
  partition containing ``g`` is strictly improved by the singleton
  split, so no optimal solution contains ``g``.  The split increases
  the group count, so this reduction is only applied when no
  ``max_groups`` bound is active (a larger count can never hurt a
  ``min_groups`` bound).

Strict inequalities (with a small float margin) matter: eliminating a
candidate that merely *ties* an alternative could change which of
several equally-optimal groupings the backend returns, breaking the
byte-identity contract with the monolithic solve.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

#: Float margin for the strict-domination test: ``cover + MARGIN < cost``.
DOMINATION_MARGIN = 1e-9


@dataclass(frozen=True)
class Reduction:
    """One certificate entry: a reduction plus its justification.

    ``kind`` is ``"duplicate"``, ``"forced"``, or ``"dominated"``;
    ``group`` the candidate concerned (removed, or fixed for
    ``"forced"``); ``reason`` carries the kind-specific evidence that
    :func:`verify_certificate` replays.
    """

    kind: str
    group: tuple[str, ...]
    cost: float
    reason: tuple[tuple[str, object], ...] = ()

    def reason_dict(self) -> dict:
        """The justification payload as a mapping."""
        return dict(self.reason)


@dataclass
class PresolveOutcome:
    """Residual program plus everything the presolver decided.

    ``fixed`` groups are part of every feasible partition of the
    original program; the residual ``classes``/``candidates``/``costs``
    describe what is left to optimize.  ``infeasible_reason`` is set
    when fixing exposed an uncoverable class (the program has no
    feasible partition at all).
    """

    classes: tuple[str, ...]
    candidates: list[frozenset[str]]
    costs: list[float]
    fixed: list[frozenset[str]] = field(default_factory=list)
    fixed_costs: list[float] = field(default_factory=list)
    reductions: list[Reduction] = field(default_factory=list)
    infeasible_reason: str | None = None

    def counts(self) -> dict[str, int]:
        """Reduction counters by kind (for :class:`SelectionStats`)."""
        tally = {"duplicates_merged": 0, "forced_fixed": 0, "dominated_removed": 0}
        kinds = {"duplicate": "duplicates_merged", "forced": "forced_fixed",
                 "dominated": "dominated_removed"}
        for reduction in self.reductions:
            tally[kinds[reduction.kind]] += 1
        return tally


def presolve(
    universe: Sequence[str],
    candidates: Sequence[frozenset[str]],
    costs: Sequence[float],
    allow_domination: bool = True,
) -> PresolveOutcome:
    """Reduce a set-partitioning program, preserving its optimal set.

    ``allow_domination`` must be ``False`` when an Eq. 5 ``max_groups``
    bound is active (see the module docstring).  Candidates must all be
    subsets of ``universe``; classes without any covering candidate are
    reported via ``infeasible_reason``.
    """
    reductions: list[Reduction] = []

    # Duplicate-column merge (identical class sets keep the cheapest).
    best_of: dict[frozenset[str], int] = {}
    for position, (group, cost) in enumerate(zip(candidates, costs)):
        kept = best_of.get(group)
        if kept is None or cost < costs[kept]:
            best_of[group] = position
    live_candidates: list[frozenset[str]] = []
    live_costs: list[float] = []
    for position, (group, cost) in enumerate(zip(candidates, costs)):
        if best_of[group] == position:
            live_candidates.append(group)
            live_costs.append(cost)
        else:
            reductions.append(
                Reduction(
                    kind="duplicate",
                    group=tuple(sorted(group)),
                    cost=cost,
                    reason=(("kept_cost", costs[best_of[group]]),),
                )
            )

    remaining = set(universe)
    fixed: list[frozenset[str]] = []
    fixed_costs: list[float] = []

    def _coverage() -> dict[str, list[int]]:
        cover: dict[str, list[int]] = {cls: [] for cls in remaining}
        for position, group in enumerate(live_candidates):
            for cls in group:
                cover[cls].append(position)
        return cover

    infeasible_reason: str | None = None
    changed = True
    while changed and infeasible_reason is None:
        changed = False
        # Forced singleton fixing to a fixpoint.
        while True:
            cover = _coverage()
            bare = sorted(cls for cls, positions in cover.items() if not positions)
            if bare:
                infeasible_reason = f"classes without covering candidate: {bare}"
                break
            forced_cls = next(
                (
                    cls
                    for cls in sorted(cover)
                    if len(cover[cls]) == 1
                ),
                None,
            )
            if forced_cls is None:
                break
            position = cover[forced_cls][0]
            group = live_candidates[position]
            fixed.append(group)
            fixed_costs.append(live_costs[position])
            reductions.append(
                Reduction(
                    kind="forced",
                    group=tuple(sorted(group)),
                    cost=live_costs[position],
                    reason=(("class", forced_cls),),
                )
            )
            remaining -= group
            survivors = [
                (other, cost)
                for other, cost in zip(live_candidates, live_costs)
                if not (other & group)
            ]
            live_candidates = [group for group, _ in survivors]
            live_costs = [cost for _, cost in survivors]
            changed = True
        if infeasible_reason is not None:
            break

        if not allow_domination:
            continue
        # Dominated-group elimination via strictly cheaper singleton splits.
        singleton_cost = {
            next(iter(group)): cost
            for group, cost in zip(live_candidates, live_costs)
            if len(group) == 1
        }
        survivors = []
        for group, cost in zip(live_candidates, live_costs):
            if len(group) >= 2 and all(cls in singleton_cost for cls in group):
                split_cost = sum(singleton_cost[cls] for cls in sorted(group))
                if split_cost + DOMINATION_MARGIN < cost:
                    reductions.append(
                        Reduction(
                            kind="dominated",
                            group=tuple(sorted(group)),
                            cost=cost,
                            reason=(("singleton_cover_cost", split_cost),),
                        )
                    )
                    changed = True
                    continue
            survivors.append((group, cost))
        live_candidates = [group for group, _ in survivors]
        live_costs = [cost for _, cost in survivors]

    return PresolveOutcome(
        classes=tuple(sorted(remaining)),
        candidates=live_candidates,
        costs=live_costs,
        fixed=fixed,
        fixed_costs=fixed_costs,
        reductions=reductions,
        infeasible_reason=infeasible_reason,
    )


def verify_certificate(
    outcome: PresolveOutcome,
    universe: Sequence[str],
    candidates: Sequence[frozenset[str]],
    costs: Sequence[float],
    allow_domination: bool = True,
) -> bool:
    """Replay a presolve certificate against the original program.

    Checks every recorded reduction's justification — duplicates had a
    kept copy at most as expensive, forced groups were the sole coverer
    of their witness class among then-live candidates, dominated groups
    had a strictly cheaper all-singleton split — and that the residual
    program is exactly the original minus the recorded removals.
    Returns ``True`` when the certificate is sound; raises
    ``AssertionError`` (with the failing reduction) otherwise.
    """
    cost_of: dict[frozenset[str], float] = {}
    for group, cost in zip(candidates, costs):
        known = cost_of.get(group)
        if known is None or cost < known:
            cost_of[group] = cost

    live = dict(cost_of)
    fixed_classes: set[str] = set()
    for reduction in outcome.reductions:
        group = frozenset(reduction.group)
        reason = reduction.reason_dict()
        if reduction.kind == "duplicate":
            assert cost_of[group] <= reduction.cost, (
                "duplicate merge kept a pricier copy",
                reduction,
            )
        elif reduction.kind == "forced":
            witness = reason["class"]
            coverers = [other for other in live if witness in other]
            assert coverers == [group], ("forced group not unique coverer", reduction)
            assert live[group] == reduction.cost, (
                "forced group cost does not match the program",
                reduction,
            )
            fixed_classes |= group
            live = {
                other: cost for other, cost in live.items() if not (other & group)
            }
        elif reduction.kind == "dominated":
            assert allow_domination, ("domination disabled but recorded", reduction)
            assert live.get(group) == reduction.cost, (
                "dominated group cost does not match the program",
                reduction,
            )
            split_cost = sum(
                live[frozenset((cls,))] for cls in sorted(group)
            )
            assert split_cost + DOMINATION_MARGIN < reduction.cost, (
                "dominated group not strictly beaten by singletons",
                reduction,
            )
            live.pop(group, None)
        else:  # pragma: no cover - kinds are fixed above
            raise AssertionError(f"unknown reduction kind {reduction.kind!r}")

    if outcome.infeasible_reason is None:
        assert set(outcome.classes) == set(universe) - fixed_classes, (
            "residual universe mismatch"
        )
        assert {
            (group, cost)
            for group, cost in zip(outcome.candidates, outcome.costs)
        } == set(live.items()), "residual candidates mismatch"
    return True
