"""Step-2 solver statistics: what the selection layer actually did.

Every Step-2 solve — monolithic or decomposed — produces a
:class:`SelectionStats` record: which backend(s) ran, how the program
decomposed, what presolve removed, how much search the branch-and-bound
backend spent, and how often the selection-artifact cache served a
component without solving it.  The record rides on
:attr:`~repro.core.gecco.AbstractionResult.selection_stats`, survives
the JSON round-trip of :mod:`repro.service.serialization`, and surfaces
in ``repro batch`` output rows and ``BENCH_pipeline.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SelectionStats:
    """Accounting of one Step-2 solve.

    Attributes
    ----------
    mode:
        ``"monolithic"`` (one MIP over all candidates) or
        ``"decomposed"`` (the :mod:`repro.selection2` pipeline).
    backend:
        The requested backend (``"scipy"``, ``"bnb"``, or ``"auto"``).
    backends_used:
        The backends that actually solved something (the portfolio may
        race ``bnb`` and fall back to ``scipy`` per component).
    num_components:
        Independent overlap-graph components the program split into
        (1 for monolithic solves).
    num_candidates:
        Candidate count of the full program, before presolve.
    presolve:
        Reduction counters — ``duplicates_merged``,
        ``dominated_removed``, ``forced_fixed`` (see
        :mod:`repro.selection2.presolve`); empty for monolithic solves.
    solves:
        Backend invocations, including per-count Pareto solves under
        Eq. 5 bounds.
    nodes:
        Total branch-and-bound nodes explored (0 when only HiGHS ran);
        surfaced as ``nodes_explored`` in :meth:`as_dict`.
    lp_bound_cuts:
        Branch-and-bound prunes decided only by the LP-relaxation dual
        bound (the cost-share bound alone would have kept searching).
    races:
        Components decided by the parallel bnb-vs-HiGHS race.
    race_winner:
        Per-backend race win counts (diagnostic: the *groups* are
        invariant to which racer finishes first — see
        :func:`repro.selection2.portfolio.race_component`).
    cache_hits / cache_misses:
        Selection-artifact tier accounting (component solutions served
        from / missing in the :class:`~repro.service.cache.ArtifactCache`).
    seconds:
        Wall-clock time of the whole Step-2 phase.
    workers:
        Worker processes used for parallel component solving.
    component_shape:
        ``[classes, candidates]`` per component, in component order.
    """

    mode: str = "monolithic"
    backend: str = "scipy"
    backends_used: list[str] = field(default_factory=list)
    num_components: int = 1
    num_candidates: int = 0
    presolve: dict[str, int] = field(default_factory=dict)
    solves: int = 0
    nodes: int = 0
    lp_bound_cuts: int = 0
    races: int = 0
    race_winner: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    workers: int = 1
    component_shape: list[list[int]] = field(default_factory=list)

    def record_solution(self, solution) -> None:
        """Fold one freshly solved component's counters into the record."""
        self.solves += 1
        self.nodes += solution.nodes
        self.lp_bound_cuts += getattr(solution, "lp_cuts", 0)
        if getattr(solution, "raced", False):
            self.races += 1
            winner = solution.race_winner
            if winner:
                self.race_winner[winner] = self.race_winner.get(winner, 0) + 1

    def as_dict(self) -> dict:
        """Plain-data rendering for batch rows, JSON stores, benchmarks."""
        return {
            "mode": self.mode,
            "backend": self.backend,
            "backends_used": list(self.backends_used),
            "num_components": self.num_components,
            "num_candidates": self.num_candidates,
            "presolve": dict(self.presolve),
            "solves": self.solves,
            "nodes": self.nodes,
            "nodes_explored": self.nodes,
            "lp_bound_cuts": self.lp_bound_cuts,
            "races": self.races,
            "race_winner": dict(self.race_winner),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "seconds": self.seconds,
            "workers": self.workers,
            "component_shape": [list(shape) for shape in self.component_shape],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SelectionStats":
        """Rebuild a record from :meth:`as_dict` output.

        ``nodes_explored`` is an alias of ``nodes`` in the JSON form;
        unknown keys are dropped so older records round-trip too.
        """
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - explicit
        return cls(**{key: value for key, value in data.items() if key in known})
