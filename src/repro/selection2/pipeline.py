"""The decomposed Step-2 pipeline: decompose → presolve → solve → recombine.

:func:`select_decomposed` is the drop-in replacement for
:func:`repro.core.selection.select_optimal_grouping` behind
``GeccoConfig(selection="decomposed")``:

1. **presolve** the full program (duplicate merge, forced singleton
   fixing, dominated-group elimination — certified to preserve the
   optimal set, see :mod:`repro.selection2.presolve`);
2. **decompose** the residual into candidate-overlap components
   (:mod:`repro.selection2.decompose`);
3. **solve** each component with the backend portfolio
   (:mod:`repro.selection2.portfolio`) — in parallel via a
   :mod:`repro.service` executor when one is supplied (or ``workers >
   1``), and against the selection-artifact cache tier when a
   :class:`~repro.service.cache.ArtifactCache` is supplied, so repeated
   constraint sweeps reuse solved components;
4. **recombine** the component optima — with the coordination layer of
   :mod:`repro.selection2.coordinate` when global Eq. 5 bounds couple
   the components — into one optimal grouping.

The recombined grouping is byte-identical to the monolithic solve on
the same backend (enforced by ``tests/test_selection_decomposed.py``):
explicit backends run cold and uncapped exactly like the monolithic
path, the objective is re-summed in the monolithic order, and when the
program is a single component with cardinality bounds it is handed to
the backend as one bounded program rather than enumerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.distance import DistanceFunction
from repro.core.grouping import Grouping
from repro.core.selection import SelectionResult
from repro.eventlog.events import EventLog
from repro.exceptions import SolverError
from repro.mip.result import SolverStatus
from repro.selection2 import coordinate, portfolio
from repro.selection2.decompose import Component, content_digest, decompose
from repro.selection2.presolve import presolve
from repro.selection2.stats import SelectionStats

#: Backends accepted by the decomposed pipeline.
DECOMPOSED_BACKENDS = ("scipy", "bnb", "auto")


@dataclass
class DecomposedSelectionResult(SelectionResult):
    """A :class:`~repro.core.selection.SelectionResult` plus solver stats."""

    stats: SelectionStats | None = field(default=None)


def component_cache_key(
    component: Component,
    min_count: int | None,
    max_count: int | None,
    backend: str,
) -> str:
    """Selection-artifact cache key of one component solve cell."""
    return content_digest(
        {
            "component": component.digest(),
            "min": min_count,
            "max": max_count,
            "backend": backend,
        }
    )


def solve_component_task(
    component: Component,
    min_count: int | None,
    max_count: int | None,
    backend: str,
    time_limit: float | None,
    cache=None,
    deadline=None,
) -> "tuple[portfolio.ComponentSolution, bool]":
    """Solve one component cell against a selection cache.

    This is the unit of work dispatched through the service executors
    (:meth:`~repro.service.executor.PoolExecutor.submit_call` passes the
    worker-local cache as ``cache``).  Returns ``(solution, from_cache)``.

    ``deadline`` (a :class:`~repro.service.resilience.Deadline`) caps
    the solver's time limit to the remaining budget; cache hits are
    served even when the budget is gone (they cost nothing and are the
    same bytes regardless).
    """
    key = component_cache_key(component, min_count, max_count, backend)
    if cache is not None:
        hit = cache.get_selection(key)
        if hit is not None:
            return hit, True
    solution = portfolio.solve_component(
        component,
        backend=backend,
        min_count=min_count,
        max_count=max_count,
        time_limit=time_limit,
        deadline=deadline,
    )
    # Cache only proofs (optimality / infeasibility) — those hold for
    # any time budget.  A timeout or solver error must not poison the
    # long-lived selection tier: the key has no time-limit component.
    if cache is not None and solution.status in (
        SolverStatus.OPTIMAL.value,
        SolverStatus.INFEASIBLE.value,
    ):
        cache.put_selection(key, solution)
    return solution, False


def _infeasible(
    message: str, stats: SelectionStats, num_candidates: int, started: float
) -> DecomposedSelectionResult:
    stats.seconds = time.perf_counter() - started
    return DecomposedSelectionResult(
        grouping=None,
        objective=None,
        status=SolverStatus.INFEASIBLE,
        seconds=stats.seconds,
        num_candidates=num_candidates,
        solver_message=message,
        backend=stats.backend,
        stats=stats,
    )


def _deadline_guard(solution: "portfolio.ComponentSolution", deadline) -> None:
    """Fail typed when a deadline-capped solve ran out of budget.

    A solver timeout under a deadline-derived cap must never flow into
    the infeasible path (that would *return a different result* than
    the unbudgeted run — an infeasibility verdict the program does not
    actually have).  Genuine infeasibility proofs hold for any budget
    and pass through untouched.
    """
    if (
        deadline is not None
        and not solution.is_optimal
        and solution.status != SolverStatus.INFEASIBLE.value
        and deadline.expired()
    ):
        from repro.service.resilience import DeadlineExceeded

        raise DeadlineExceeded(
            f"component solve exhausted the deadline budget "
            f"(solver status: {solution.status})"
        )


def _run_tasks(
    tasks: "list[tuple[Component, int | None, int | None]]",
    backend: str,
    time_limit: float | None,
    cache,
    executor,
    workers: int,
    stats: SelectionStats,
    deadline=None,
) -> "list[portfolio.ComponentSolution]":
    """Solve all task cells, in parallel when an executor is available."""
    solutions: list = [None] * len(tasks)
    pending: list[int] = []
    for position, (component, min_count, max_count) in enumerate(tasks):
        if cache is not None:
            key = component_cache_key(component, min_count, max_count, backend)
            hit = cache.get_selection(key)
            if hit is not None:
                solutions[position] = hit
                stats.cache_hits += 1
                continue
        pending.append(position)
    stats.cache_misses += len(pending)

    own_executor = False
    if executor is None and workers > 1 and len(pending) > 1:
        from repro.service.executor import PoolExecutor

        executor = PoolExecutor(workers=min(workers, len(pending)))
        own_executor = True
    try:
        if executor is not None and len(pending) > 1:
            handles = [
                (
                    position,
                    executor.submit_call(
                        solve_component_task,
                        tasks[position][0],
                        tasks[position][1],
                        tasks[position][2],
                        backend,
                        time_limit,
                        deadline=deadline,
                    ),
                )
                for position in pending
            ]
            for position, handle in handles:
                solution, worker_hit = handle.result()
                _deadline_guard(solution, deadline)
                if worker_hit:
                    stats.cache_hits += 1
                    stats.cache_misses -= 1
                else:
                    stats.record_solution(solution)
                solutions[position] = solution
                if cache is not None and solution.status in (
                    SolverStatus.OPTIMAL.value,
                    SolverStatus.INFEASIBLE.value,
                ):
                    component, min_count, max_count = tasks[position]
                    cache.put_selection(
                        component_cache_key(component, min_count, max_count, backend),
                        solution,
                    )
        else:
            for position in pending:
                component, min_count, max_count = tasks[position]
                solution, _hit = solve_component_task(
                    component, min_count, max_count, backend, time_limit,
                    cache=cache, deadline=deadline,
                )
                _deadline_guard(solution, deadline)
                stats.record_solution(solution)
                solutions[position] = solution
    finally:
        if own_executor:
            executor.shutdown()
    for solution in solutions:
        if solution is not None and solution.backend:
            if solution.backend not in stats.backends_used:
                stats.backends_used.append(solution.backend)
    return solutions


def select_decomposed(
    log: EventLog,
    candidates: "set[frozenset[str]]",
    distance: DistanceFunction,
    min_groups: int | None = None,
    max_groups: int | None = None,
    backend: str = "scipy",
    time_limit: float | None = None,
    workers: int = 1,
    cache=None,
    executor=None,
    deadline=None,
) -> DecomposedSelectionResult:
    """Decomposed Step 2: pick the distance-minimal exact cover.

    Drop-in equivalent of
    :func:`repro.core.selection.select_optimal_grouping` (same optimum,
    same grouping) built on the decompose → presolve → portfolio-solve →
    recombine pipeline.

    Parameters
    ----------
    backend:
        ``"scipy"``, ``"bnb"``, or ``"auto"`` (the per-component
        portfolio of :mod:`repro.selection2.portfolio`).
    time_limit:
        Per-component-solve budget in seconds, identical on the inline
        and executor paths (the monolithic solver applies the same
        value to its single solve).
    workers:
        When > 1 and no ``executor`` is given, component solves fan out
        over a transient :class:`~repro.service.executor.PoolExecutor`.
    cache:
        Optional :class:`~repro.service.cache.ArtifactCache`; solved
        components land in its selection tier keyed by content digest,
        so constraint sweeps over one log reuse them.
    executor:
        Optional service executor whose ``submit_call`` dispatches the
        component solves (its workers consult their own caches).  Any
        executor honoring the protocol works: the in-process
        :class:`~repro.service.executor.PoolExecutor` or a broker-backed
        :class:`~repro.service.dist.executor.DistributedExecutor`, which
        fans component solves out over a multi-host fleet whose workers
        memoize cells in their own selection tiers (shared on disk when
        the fleet points at one ``--cache-dir``).
    deadline:
        Optional :class:`~repro.service.resilience.Deadline`: caps each
        component solve's time limit to the remaining budget and raises
        :class:`~repro.service.resilience.DeadlineExceeded` when the
        budget runs out mid-selection.  Never degrades the result — a
        run that finishes under deadline returns exactly the grouping
        the unbudgeted run would.
    """
    if backend not in DECOMPOSED_BACKENDS:
        raise SolverError(
            f"unknown Step-2 backend {backend!r}; use one of {DECOMPOSED_BACKENDS}"
        )
    started = time.perf_counter()
    universe = log.classes
    ordered = sorted(candidates, key=lambda group: sorted(group))
    costs = [distance.group_distance(group) for group in ordered]
    stats = SelectionStats(
        mode="decomposed",
        backend=backend,
        num_candidates=len(ordered),
        workers=workers,
    )

    pre = presolve(universe, ordered, costs, allow_domination=max_groups is None)
    stats.presolve = pre.counts()
    if pre.infeasible_reason is not None:
        return _infeasible(pre.infeasible_reason, stats, len(ordered), started)

    fixed_count = len(pre.fixed)
    residual_min = None if min_groups is None else max(0, min_groups - fixed_count)
    residual_max = None if max_groups is None else max_groups - fixed_count
    if residual_max is not None and residual_max < 0:
        return _infeasible(
            f"{fixed_count} forced groups already exceed max_groups={max_groups}",
            stats,
            len(ordered),
            started,
        )

    components, uncovered = decompose(pre.classes, pre.candidates, pre.costs)
    if uncovered:
        return _infeasible(
            f"classes without covering candidate: {uncovered}",
            stats,
            len(ordered),
            started,
        )
    stats.num_components = len(components)
    stats.component_shape = [
        [component.num_classes, component.num_candidates] for component in components
    ]

    if components:
        envelopes = [portfolio.count_bounds(component) for component in components]
        floor_total = sum(k_min for k_min, _ in envelopes)
        ceiling_total = sum(k_max for _, k_max in envelopes)
        if residual_min is not None and residual_min <= floor_total:
            residual_min = None  # every exact cover already meets the bound
        if residual_max is not None and residual_max >= ceiling_total:
            residual_max = None
    elif residual_min is not None and residual_min > 0:
        return _infeasible(
            f"all classes fixed by presolve but min_groups={min_groups} "
            f"needs {residual_min} more groups",
            stats,
            len(ordered),
            started,
        )

    bounded = residual_min is not None or residual_max is not None
    selected: list[frozenset[str]] = list(pre.fixed)

    if components and not bounded:
        tasks = [(component, None, None) for component in components]
        solutions = _run_tasks(
            tasks, backend, time_limit, cache, executor, workers, stats,
            deadline=deadline,
        )
        for component, solution in zip(components, solutions):
            if not solution.is_optimal:
                return _infeasible(
                    f"component {component.classes[0]}…: {solution.message or solution.status}",
                    stats,
                    len(ordered),
                    started,
                )
            selected.extend(frozenset(group) for group in solution.groups)
    elif components and len(components) == 1:
        # One bounded component: hand the bounds to the backend directly
        # (structurally the monolithic program, minus presolve removals).
        tasks = [(components[0], residual_min, residual_max)]
        solutions = _run_tasks(
            tasks, backend, time_limit, cache, executor, workers, stats,
            deadline=deadline,
        )
        solution = solutions[0]
        if not solution.is_optimal:
            return _infeasible(
                solution.message or f"bounded component {solution.status}",
                stats,
                len(ordered),
                started,
            )
        selected.extend(frozenset(group) for group in solution.groups)
    elif components:
        # Eq. 5 coordination: per-component count enumeration, then a
        # knapsack-style merge over the (objective, #groups) fronts.
        tasks: list[tuple[Component, int | None, int | None]] = []
        spans: list[tuple[int, int]] = []
        for position, component in enumerate(components):
            k_lo, k_hi = envelopes[position]
            if residual_max is not None:
                others_floor = floor_total - k_lo
                k_hi = min(k_hi, residual_max - others_floor)
            spans.append((k_lo, k_hi))
            for count in range(k_lo, k_hi + 1):
                tasks.append((component, count, count))
        solutions = _run_tasks(
            tasks, backend, time_limit, cache, executor, workers, stats,
            deadline=deadline,
        )
        fronts: list[dict[int, portfolio.ComponentSolution]] = []
        cursor = 0
        for position, component in enumerate(components):
            k_lo, k_hi = spans[position]
            front = {}
            for count in range(k_lo, k_hi + 1):
                solution = solutions[cursor]
                cursor += 1
                if solution.is_optimal:
                    front[count] = solution
            fronts.append(front)
        position_of = {group: position for position, group in enumerate(ordered)}

        def order_key(solution):
            return tuple(
                sorted(position_of[frozenset(group)] for group in solution.groups)
            )

        chosen = coordinate.merge_fronts(
            fronts, residual_min, residual_max, order_key=order_key
        )
        if chosen is None:
            return _infeasible(
                f"no per-component group counts meet "
                f"min_groups={min_groups}, max_groups={max_groups}",
                stats,
                len(ordered),
                started,
            )
        for front, count in zip(fronts, chosen):
            selected.extend(frozenset(group) for group in front[count].groups)

    # Recombine in the monolithic path's group order (ascending sorted
    # member tuples): the grouping's rendered label order and the
    # objective's float-summation order must both match byte-for-byte.
    selected.sort(key=lambda group: sorted(group))
    grouping = Grouping(selected, universe)
    objective = sum(distance.group_distance(group) for group in selected)
    stats.seconds = time.perf_counter() - started
    return DecomposedSelectionResult(
        grouping=grouping,
        objective=objective,
        status=SolverStatus.OPTIMAL,
        seconds=stats.seconds,
        num_candidates=len(ordered),
        backend=backend,
        nodes=stats.nodes,
        stats=stats,
    )
