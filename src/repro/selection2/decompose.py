"""Decomposer: split Step 2 by candidate-overlap connected components.

Two candidate groups *overlap* when they share an event class; the
transitive closure of that relation partitions the candidate set — and
with it the class universe — into independent components.  An exact
cover of the universe is exactly a union of exact covers of the
components, so each component can be solved as its own (much smaller)
set-partitioning program and the optima recombined (the coordination
layer of :mod:`repro.selection2.coordinate` handles the global Eq. 5
cardinality bounds that couple the components).

The split is computed with a union-find over classes: every candidate
unions its member classes, so two candidates sharing a class end up in
the same class-partition block.  Classes no candidate covers are
reported separately — they make the whole program infeasible.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


def content_digest(value) -> str:
    """SHA-256 of a JSON-able value's canonical (key-sorted) rendering.

    Local equivalent of :mod:`repro.service.fingerprint` for plain data;
    the selection layer cannot import the service package (the service
    executor imports the pipeline, which imports this module).
    """
    text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Component:
    """One independent sub-program of the Step-2 selection.

    Attributes
    ----------
    classes:
        The component's event classes (sorted) — the sub-universe that
        must be covered exactly once.
    candidates:
        The candidate groups living entirely inside ``classes``, in the
        global candidate order (sorted by sorted member tuple).
    costs:
        Candidate costs, parallel to ``candidates``.
    """

    classes: tuple[str, ...]
    candidates: tuple[frozenset[str], ...]
    costs: tuple[float, ...]

    @property
    def num_classes(self) -> int:
        """Size of the component's class universe."""
        return len(self.classes)

    @property
    def num_candidates(self) -> int:
        """Number of candidate groups in the component."""
        return len(self.candidates)

    def digest(self) -> str:
        """Content digest of the component (classes, candidates, costs).

        The selection-artifact cache keys component solutions by this
        digest (plus bounds and backend), so two jobs whose Step-1
        phases produced the same sub-program — typically a constraint
        sweep over one log — share solved components.
        """
        return content_digest(
            {
                "classes": list(self.classes),
                "candidates": [sorted(group) for group in self.candidates],
                "costs": list(self.costs),
            }
        )


class _UnionFind:
    """Minimal union-find over hashable items (path-halving, by size)."""

    def __init__(self):
        self._parent: dict = {}
        self._size: dict = {}

    def add(self, item) -> None:
        """Register ``item`` as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item):
        """Representative of ``item``'s set."""
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, left, right) -> None:
        """Merge the sets containing ``left`` and ``right``."""
        root_l, root_r = self.find(left), self.find(right)
        if root_l == root_r:
            return
        if self._size[root_l] < self._size[root_r]:
            root_l, root_r = root_r, root_l
        self._parent[root_r] = root_l
        self._size[root_l] += self._size[root_r]


def decompose(
    universe: Iterable[str],
    candidates: Sequence[frozenset[str]],
    costs: Sequence[float],
) -> tuple[list[Component], list[str]]:
    """Split a set-partitioning program into independent components.

    Parameters
    ----------
    universe:
        All event classes that must be covered.
    candidates / costs:
        Candidate groups (subsets of the universe) and their parallel
        costs, in the global deterministic order.

    Returns
    -------
    ``(components, uncovered)`` where ``components`` is sorted by first
    class for determinism and ``uncovered`` lists classes no candidate
    contains (non-empty ⇒ the program is infeasible).
    """
    finder = _UnionFind()
    classes = sorted(universe)
    for cls in classes:
        finder.add(cls)
    covered: set[str] = set()
    for group in candidates:
        members = sorted(group)
        covered.update(members)
        for other in members[1:]:
            finder.union(members[0], other)

    uncovered = [cls for cls in classes if cls not in covered]

    blocks: dict[str, list[str]] = {}
    for cls in classes:
        if cls in covered:
            blocks.setdefault(finder.find(cls), []).append(cls)

    members_of: dict[str, tuple[list[frozenset[str]], list[float]]] = {
        root: ([], []) for root in blocks
    }
    for group, cost in zip(candidates, costs):
        root = finder.find(next(iter(sorted(group))))
        bucket = members_of[root]
        bucket[0].append(group)
        bucket[1].append(cost)

    components = [
        Component(
            classes=tuple(block),
            candidates=tuple(members_of[root][0]),
            costs=tuple(members_of[root][1]),
        )
        for root, block in blocks.items()
    ]
    components.sort(key=lambda component: component.classes[0])
    return components, uncovered
