"""Coordination layer: exact Eq. 5 bounds across components.

The global cardinality bounds of paper Eq. 5 (``min_groups`` /
``max_groups``) couple otherwise-independent components: the *total*
number of selected groups is bounded, not each component's.  The exact
remedy implemented here is per-component count enumeration followed by
a knapsack-style merge:

1. for each component, build a **Pareto front** — for every feasible
   group count ``k`` in the component's envelope, the minimum-cost
   exact cover using exactly ``k`` groups (a count-constrained solve of
   the same component program);
2. **merge** the fronts with a dynamic program over the running total
   count, picking one ``k`` per component so the total lands inside
   ``[min_total, max_total]`` at minimum summed cost.

Both steps are exact, so the recombined selection is a provably optimal
solution of the bounded program.  Ties are broken deterministically and
consistently with the monolithic path's canonical tie-break
(:func:`repro.mip.branch_and_bound.lexmin_optimal_selection`): lowest
cost first, then — via ``order_key`` — the lexicographically smallest
merged selection in global candidate order.  Because components have
disjoint candidate supports, comparing merged position tuples per
allocation picks exactly the global lex-min optimum.
"""

from __future__ import annotations

from repro.selection2.portfolio import ComponentSolution


def merge_fronts(
    fronts: list[dict[int, ComponentSolution]],
    min_total: int | None,
    max_total: int | None,
    order_key=None,
) -> list[int] | None:
    """Pick one count per component meeting the global Eq. 5 bounds.

    ``fronts[i]`` maps feasible group counts of component ``i`` to the
    count-constrained optimum (only optimal entries are consulted).
    ``order_key(solution)`` renders a solution's selected candidates as
    a sortable tuple (global candidate positions); equal-cost
    allocations are resolved toward the lexicographically smallest
    merged selection.  Without ``order_key``, ties fall back to the
    smallest count tuple.  Returns the chosen count per component, or
    ``None`` when no combination lands inside ``[min_total, max_total]``.
    """
    #: running total count -> (cost, merged order tuple, counts so far)
    table: dict[int, tuple[float, tuple, tuple[int, ...]]] = {0: (0.0, (), ())}
    for front in fronts:
        entries = sorted(
            (k, solution)
            for k, solution in front.items()
            if solution.is_optimal
        )
        if not entries:
            return None
        merged: dict[int, tuple[float, tuple, tuple[int, ...]]] = {}
        for total, (cost, order, counts) in table.items():
            for k, solution in entries:
                extension = tuple(order_key(solution)) if order_key else (k,)
                candidate = (
                    cost + solution.objective,
                    tuple(sorted(order + extension)),
                    counts + (k,),
                )
                key = total + k
                best = merged.get(key)
                if best is None or candidate < best:
                    merged[key] = candidate
        table = merged
        if max_total is not None:
            table = {
                total: entry for total, entry in table.items() if total <= max_total
            }
        if not table:
            return None

    feasible = [
        (cost, order, counts)
        for total, (cost, order, counts) in table.items()
        if (min_total is None or total >= min_total)
        and (max_total is None or total <= max_total)
    ]
    if not feasible:
        return None
    _cost, _order, counts = min(feasible)
    return list(counts)
