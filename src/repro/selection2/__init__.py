"""``repro.selection2`` — decomposed, parallel, cache-backed Step 2.

The paper solves Step 2 as one monolithic weighted set-partitioning MIP
(§V-C, Eqs. 3–5).  This package replaces that with a scalable pipeline:

* :mod:`~repro.selection2.decompose` — split the program by connected
  components of the candidate-overlap graph;
* :mod:`~repro.selection2.presolve` — certified optimality-preserving
  reductions (duplicate merge, forced singleton fixing, dominated-group
  elimination);
* :mod:`~repro.selection2.portfolio` — per-component backend choice or
  race (``bnb`` vs ``scipy``/HiGHS) with greedy warm starts and
  node/time budgets;
* :mod:`~repro.selection2.coordinate` — exact handling of the global
  Eq. 5 cardinality bounds across components (per-component Pareto
  fronts of (objective, #groups) merged by dynamic program);
* :mod:`~repro.selection2.pipeline` — the orchestration, with parallel
  component solving through the :mod:`repro.service` executors and a
  selection-artifact cache tier for constraint sweeps.

Selected via ``GeccoConfig(selection="decomposed")`` (the default);
``selection="monolithic"`` keeps the paper-literal single MIP.
"""

from repro.selection2.coordinate import merge_fronts
from repro.selection2.decompose import Component, decompose
from repro.selection2.pipeline import (
    DECOMPOSED_BACKENDS,
    DecomposedSelectionResult,
    component_cache_key,
    select_decomposed,
    solve_component_task,
)
from repro.selection2.portfolio import (
    ComponentSolution,
    choose_backend,
    greedy_incumbent,
    solve_component,
)
from repro.selection2.presolve import (
    PresolveOutcome,
    Reduction,
    presolve,
    verify_certificate,
)
from repro.selection2.stats import SelectionStats

__all__ = [
    "Component",
    "ComponentSolution",
    "DECOMPOSED_BACKENDS",
    "DecomposedSelectionResult",
    "PresolveOutcome",
    "Reduction",
    "SelectionStats",
    "choose_backend",
    "component_cache_key",
    "decompose",
    "greedy_incumbent",
    "merge_fronts",
    "presolve",
    "select_decomposed",
    "solve_component",
    "solve_component_task",
    "verify_certificate",
]
