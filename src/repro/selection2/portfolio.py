"""Solver portfolio: pick or race ``bnb`` vs ``scipy`` per component.

Each overlap-graph component is a small weighted set-partitioning
program.  Which backend wins depends on its shape:

* the specialized branch-and-bound solver
  (:mod:`repro.mip.branch_and_bound`) has near-zero call overhead and
  dominates on small or tightly-constrained components;
* HiGHS (:mod:`repro.mip.scipy_backend`) pays a fixed model-building
  cost per call but scales to large, dense components where the
  branch-and-bound frontier explodes.

``backend="auto"`` picks by size and, for branch-and-bound attempts,
*races* with a capped node budget and a wall-clock deadline: if the
search exceeds either, the component falls back to HiGHS with the
remaining time budget.  Auto-mode branch-and-bound runs start from a
greedy incumbent (cheapest cost-per-class exact cover), which tightens
the initial upper bound and prunes most of the tree on easy components.
Explicitly requested backends run exactly like the monolithic path —
cold, uncapped — so decomposed and monolithic solves stay
byte-identical per backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SolverError
from repro.mip import scipy_backend
from repro.mip.branch_and_bound import SetPartitionSolver, lexmin_optimal_selection
from repro.mip.result import SolverStatus
from repro.selection2.decompose import Component

#: Components with at most this many candidates go to branch-and-bound
#: in ``auto`` mode.
AUTO_BNB_MAX_CANDIDATES = 96

#: Node budget for the ``auto``-mode branch-and-bound race; exceeding it
#: falls back to HiGHS instead of failing.
AUTO_BNB_NODE_LIMIT = 200_000


@dataclass(frozen=True)
class ComponentSolution:
    """Outcome of solving one component (possibly count-constrained).

    ``groups`` are the selected candidate groups as sorted tuples (the
    representation is cache- and pickle-friendly); ``objective`` is
    their summed cost; ``nodes`` counts branch-and-bound nodes (0 for
    HiGHS); ``backend`` names the solver that produced the solution.
    """

    status: str
    groups: tuple[tuple[str, ...], ...] = ()
    objective: float | None = None
    nodes: int = 0
    backend: str = ""
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        """Whether the component was solved to proven optimality."""
        return self.status == SolverStatus.OPTIMAL.value


def choose_backend(num_classes: int, num_candidates: int) -> str:
    """``auto``-mode heuristic: branch-and-bound for small components.

    Without scipy every component goes to the dependency-free
    branch-and-bound solver (slower on large dense components, but the
    pipeline stays fully functional).
    """
    del num_classes  # the candidate count dominates the bnb frontier
    if not scipy_backend.HAVE_SCIPY:
        return "bnb"
    return "bnb" if num_candidates <= AUTO_BNB_MAX_CANDIDATES else "scipy"


def greedy_incumbent(
    component: Component,
    min_count: int | None = None,
    max_count: int | None = None,
) -> tuple[list[int], float] | None:
    """A feasible exact cover by cheapest cost-per-class greedy choice.

    Repeatedly selects, among candidates fully inside the uncovered
    classes, the one with the lowest cost share (ties broken by sorted
    member tuple for determinism).  Returns ``(positions, cost)`` or
    ``None`` when the greedy run dead-ends or violates the count
    bounds — the incumbent is an upper bound only, never required.
    """
    uncovered = set(component.classes)
    chosen: list[int] = []
    total = 0.0
    while uncovered:
        best: tuple[float, tuple[str, ...], int] | None = None
        for position, (group, cost) in enumerate(
            zip(component.candidates, component.costs)
        ):
            if not group <= uncovered:
                continue
            key = (cost / len(group), tuple(sorted(group)), position)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        position = best[2]
        chosen.append(position)
        total += component.costs[position]
        uncovered -= component.candidates[position]
    if min_count is not None and len(chosen) < min_count:
        return None
    if max_count is not None and len(chosen) > max_count:
        return None
    return chosen, total


def _from_solver_result(
    outcome,
    component: Component,
    backend: str,
    min_count: int | None,
    max_count: int | None,
) -> ComponentSolution:
    if outcome.status is not SolverStatus.OPTIMAL:
        return ComponentSolution(
            status=outcome.status.value,
            nodes=outcome.nodes_explored,
            backend=backend,
            message=outcome.message,
        )
    positions = sorted(
        int(name[1:]) for name in outcome.selected() if name.startswith("g")
    )
    # Canonical tie-break (see lexmin_optimal_selection): per-component
    # lex-min selections compose to the global lex-min, which is what
    # the monolithic path returns — so equal-cost optima cannot make
    # decomposed and monolithic solves diverge.
    target = sum(component.costs[position] for position in positions)
    canonical = lexmin_optimal_selection(
        component.classes,
        list(component.candidates),
        list(component.costs),
        target=target,
        min_count=min_count,
        max_count=max_count,
    )
    if canonical is not None:
        positions = canonical
    groups = tuple(
        tuple(sorted(component.candidates[position])) for position in positions
    )
    return ComponentSolution(
        status=SolverStatus.OPTIMAL.value,
        groups=groups,
        objective=sum(component.costs[position] for position in positions),
        nodes=outcome.nodes_explored,
        backend=backend,
        message=outcome.message,
    )


def _solve_bnb(
    component: Component,
    min_count: int | None,
    max_count: int | None,
    node_limit: int | None = None,
    time_limit: float | None = None,
    warm_start: bool = False,
) -> ComponentSolution:
    incumbent = (
        greedy_incumbent(component, min_count, max_count) if warm_start else None
    )
    solver = SetPartitionSolver(
        universe=list(component.classes),
        candidates=list(component.candidates),
        costs=list(component.costs),
        min_count=min_count,
        max_count=max_count,
        incumbent=incumbent,
        time_limit=time_limit,
        **({"node_limit": node_limit} if node_limit is not None else {}),
    )
    return _from_solver_result(solver.solve(), component, "bnb", min_count, max_count)


def _solve_scipy(
    component: Component,
    min_count: int | None,
    max_count: int | None,
    time_limit: float | None,
) -> ComponentSolution:
    from repro.core.selection import build_program

    program = build_program(
        list(component.candidates),
        list(component.costs),
        frozenset(component.classes),
        min_groups=min_count,
        max_groups=max_count,
    )
    return _from_solver_result(
        scipy_backend.solve(program, time_limit=time_limit),
        component,
        "scipy",
        min_count,
        max_count,
    )


def solve_component(
    component: Component,
    backend: str = "scipy",
    min_count: int | None = None,
    max_count: int | None = None,
    time_limit: float | None = None,
    deadline=None,
) -> ComponentSolution:
    """Solve one component with the requested backend (or the portfolio).

    ``backend`` is ``"scipy"``, ``"bnb"``, or ``"auto"``.  Explicit
    backends replicate the monolithic solver behavior exactly (no warm
    start, default node limit, HiGHS-only time limits).  ``"auto"``
    races a warm-started, node- and time-capped branch-and-bound on
    small components and falls back to HiGHS on blowup.

    ``deadline`` (a :class:`~repro.service.resilience.Deadline`) checks
    the remaining end-to-end budget at entry and caps ``time_limit`` to
    it — including on the otherwise-uncapped explicit ``"bnb"`` path.
    A solve that runs out of the capped budget fails typed
    (:class:`~repro.service.resilience.DeadlineExceeded`), never by
    degrading the solution: any solve that *finishes* returns exactly
    what the unbudgeted run would.
    """
    if backend not in ("bnb", "scipy", "auto"):
        raise SolverError(
            f"unknown component backend {backend!r}; use 'scipy', 'bnb', or 'auto'"
        )
    bnb_time_limit = None
    if deadline is not None:
        deadline.check("component solve")
        time_limit = deadline.cap(time_limit)
        bnb_time_limit = time_limit
    try:
        if backend == "bnb":
            return _solve_bnb(
                component, min_count, max_count, time_limit=bnb_time_limit
            )
        if backend == "scipy":
            return _solve_scipy(component, min_count, max_count, time_limit)
        if choose_backend(component.num_classes, component.num_candidates) == "bnb":
            try:
                return _solve_bnb(
                    component,
                    min_count,
                    max_count,
                    node_limit=AUTO_BNB_NODE_LIMIT if scipy_backend.HAVE_SCIPY else None,
                    time_limit=time_limit,
                    warm_start=True,
                )
            except SolverError:
                pass  # node/time budget exhausted: fall through to HiGHS
        return _solve_scipy(component, min_count, max_count, time_limit)
    except SolverError:
        # A budget-exhausted solver under a deadline cap is a deadline
        # failure, not a solver defect — surface it typed.
        if deadline is not None and deadline.expired():
            from repro.service.resilience import DeadlineExceeded

            raise DeadlineExceeded(
                "component solve exhausted the deadline budget"
            ) from None
        raise


def count_bounds(component: Component) -> tuple[int, int]:
    """Feasible-count envelope ``(k_min, k_max)`` of a component.

    Any exact cover uses at least ``⌈classes / largest candidate⌉`` and
    at most ``|classes|`` groups; counts outside the envelope need not
    be enumerated when building Eq. 5 Pareto fronts.
    """
    largest = max((len(group) for group in component.candidates), default=1)
    k_min = math.ceil(component.num_classes / largest) if component.num_classes else 0
    return k_min, component.num_classes
