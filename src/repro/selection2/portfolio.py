"""Solver portfolio: pick or race ``bnb`` vs ``scipy`` per component.

Each overlap-graph component is a small weighted set-partitioning
program.  Which backend wins depends on its shape:

* the specialized branch-and-bound solver
  (:mod:`repro.mip.branch_and_bound`) has near-zero call overhead and
  dominates on small or tightly-constrained components;
* HiGHS (:mod:`repro.mip.scipy_backend`) pays a fixed model-building
  cost per call but scales to large, dense components where the
  branch-and-bound frontier explodes.

``backend="auto"`` runs small components on a warm-started, node- and
time-capped branch-and-bound (now with the lazy LP-relaxation bound of
:mod:`repro.mip.branch_and_bound`).  When that cap blows — and on every
large component, where the portfolio previously went straight to
HiGHS — the two backends **race in true parallel**
(:func:`race_component`): branch-and-bound on one thread (cancellable
at node-interval granularity), HiGHS on another (its native solve
releases the GIL, so both genuinely run at once).  The first backend to
produce a *usable* result wins and the loser is cancelled.

**Deterministic winner rule.**  The raced result can never depend on
which thread finishes first: a result is *usable* only when it is the
canonical lex-min optimum (``canonical=True`` — both backends
canonicalize through :func:`lexmin_optimal_selection`, so their usable
solutions are byte-identical) or a proof of infeasibility.  When
canonicalization exhausts its node budget the HiGHS solution is
authoritative (its variable assignment is a deterministic function of
the program matrix), and a backend that fails outright simply concedes
to the other.  Only diagnostic fields (``race_winner``, ``nodes``,
``backend``) record which thread actually came first.

Auto-mode branch-and-bound runs start from a greedy incumbent (cheapest
cost-per-class exact cover), which tightens the initial upper bound and
prunes most of the tree on easy components.  Explicitly requested
backends run exactly like the monolithic path — cold, uncapped,
sequential — so decomposed and monolithic solves stay byte-identical
per backend.
"""

from __future__ import annotations

import atexit
import math
import threading
from dataclasses import dataclass, field, replace

from repro.exceptions import SolverError
from repro.mip import scipy_backend
from repro.mip.branch_and_bound import (
    SetPartitionSolver,
    SolverCancelled,
    lexmin_optimal_selection,
)
from repro.mip.result import SolverStatus
from repro.selection2.decompose import Component

#: Components with at most this many candidates go to branch-and-bound
#: in ``auto`` mode.
AUTO_BNB_MAX_CANDIDATES = 96

#: Node budget for the ``auto``-mode branch-and-bound attempt; exceeding
#: it escalates to the parallel race instead of failing.
AUTO_BNB_NODE_LIMIT = 200_000

#: Deterministic preference order when both racers have already
#: finished by the time the result is collected.
_RACE_ORDER = ("bnb", "scipy")

#: Racer threads abandoned mid-solve (a losing HiGHS run cannot be
#: cancelled).  Joined at interpreter exit so no thread is still inside
#: native solver code during teardown, which can abort the process.
_orphan_lock = threading.Lock()
_orphans: "list[threading.Thread]" = []


def _adopt_orphan(thread: threading.Thread) -> None:
    with _orphan_lock:
        _orphans[:] = [t for t in _orphans if t.is_alive()]
        if thread.is_alive():
            _orphans.append(thread)


@atexit.register
def _reap_orphans(timeout: float = 30.0) -> None:
    with _orphan_lock:
        pending, _orphans[:] = list(_orphans), []
    for thread in pending:
        thread.join(timeout=timeout)


@dataclass(frozen=True)
class ComponentSolution:
    """Outcome of solving one component (possibly count-constrained).

    ``groups`` are the selected candidate groups as sorted tuples (the
    representation is cache- and pickle-friendly); ``objective`` is
    their summed cost; ``nodes`` counts branch-and-bound nodes (0 for
    HiGHS); ``backend`` names the solver that produced the solution.
    ``lp_cuts`` counts prunes decided only by the LP-relaxation bound;
    ``canonical`` records whether the groups are the lex-min optimum
    (``False`` only when the canonicalization budget ran out);
    ``raced``/``race_winner`` are diagnostic race accounting.
    """

    status: str
    groups: tuple[tuple[str, ...], ...] = ()
    objective: float | None = None
    nodes: int = 0
    backend: str = ""
    message: str = ""
    lp_cuts: int = 0
    canonical: bool = True
    raced: bool = False
    race_winner: str = ""

    @property
    def is_optimal(self) -> bool:
        """Whether the component was solved to proven optimality."""
        return self.status == SolverStatus.OPTIMAL.value


def choose_backend(num_classes: int, num_candidates: int) -> str:
    """``auto``-mode heuristic: branch-and-bound for small components.

    Without scipy every component goes to the dependency-free
    branch-and-bound solver (slower on large dense components, but the
    pipeline stays fully functional).
    """
    del num_classes  # the candidate count dominates the bnb frontier
    if not scipy_backend.HAVE_SCIPY:
        return "bnb"
    return "bnb" if num_candidates <= AUTO_BNB_MAX_CANDIDATES else "scipy"


def greedy_incumbent(
    component: Component,
    min_count: int | None = None,
    max_count: int | None = None,
) -> tuple[list[int], float] | None:
    """A feasible exact cover by cheapest cost-per-class greedy choice.

    Repeatedly selects, among candidates fully inside the uncovered
    classes, the one with the lowest cost share (ties broken by sorted
    member tuple for determinism).  Returns ``(positions, cost)`` or
    ``None`` when the greedy run dead-ends or violates the count
    bounds — the incumbent is an upper bound only, never required.
    """
    uncovered = set(component.classes)
    chosen: list[int] = []
    total = 0.0
    while uncovered:
        best: tuple[float, tuple[str, ...], int] | None = None
        for position, (group, cost) in enumerate(
            zip(component.candidates, component.costs)
        ):
            if not group <= uncovered:
                continue
            key = (cost / len(group), tuple(sorted(group)), position)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        position = best[2]
        chosen.append(position)
        total += component.costs[position]
        uncovered -= component.candidates[position]
    if min_count is not None and len(chosen) < min_count:
        return None
    if max_count is not None and len(chosen) > max_count:
        return None
    return chosen, total


def _from_solver_result(
    outcome,
    component: Component,
    backend: str,
    min_count: int | None,
    max_count: int | None,
) -> ComponentSolution:
    if outcome.status is not SolverStatus.OPTIMAL:
        return ComponentSolution(
            status=outcome.status.value,
            nodes=outcome.nodes_explored,
            backend=backend,
            message=outcome.message,
            lp_cuts=outcome.lp_bound_cuts,
        )
    positions = sorted(
        int(name[1:]) for name in outcome.selected() if name.startswith("g")
    )
    # Canonical tie-break (see lexmin_optimal_selection): per-component
    # lex-min selections compose to the global lex-min, which is what
    # the monolithic path returns — so equal-cost optima cannot make
    # decomposed and monolithic solves diverge.
    target = sum(component.costs[position] for position in positions)
    canonical = lexmin_optimal_selection(
        component.classes,
        list(component.candidates),
        list(component.costs),
        target=target,
        min_count=min_count,
        max_count=max_count,
    )
    if canonical is not None:
        positions = canonical
    groups = tuple(
        tuple(sorted(component.candidates[position])) for position in positions
    )
    return ComponentSolution(
        status=SolverStatus.OPTIMAL.value,
        groups=groups,
        objective=sum(component.costs[position] for position in positions),
        nodes=outcome.nodes_explored,
        backend=backend,
        message=outcome.message,
        lp_cuts=outcome.lp_bound_cuts,
        canonical=canonical is not None,
    )


def _solve_bnb(
    component: Component,
    min_count: int | None,
    max_count: int | None,
    node_limit: int | None = None,
    time_limit: float | None = None,
    warm_start: bool = False,
    cancel_event=None,
) -> ComponentSolution:
    incumbent = (
        greedy_incumbent(component, min_count, max_count) if warm_start else None
    )
    solver = SetPartitionSolver(
        universe=list(component.classes),
        candidates=list(component.candidates),
        costs=list(component.costs),
        min_count=min_count,
        max_count=max_count,
        incumbent=incumbent,
        time_limit=time_limit,
        cancel_event=cancel_event,
        **({"node_limit": node_limit} if node_limit is not None else {}),
    )
    return _from_solver_result(solver.solve(), component, "bnb", min_count, max_count)


def _solve_scipy(
    component: Component,
    min_count: int | None,
    max_count: int | None,
    time_limit: float | None,
) -> ComponentSolution:
    from repro.core.selection import build_program

    program = build_program(
        list(component.candidates),
        list(component.costs),
        frozenset(component.classes),
        min_groups=min_count,
        max_groups=max_count,
    )
    return _from_solver_result(
        scipy_backend.solve(program, time_limit=time_limit),
        component,
        "scipy",
        min_count,
        max_count,
    )


def _usable(solution: ComponentSolution, backend: str) -> bool:
    """Whether a racer's result may decide the race (determinism rule).

    An optimal solution is usable only when canonicalized (both
    backends' canonical optima are byte-identical, so the race outcome
    cannot depend on timing); a non-canonical optimum is usable only
    from HiGHS, whose raw assignment is a deterministic function of the
    program matrix.  Infeasibility proofs are always usable.
    """
    if solution.status == SolverStatus.INFEASIBLE.value:
        return True
    if not solution.is_optimal:
        return False
    return solution.canonical or backend == "scipy"


def race_component(
    component: Component,
    min_count: int | None = None,
    max_count: int | None = None,
    time_limit: float | None = None,
    chaos=None,
) -> ComponentSolution:
    """Race branch-and-bound against HiGHS in true parallel.

    One thread runs the warm-started, LP-bounded branch-and-bound
    (cooperatively cancellable via :class:`threading.Event`), the other
    HiGHS (whose native solve releases the GIL).  The first *usable*
    finisher — see :func:`_usable` for the deterministic winner rule —
    decides the component; the losing branch-and-bound is cancelled at
    its next node-interval check, while a losing HiGHS solve is
    abandoned to its daemon thread.  A racer that fails outright
    concedes; both failing raises the combined :class:`SolverError`.

    ``chaos`` is a test seam: a callable invoked as ``chaos(name)``
    inside each racer thread before its solve, letting the race
    determinism suite inject seeded delays and faults per backend.
    """
    if not scipy_backend.HAVE_SCIPY:
        return _solve_bnb(
            component, min_count, max_count,
            time_limit=time_limit, warm_start=True,
        )
    cancel = threading.Event()
    finished = threading.Condition()
    outcomes: dict[str, "ComponentSolution | BaseException"] = {}

    def _racer(name, solve):
        outcome: "ComponentSolution | BaseException"
        try:
            if chaos is not None:
                chaos(name)
            outcome = solve()
        except BaseException as error:  # noqa: BLE001 - relayed to the waiter
            outcome = error
        with finished:
            outcomes[name] = outcome
            finished.notify_all()

    racers = {
        "bnb": lambda: _solve_bnb(
            component, min_count, max_count,
            time_limit=time_limit, warm_start=True, cancel_event=cancel,
        ),
        "scipy": lambda: _solve_scipy(component, min_count, max_count, time_limit),
    }
    threads = {
        name: threading.Thread(
            target=_racer, args=(name, solve),
            name=f"gecco-race-{name}", daemon=True,
        )
        for name, solve in racers.items()
    }
    for thread in threads.values():
        thread.start()

    winner: str | None = None
    with finished:
        while True:
            for name in _RACE_ORDER:
                outcome = outcomes.get(name)
                if isinstance(outcome, ComponentSolution) and _usable(
                    outcome, name
                ):
                    winner = name
                    break
            if winner is not None or len(outcomes) == len(racers):
                break
            finished.wait()
    cancel.set()
    if winner is None:
        # Neither produced a usable result.  Prefer reporting a real
        # solver outcome (e.g. both timed out) over a race artifact.
        for name in _RACE_ORDER:
            outcome = outcomes[name]
            if isinstance(outcome, ComponentSolution):
                return replace(outcome, raced=True, race_winner=name)
        errors = "; ".join(
            f"{name}: {outcomes[name]}" for name in _RACE_ORDER
        )
        raise SolverError(f"both race backends failed ({errors})")
    # Let the cancelled branch-and-bound unwind (it reacts within one
    # node interval); an unfinished HiGHS solve is left to its daemon
    # thread (reaped at interpreter exit) and its late result discarded.
    if winner != "bnb":
        threads["bnb"].join(timeout=30.0)
    else:
        _adopt_orphan(threads["scipy"])
    solution = outcomes[winner]
    assert isinstance(solution, ComponentSolution)
    return replace(solution, raced=True, race_winner=winner)


def solve_component(
    component: Component,
    backend: str = "scipy",
    min_count: int | None = None,
    max_count: int | None = None,
    time_limit: float | None = None,
    deadline=None,
    race: bool | None = None,
    race_chaos=None,
) -> ComponentSolution:
    """Solve one component with the requested backend (or the portfolio).

    ``backend`` is ``"scipy"``, ``"bnb"``, or ``"auto"``.  Explicit
    backends replicate the monolithic solver behavior exactly (no warm
    start, default node limit, HiGHS-only time limits).  ``"auto"``
    runs small components on a warm-started, node- and time-capped
    branch-and-bound; large components — and small ones whose node cap
    blows — go to the parallel race of :func:`race_component` (``race``
    forces the race on/off; the default follows this auto policy).

    ``deadline`` (a :class:`~repro.service.resilience.Deadline`) checks
    the remaining end-to-end budget at entry and caps ``time_limit`` to
    it — including on the otherwise-uncapped explicit ``"bnb"`` path.
    A solve that runs out of the capped budget fails typed
    (:class:`~repro.service.resilience.DeadlineExceeded`), never by
    degrading the solution: any solve that *finishes* returns exactly
    what the unbudgeted run would.
    """
    if backend not in ("bnb", "scipy", "auto"):
        raise SolverError(
            f"unknown component backend {backend!r}; use 'scipy', 'bnb', or 'auto'"
        )
    bnb_time_limit = None
    if deadline is not None:
        deadline.check("component solve")
        time_limit = deadline.cap(time_limit)
        bnb_time_limit = time_limit
    try:
        if backend == "bnb":
            return _solve_bnb(
                component, min_count, max_count, time_limit=bnb_time_limit
            )
        if backend == "scipy":
            return _solve_scipy(component, min_count, max_count, time_limit)
        racing = race if race is not None else scipy_backend.HAVE_SCIPY
        if choose_backend(component.num_classes, component.num_candidates) == "bnb":
            try:
                return _solve_bnb(
                    component,
                    min_count,
                    max_count,
                    node_limit=AUTO_BNB_NODE_LIMIT if scipy_backend.HAVE_SCIPY else None,
                    time_limit=time_limit,
                    warm_start=True,
                )
            except SolverCancelled:
                raise
            except SolverError:
                # Node/time budget exhausted: escalate to the race
                # (previously: sequential HiGHS fallback).
                if racing:
                    return race_component(
                        component, min_count, max_count,
                        time_limit=time_limit, chaos=race_chaos,
                    )
        elif racing:
            return race_component(
                component, min_count, max_count,
                time_limit=time_limit, chaos=race_chaos,
            )
        return _solve_scipy(component, min_count, max_count, time_limit)
    except SolverError:
        # A budget-exhausted solver under a deadline cap is a deadline
        # failure, not a solver defect — surface it typed.
        if deadline is not None and deadline.expired():
            from repro.service.resilience import DeadlineExceeded

            raise DeadlineExceeded(
                "component solve exhausted the deadline budget"
            ) from None
        raise


def count_bounds(component: Component) -> tuple[int, int]:
    """Feasible-count envelope ``(k_min, k_max)`` of a component.

    Any exact cover uses at least ``⌈classes / largest candidate⌉`` and
    at most ``|classes|`` groups; counts outside the envelope need not
    be enumerated when building Eq. 5 Pareto fronts.
    """
    largest = max((len(group) for group in component.candidates), default=1)
    k_min = math.ceil(component.num_classes / largest) if component.num_classes else 0
    return k_min, component.num_classes
