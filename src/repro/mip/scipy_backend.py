"""Binary-program backend built on ``scipy.optimize.milp`` (HiGHS).

This plays the role Gurobi plays in the paper's implementation: a
general MIP solver the Step-2 formulation is handed to.  HiGHS is exact
for the problem sizes GECCO produces (one binary variable per candidate
group) and returns provably optimal solutions.

``scipy`` (and its ``numpy`` dependency) is optional at import time:
:data:`HAVE_SCIPY` reports availability, the ``auto`` portfolio routes
every component to the dependency-free branch-and-bound solver when it
is missing, and an *explicit* ``backend="scipy"`` request then raises a
clear :class:`~repro.exceptions.SolverError`.
"""

from __future__ import annotations

from repro.exceptions import SolverError
from repro.mip.model import EQ, GE, LE, BinaryProgram
from repro.mip.result import SolverResult, SolverStatus

try:  # pragma: no cover - exercised by the numpy-absent CI smoke
    import numpy as np
    from scipy.optimize import Bounds, LinearConstraint as SciPyLinearConstraint, milp

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_SCIPY = False


def solve(program: BinaryProgram, time_limit: float | None = None) -> SolverResult:
    """Solve ``program`` to optimality with HiGHS.

    Parameters
    ----------
    time_limit:
        Optional wall-clock limit in seconds handed to HiGHS.
    """
    if not HAVE_SCIPY:
        raise SolverError(
            "the scipy backend requires scipy; install it or select "
            "solver='bnb' (or 'auto', which degrades to bnb)"
        )
    variables = program.variables
    if not variables:
        return SolverResult(SolverStatus.OPTIMAL, objective=0.0, values={})
    index = {name: position for position, name in enumerate(variables)}
    costs = np.array([program.cost_of(name) for name in variables], dtype=float)

    constraints = []
    for constraint in program.constraints:
        row = np.zeros(len(variables))
        for variable, coefficient in constraint.coefficients:
            row[index[variable]] = coefficient
        if constraint.sense == LE:
            lower, upper = -np.inf, constraint.rhs
        elif constraint.sense == GE:
            lower, upper = constraint.rhs, np.inf
        elif constraint.sense == EQ:
            lower = upper = constraint.rhs
        else:  # pragma: no cover - model layer already validates senses
            raise SolverError(f"unknown sense {constraint.sense!r}")
        constraints.append(SciPyLinearConstraint(row, lower, upper))

    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    outcome = milp(
        c=costs,
        integrality=np.ones(len(variables)),
        bounds=Bounds(0, 1),
        constraints=constraints or None,
        options=options or None,
    )

    if outcome.status == 0 and outcome.x is not None:
        values = {
            name: int(round(outcome.x[index[name]])) for name in variables
        }
        return SolverResult(
            SolverStatus.OPTIMAL,
            objective=float(costs @ outcome.x),
            values=values,
            message=str(outcome.message),
        )
    if outcome.status == 2:
        return SolverResult(SolverStatus.INFEASIBLE, message=str(outcome.message))
    if outcome.status == 3:
        return SolverResult(SolverStatus.UNBOUNDED, message=str(outcome.message))
    return SolverResult(SolverStatus.ERROR, message=str(outcome.message))
