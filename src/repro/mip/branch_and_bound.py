"""Self-contained branch-and-bound solver for weighted set partitioning.

GECCO's Step-2 MIP is a *weighted exact cover*: pick disjoint candidate
groups covering every event class exactly once at minimal total
distance, optionally with bounds on the number of picked groups
(paper Eqs. 3–5).  This solver exploits that structure directly and
serves both as a Gurobi-free fallback and as an independent oracle to
cross-check the HiGHS backend in tests.

Search strategy
---------------
* **Branching**: always extend the uncovered class with the fewest
  compatible candidates (minimum-remaining-values), trying candidates
  in ascending cost-per-class order so good incumbents appear early.
* **Bounding**: the cost of covering the remaining classes is bounded
  from below by the sum, over uncovered classes, of the cheapest
  *cost share* ``cost(g)/|g|`` among candidates containing the class —
  admissible because any partition charges each class exactly its
  group's share, which is at least the class's minimum share.
* **Cardinality pruning**: a partial solution with ``m`` groups is
  pruned when ``m`` exceeds the maximum, when even one group per
  remaining class cannot reach the minimum, or when the remaining
  classes cannot be covered with few enough groups given the largest
  candidate size.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import SolverError
from repro.mip.result import SolverResult, SolverStatus


class SetPartitionSolver:
    """Branch-and-bound solver for one weighted set-partitioning instance.

    Parameters
    ----------
    universe:
        Event classes that must each be covered exactly once.
    candidates:
        Candidate groups (subsets of the universe).
    costs:
        Cost per candidate, parallel to ``candidates``.  Costs must be
        non-negative for the bound to be admissible.
    min_count / max_count:
        Optional bounds on the number of selected candidates.
    node_limit:
        Safety valve on explored search nodes.
    """

    def __init__(
        self,
        universe: Sequence[str],
        candidates: Sequence[frozenset[str]],
        costs: Sequence[float],
        min_count: int | None = None,
        max_count: int | None = None,
        node_limit: int = 2_000_000,
    ):
        if len(candidates) != len(costs):
            raise SolverError("candidates and costs must have equal length")
        if any(cost < 0 for cost in costs):
            raise SolverError("set-partition costs must be non-negative")
        self.universe = tuple(sorted(set(universe)))
        self.candidates = [frozenset(candidate) for candidate in candidates]
        for candidate in self.candidates:
            if not candidate <= set(self.universe):
                raise SolverError(
                    f"candidate {sorted(candidate)} is not a subset of the universe"
                )
            if not candidate:
                raise SolverError("empty candidate group")
        self.costs = [float(cost) for cost in costs]
        self.min_count = min_count
        self.max_count = max_count
        self.node_limit = node_limit

        self._by_class: dict[str, list[int]] = {cls: [] for cls in self.universe}
        for position, candidate in enumerate(self.candidates):
            for cls in candidate:
                self._by_class[cls].append(position)
        # Candidates per class in ascending cost-per-class order.
        for cls, positions in self._by_class.items():
            positions.sort(key=lambda p: self.costs[p] / len(self.candidates[p]))
        self._min_share = {
            cls: min(
                (self.costs[p] / len(self.candidates[p]) for p in positions),
                default=math.inf,
            )
            for cls, positions in self._by_class.items()
        }
        self._max_candidate_size = max(
            (len(candidate) for candidate in self.candidates), default=1
        )

        self._best_cost = math.inf
        self._best_selection: list[int] | None = None
        self._nodes = 0

    # -- public API ----------------------------------------------------------

    def solve(self) -> SolverResult:
        """Run the search; returns an optimal selection or infeasibility."""
        if any(not positions for positions in self._by_class.values()):
            missing = [cls for cls, pos in self._by_class.items() if not pos]
            return SolverResult(
                SolverStatus.INFEASIBLE,
                message=f"classes without covering candidate: {missing}",
            )
        if not self.universe:
            feasible_empty = (self.min_count or 0) <= 0
            if feasible_empty:
                return SolverResult(SolverStatus.OPTIMAL, objective=0.0, values={})
            return SolverResult(
                SolverStatus.INFEASIBLE, message="empty universe cannot meet min_count"
            )
        self._search(frozenset(), [], 0.0)
        if self._best_selection is None:
            return SolverResult(
                SolverStatus.INFEASIBLE,
                nodes_explored=self._nodes,
                message="exhausted search without feasible partition",
            )
        values = {f"g{p}": 0 for p in range(len(self.candidates))}
        for position in self._best_selection:
            values[f"g{position}"] = 1
        return SolverResult(
            SolverStatus.OPTIMAL,
            objective=self._best_cost,
            values=values,
            nodes_explored=self._nodes,
        )

    def selected_groups(self, result: SolverResult) -> list[frozenset[str]]:
        """Decode a result's selected variables back into groups."""
        return [
            self.candidates[int(name[1:])]
            for name in result.selected()
        ]

    # -- search --------------------------------------------------------------

    def _lower_bound(self, covered: frozenset[str]) -> float:
        return sum(
            self._min_share[cls] for cls in self.universe if cls not in covered
        )

    def _cardinality_prunes(self, covered: frozenset[str], count: int) -> bool:
        remaining = len(self.universe) - len(covered)
        if self.max_count is not None:
            # Even the largest candidates cannot cover the rest within budget.
            needed = math.ceil(remaining / self._max_candidate_size)
            if count + needed > self.max_count:
                return True
        if self.min_count is not None:
            # Each further group covers at least one class.
            if count + remaining < self.min_count:
                return True
        return False

    def _search(
        self, covered: frozenset[str], selection: list[int], cost: float
    ) -> None:
        self._nodes += 1
        if self._nodes > self.node_limit:
            raise SolverError(
                f"branch-and-bound node limit ({self.node_limit}) exceeded"
            )
        if len(covered) == len(self.universe):
            count = len(selection)
            if self.min_count is not None and count < self.min_count:
                return
            if self.max_count is not None and count > self.max_count:
                return
            if cost < self._best_cost:
                self._best_cost = cost
                self._best_selection = list(selection)
            return
        if cost + self._lower_bound(covered) >= self._best_cost:
            return
        if self._cardinality_prunes(covered, len(selection)):
            return

        # Branch on the uncovered class with the fewest compatible options.
        branch_class = None
        branch_options: list[int] | None = None
        for cls in self.universe:
            if cls in covered:
                continue
            options = [
                position
                for position in self._by_class[cls]
                if not (self.candidates[position] & covered)
            ]
            if not options:
                return  # dead end: class can no longer be covered
            if branch_options is None or len(options) < len(branch_options):
                branch_class, branch_options = cls, options
                if len(options) == 1:
                    break
        assert branch_options is not None and branch_class is not None
        for position in branch_options:
            candidate = self.candidates[position]
            selection.append(position)
            self._search(covered | candidate, selection, cost + self.costs[position])
            selection.pop()
