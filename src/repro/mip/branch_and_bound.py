"""Self-contained branch-and-bound solver for weighted set partitioning.

GECCO's Step-2 MIP is a *weighted exact cover*: pick disjoint candidate
groups covering every event class exactly once at minimal total
distance, optionally with bounds on the number of picked groups
(paper Eqs. 3–5).  This solver exploits that structure directly and
serves both as a Gurobi-free fallback and as an independent oracle to
cross-check the HiGHS backend in tests.

Search strategy
---------------
* **Branching**: always extend the uncovered class with the fewest
  compatible candidates (minimum-remaining-values), trying candidates
  in ascending cost-per-class order so good incumbents appear early.
* **Bounding**: the cost of covering the remaining classes is bounded
  from below by the sum, over uncovered classes, of the cheapest
  *cost share* ``cost(g)/|g|`` among candidates containing the class —
  admissible because any partition charges each class exactly its
  group's share, which is at least the class's minimum share.
* **LP-relaxation bounding** (scipy-gated): on programs where the
  search survives past an activation node budget, the LP relaxation of
  the covering program is solved once and its per-class dual prices
  ``y`` replace the cost shares wherever they are tighter.  Corrected
  to exact dual feasibility (``Σ_{c∈g} y_c ≤ cost(g)`` for every
  candidate, re-verified with :func:`math.fsum` and shaved by a
  float-summation safety margin), the prices bound any exact cover of
  the remaining classes from below by ``Σ_{c uncovered} y_c`` — an
  admissible bound that prunes far deeper than cost shares on dense
  components.  Without scipy the solver silently keeps the cost-share
  bound; either way the returned selection is *identical* (an
  admissible bound never prunes the first optimum in DFS order, and
  adoption requires strict improvement).
* **Cardinality pruning**: a partial solution with ``m`` groups is
  pruned when ``m`` exceeds the maximum, when even one group per
  remaining class cannot reach the minimum, or when the remaining
  classes cannot be covered with few enough groups given the largest
  candidate size.
"""

from __future__ import annotations

import math
import sys
import time
from collections.abc import Sequence

from repro.exceptions import SolverError
from repro.mip.result import SolverResult, SolverStatus

#: How often (in nodes) the search checks its wall-clock deadline and
#: cooperative cancellation event.
_TIME_CHECK_INTERVAL = 1024

#: ``lp_bound=None`` (auto) solves the LP relaxation only once the
#: search has burned this many nodes: easy instances never pay the
#: linprog call, hard ones amortize it over deep pruning.
LP_ACTIVATION_NODES = 2048


class SolverCancelled(SolverError):
    """The search was cooperatively cancelled (portfolio race lost)."""


class SetPartitionSolver:
    """Branch-and-bound solver for one weighted set-partitioning instance.

    Parameters
    ----------
    universe:
        Event classes that must each be covered exactly once.
    candidates:
        Candidate groups (subsets of the universe).
    costs:
        Cost per candidate, parallel to ``candidates``.  Costs must be
        non-negative for the bound to be admissible.
    min_count / max_count:
        Optional bounds on the number of selected candidates.
    node_limit:
        Safety valve on explored search nodes.
    incumbent:
        Optional warm start ``(positions, cost)`` — a known feasible
        selection (e.g. a greedy cover) whose cost seeds the upper
        bound, so the search starts pruning immediately.  The incumbent
        is validated (disjoint, exactly covering, within the count
        bounds); the search returns it unchanged only when nothing
        strictly cheaper exists.
    time_limit:
        Optional wall-clock budget in seconds; exceeding it raises
        :class:`SolverError` (the portfolio layer catches this and
        falls back to another backend).
    lp_bound:
        ``True`` solves the LP relaxation up front for dual-price
        bounds, ``False`` keeps the cost-share bound only, ``None``
        (default) activates the LP lazily after
        :data:`LP_ACTIVATION_NODES` search nodes.  Ignored (cost-share
        only) when scipy is unavailable; the returned selection is
        identical in every case.
    cancel_event:
        Optional :class:`threading.Event`; once set, the search raises
        :class:`SolverCancelled` at the next node-interval check (the
        portfolio race uses this for first-finisher cancellation).
    """

    def __init__(
        self,
        universe: Sequence[str],
        candidates: Sequence[frozenset[str]],
        costs: Sequence[float],
        min_count: int | None = None,
        max_count: int | None = None,
        node_limit: int = 2_000_000,
        incumbent: "tuple[Sequence[int], float] | None" = None,
        time_limit: float | None = None,
        lp_bound: bool | None = None,
        cancel_event=None,
    ):
        if len(candidates) != len(costs):
            raise SolverError("candidates and costs must have equal length")
        if any(cost < 0 for cost in costs):
            raise SolverError("set-partition costs must be non-negative")
        self.universe = tuple(sorted(set(universe)))
        self.candidates = [frozenset(candidate) for candidate in candidates]
        for candidate in self.candidates:
            if not candidate <= set(self.universe):
                raise SolverError(
                    f"candidate {sorted(candidate)} is not a subset of the universe"
                )
            if not candidate:
                raise SolverError("empty candidate group")
        self.costs = [float(cost) for cost in costs]
        self.min_count = min_count
        self.max_count = max_count
        self.node_limit = node_limit

        self._by_class: dict[str, list[int]] = {cls: [] for cls in self.universe}
        for position, candidate in enumerate(self.candidates):
            for cls in candidate:
                self._by_class[cls].append(position)
        # Candidates per class in ascending cost-per-class order.
        for cls, positions in self._by_class.items():
            positions.sort(key=lambda p: self.costs[p] / len(self.candidates[p]))
        self._min_share = {
            cls: min(
                (self.costs[p] / len(self.candidates[p]) for p in positions),
                default=math.inf,
            )
            for cls, positions in self._by_class.items()
        }
        self._max_candidate_size = max(
            (len(candidate) for candidate in self.candidates), default=1
        )

        self._best_cost = math.inf
        self._best_selection: list[int] | None = None
        self._nodes = 0
        self._time_limit = time_limit
        self._deadline: float | None = None
        self._cancel = cancel_event
        self._lp_bound = lp_bound
        self._lp_tried = False
        self._lp_cuts = 0
        #: ``cls -> dual price`` once the LP relaxation has been solved
        #: and corrected to exact dual feasibility; ``None`` before.
        self._dual: dict[str, float] | None = None
        self._dual_slack = 0.0
        if incumbent is not None:
            self._adopt_incumbent(incumbent)

    def _adopt_incumbent(self, incumbent: "tuple[Sequence[int], float]") -> None:
        """Validate a warm-start selection and seed the upper bound."""
        positions = list(incumbent[0])
        covered: set[str] = set()
        cost = 0.0
        for position in positions:
            if not 0 <= position < len(self.candidates):
                raise SolverError(f"incumbent references candidate {position}")
            group = self.candidates[position]
            if covered & group:
                raise SolverError("incumbent selection is not disjoint")
            covered |= group
            cost += self.costs[position]
        if covered != set(self.universe):
            raise SolverError("incumbent selection does not cover the universe")
        if self.min_count is not None and len(positions) < self.min_count:
            raise SolverError("incumbent selection violates min_count")
        if self.max_count is not None and len(positions) > self.max_count:
            raise SolverError("incumbent selection violates max_count")
        self._best_cost = cost
        self._best_selection = positions

    # -- public API ----------------------------------------------------------

    def solve(self) -> SolverResult:
        """Run the search; returns an optimal selection or infeasibility."""
        if any(not positions for positions in self._by_class.values()):
            missing = [cls for cls, pos in self._by_class.items() if not pos]
            return SolverResult(
                SolverStatus.INFEASIBLE,
                message=f"classes without covering candidate: {missing}",
            )
        if not self.universe:
            feasible_empty = (self.min_count or 0) <= 0
            if feasible_empty:
                return SolverResult(SolverStatus.OPTIMAL, objective=0.0, values={})
            return SolverResult(
                SolverStatus.INFEASIBLE, message="empty universe cannot meet min_count"
            )
        if self._time_limit is not None:
            self._deadline = time.perf_counter() + self._time_limit
        if self._lp_bound is True:
            self._solve_lp_relaxation()
        self._search(frozenset(), [], 0.0)
        if self._best_selection is None:
            return SolverResult(
                SolverStatus.INFEASIBLE,
                nodes_explored=self._nodes,
                lp_bound_cuts=self._lp_cuts,
                message="exhausted search without feasible partition",
            )
        values = {f"g{p}": 0 for p in range(len(self.candidates))}
        for position in self._best_selection:
            values[f"g{position}"] = 1
        return SolverResult(
            SolverStatus.OPTIMAL,
            objective=self._best_cost,
            values=values,
            nodes_explored=self._nodes,
            lp_bound_cuts=self._lp_cuts,
        )

    def selected_groups(self, result: SolverResult) -> list[frozenset[str]]:
        """Decode a result's selected variables back into groups."""
        return [
            self.candidates[int(name[1:])]
            for name in result.selected()
        ]

    # -- LP-relaxation bound -------------------------------------------------

    def _solve_lp_relaxation(self) -> None:
        """Solve the covering LP once and keep corrected dual prices.

        Count bounds are deliberately left out of the relaxation: they
        only shrink the feasible set, so the covering duals stay an
        admissible lower bound for the bounded program too.  Any
        failure (scipy missing, LP numerically troubled) leaves
        ``self._dual`` unset and the cost-share bound in charge.
        """
        self._lp_tried = True
        from repro.mip import scipy_backend

        if not scipy_backend.HAVE_SCIPY or not self.candidates:
            return
        np = scipy_backend.np
        try:
            from scipy.optimize import linprog

            class_row = {cls: row for row, cls in enumerate(self.universe)}
            matrix = np.zeros((len(self.universe), len(self.candidates)))
            for position, candidate in enumerate(self.candidates):
                for cls in candidate:
                    matrix[class_row[cls], position] = 1.0
            outcome = linprog(
                np.asarray(self.costs, dtype=float),
                A_eq=matrix,
                b_eq=np.ones(len(self.universe)),
                bounds=(0, None),
                method="highs",
            )
            if outcome.status != 0 or outcome.eqlin is None:
                return
            prices = {
                cls: float(outcome.eqlin.marginals[row])
                for cls, row in class_row.items()
            }
        except Exception:  # pragma: no cover - defensive: LP is optional
            return
        # Correct to exact dual feasibility: for every violated
        # candidate spread the violation over its members (each member
        # absorbs the worst per-class share among its violated groups,
        # so every group's total reduction covers its own violation),
        # then shave the fsum-measured residual off every class.
        reduction = {cls: 0.0 for cls in self.universe}
        for position, candidate in enumerate(self.candidates):
            slack = self.costs[position] - math.fsum(
                prices[cls] for cls in candidate
            )
            if slack < 0:
                per_class = -slack / len(candidate)
                for cls in candidate:
                    if per_class > reduction[cls]:
                        reduction[cls] = per_class
        prices = {cls: prices[cls] - reduction[cls] for cls in self.universe}
        residual = 0.0
        for position, candidate in enumerate(self.candidates):
            slack = self.costs[position] - math.fsum(
                prices[cls] for cls in candidate
            )
            if -slack > residual:
                residual = -slack
        if residual > 0.0:
            prices = {cls: value - residual for cls, value in prices.items()}
        # Per-node bounds use a plain (not fsum) accumulation; reserve
        # a rigorous sequential-summation error margin for it.
        scale = math.fsum(abs(value) for value in prices.values())
        self._dual_slack = (
            4.0 * (len(self.universe) + 1) * sys.float_info.epsilon * scale
        )
        self._dual = prices

    # -- search --------------------------------------------------------------

    def _lower_bound(self, covered: frozenset[str]) -> float:
        return sum(
            self._min_share[cls] for cls in self.universe if cls not in covered
        )

    def _dual_bound(self, covered: frozenset[str]) -> float:
        dual = self._dual
        assert dual is not None
        return (
            sum(dual[cls] for cls in self.universe if cls not in covered)
            - self._dual_slack
        )

    def _cardinality_prunes(self, covered: frozenset[str], count: int) -> bool:
        remaining = len(self.universe) - len(covered)
        if self.max_count is not None:
            # Even the largest candidates cannot cover the rest within budget.
            needed = math.ceil(remaining / self._max_candidate_size)
            if count + needed > self.max_count:
                return True
        if self.min_count is not None:
            # Each further group covers at least one class.
            if count + remaining < self.min_count:
                return True
        return False

    def _search(
        self, covered: frozenset[str], selection: list[int], cost: float
    ) -> None:
        self._nodes += 1
        if self._nodes > self.node_limit:
            raise SolverError(
                f"branch-and-bound node limit ({self.node_limit}) exceeded"
            )
        if self._nodes % _TIME_CHECK_INTERVAL == 0:
            if self._cancel is not None and self._cancel.is_set():
                raise SolverCancelled("branch-and-bound search cancelled")
            if (
                self._deadline is not None
                and time.perf_counter() > self._deadline
            ):
                raise SolverError(
                    f"branch-and-bound time limit ({self._time_limit}s) exceeded"
                )
        if (
            self._lp_bound is None
            and not self._lp_tried
            and self._nodes >= LP_ACTIVATION_NODES
        ):
            self._solve_lp_relaxation()
        if len(covered) == len(self.universe):
            count = len(selection)
            if self.min_count is not None and count < self.min_count:
                return
            if self.max_count is not None and count > self.max_count:
                return
            if cost < self._best_cost:
                self._best_cost = cost
                self._best_selection = list(selection)
            return
        share_bound = self._lower_bound(covered)
        bound = share_bound
        if self._dual is not None:
            dual_bound = self._dual_bound(covered)
            if dual_bound > bound:
                bound = dual_bound
        if cost + bound >= self._best_cost:
            if cost + share_bound < self._best_cost:
                self._lp_cuts += 1  # only the LP price made this prune
            return
        if self._cardinality_prunes(covered, len(selection)):
            return

        # Branch on the uncovered class with the fewest compatible options.
        branch_class = None
        branch_options: list[int] | None = None
        for cls in self.universe:
            if cls in covered:
                continue
            options = [
                position
                for position in self._by_class[cls]
                if not (self.candidates[position] & covered)
            ]
            if not options:
                return  # dead end: class can no longer be covered
            if branch_options is None or len(options) < len(branch_options):
                branch_class, branch_options = cls, options
                if len(options) == 1:
                    break
        assert branch_options is not None and branch_class is not None
        for position in branch_options:
            candidate = self.candidates[position]
            selection.append(position)
            self._search(covered | candidate, selection, cost + self.costs[position])
            selection.pop()


class _CanonicalAbort(Exception):
    """Internal: the canonicalization search ran out of node budget."""


def lexmin_optimal_selection(
    universe: Sequence[str],
    candidates: Sequence[frozenset[str]],
    costs: Sequence[float],
    target: float,
    min_count: int | None = None,
    max_count: int | None = None,
    node_limit: int = 2_000_000,
    tolerance: float = 1e-9,
) -> list[int] | None:
    """The lexicographically-smallest optimal selection of a solved program.

    Given the proven optimal objective ``target`` of a weighted
    set-partitioning program, find — among all selections of cost
    ``<= target + tolerance`` that exactly cover ``universe`` within the
    count bounds — the one whose sorted candidate positions are
    lexicographically smallest.  This is the **canonical tie-break**
    shared by the monolithic and decomposed Step-2 paths: equal-cost
    optima exist in real programs, different solvers (or the same
    solver on a permuted matrix) break them differently, and the
    byte-identity contract between the paths needs one deterministic
    winner.  Because the first difference between two unions of
    disjoint-support selections lies inside their symmetric difference,
    per-component lex-min selections compose to the global lex-min —
    canonicalizing each overlap component independently yields exactly
    this function's answer on the full program.

    Depth-first over positions in ascending order, trying *include*
    before *exclude*, pruned by the optimal-cost bound (only
    optimal-cost paths survive), cost-share lower bounds, count
    envelopes, and per-class coverage horizons.  Returns ``None`` when
    the ``node_limit`` budget is exhausted (callers keep the solver's
    own selection in that case).
    """
    ordered_classes = sorted(set(universe))
    universe_set = frozenset(ordered_classes)
    total = len(universe_set)
    if not total:
        return []
    count = len(candidates)
    min_share: dict[str, float] = {cls: math.inf for cls in ordered_classes}
    last_position: dict[str, int] = {cls: -1 for cls in ordered_classes}
    largest = 1
    for position, candidate in enumerate(candidates):
        largest = max(largest, len(candidate))
        share = costs[position] / len(candidate)
        for cls in candidate:
            if share < min_share[cls]:
                min_share[cls] = share
            last_position[cls] = position
    nodes = 0

    def _search(position, covered, selected, cost, selection):
        # The exclude branch iterates (recursing per skipped candidate
        # would overflow the stack on large programs); only the include
        # branch recurses, bounding the depth by the partition size.
        nonlocal nodes
        remaining = total - len(covered)
        while True:
            nodes += 1
            if nodes > node_limit:
                raise _CanonicalAbort
            if remaining == 0:
                if min_count is not None and selected < min_count:
                    return None
                if max_count is not None and selected > max_count:
                    return None
                return list(selection)
            if position == count:
                return None
            bound = 0.0
            for cls in ordered_classes:
                if cls not in covered:
                    if last_position[cls] < position:
                        return None  # the class can no longer be covered
                    bound += min_share[cls]
            if cost + bound > target + tolerance:
                return None
            if (
                max_count is not None
                and selected + math.ceil(remaining / largest) > max_count
            ):
                return None
            if min_count is not None and selected + remaining < min_count:
                return None
            candidate = candidates[position]
            if not (candidate & covered) and cost + costs[position] <= target + tolerance:
                selection.append(position)
                found = _search(
                    position + 1,
                    covered | candidate,
                    selected + 1,
                    cost + costs[position],
                    selection,
                )
                if found is not None:
                    return found
                selection.pop()
            position += 1

    try:
        return _search(0, frozenset(), 0, 0.0, [])
    except _CanonicalAbort:
        return None
