"""A small modeling layer for binary linear programs.

The paper formulates Step 2 as a MIP and hands it to Gurobi.  This
reproduction cannot ship Gurobi, so it provides (i) this backend-neutral
model layer, (ii) a :mod:`scipy`-HiGHS backend
(:mod:`repro.mip.scipy_backend`), and (iii) a self-contained
branch-and-bound solver specialized for the weighted set-partitioning
structure (:mod:`repro.mip.branch_and_bound`).  All backends consume a
:class:`BinaryProgram`.

Only what GECCO needs is modeled: binary variables, linear constraints
with ``<= / == / >=`` senses, and a linear minimization objective.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import SolverError

#: Constraint senses.
LE, EQ, GE = "<=", "==", ">="
_SENSES = (LE, EQ, GE)


@dataclass(frozen=True)
class LinearConstraint:
    """``sum(coefficients[v] * v) <sense> rhs`` over binary variables."""

    coefficients: tuple[tuple[str, float], ...]
    sense: str
    rhs: float
    name: str = ""

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Check the constraint under a complete 0/1 assignment."""
        total = sum(
            coefficient * assignment.get(variable, 0)
            for variable, coefficient in self.coefficients
        )
        if self.sense == LE:
            return total <= self.rhs + 1e-9
        if self.sense == GE:
            return total >= self.rhs - 1e-9
        return abs(total - self.rhs) <= 1e-9


class BinaryProgram:
    """A binary linear program: minimize ``c @ x`` s.t. linear constraints."""

    def __init__(self):
        self._objective: dict[str, float] = {}
        self._variables: list[str] = []
        self._variable_set: set[str] = set()
        self.constraints: list[LinearConstraint] = []

    # -- construction ------------------------------------------------------

    def add_variable(self, name: str, cost: float = 0.0) -> str:
        """Declare a binary variable with objective coefficient ``cost``."""
        if name in self._variable_set:
            raise SolverError(f"variable {name!r} declared twice")
        self._variables.append(name)
        self._variable_set.add(name)
        self._objective[name] = float(cost)
        return name

    def add_constraint(
        self,
        coefficients: Mapping[str, float],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> None:
        """Add ``sum(coeff * var) <sense> rhs``."""
        if sense not in _SENSES:
            raise SolverError(f"unknown constraint sense {sense!r}")
        for variable in coefficients:
            if variable not in self._variable_set:
                raise SolverError(f"constraint references unknown variable {variable!r}")
        self.constraints.append(
            LinearConstraint(
                coefficients=tuple(sorted(coefficients.items())),
                sense=sense,
                rhs=float(rhs),
                name=name,
            )
        )

    # -- queries -----------------------------------------------------------

    @property
    def variables(self) -> list[str]:
        """Variable names in declaration order."""
        return list(self._variables)

    def cost_of(self, variable: str) -> float:
        """Objective coefficient of ``variable``."""
        return self._objective[variable]

    def objective_value(self, assignment: Mapping[str, int]) -> float:
        """Objective under a 0/1 assignment."""
        return sum(
            cost * assignment.get(variable, 0)
            for variable, cost in self._objective.items()
        )

    def is_feasible(self, assignment: Mapping[str, int]) -> bool:
        """Whether a complete 0/1 assignment satisfies every constraint."""
        return all(constraint.evaluate(assignment) for constraint in self.constraints)

    def __repr__(self) -> str:
        return (
            f"BinaryProgram({len(self._variables)} variables, "
            f"{len(self.constraints)} constraints)"
        )
