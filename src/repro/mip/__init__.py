"""MIP substrate: modeling layer and solver backends (Gurobi replacement)."""

from repro.mip.branch_and_bound import SetPartitionSolver
from repro.mip.model import EQ, GE, LE, BinaryProgram, LinearConstraint
from repro.mip.result import SolverResult, SolverStatus
from repro.mip import scipy_backend

__all__ = [
    "BinaryProgram",
    "LinearConstraint",
    "LE",
    "EQ",
    "GE",
    "SetPartitionSolver",
    "SolverResult",
    "SolverStatus",
    "scipy_backend",
]
