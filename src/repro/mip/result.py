"""Solver result types shared by all MIP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SolverStatus(enum.Enum):
    """Outcome of a MIP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class SolverResult:
    """Result of solving a binary program.

    Attributes
    ----------
    status:
        Outcome classification.
    objective:
        Objective value at the solution (``None`` unless optimal).
    values:
        Variable assignment as ``name -> 0/1`` (``None`` unless optimal).
    nodes_explored:
        Search nodes visited (backend-specific; 0 when unknown).
    lp_bound_cuts:
        Branch-and-bound prunes decided *only* by the LP-relaxation
        dual bound (the cost-share bound alone would have kept
        searching); 0 for other backends or when the LP never ran.
    message:
        Backend diagnostic text.
    """

    status: SolverStatus
    objective: float | None = None
    values: dict[str, int] | None = None
    nodes_explored: int = 0
    lp_bound_cuts: int = 0
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is SolverStatus.OPTIMAL

    def selected(self) -> list[str]:
        """Names of variables set to 1 (empty when not optimal)."""
        if not self.values:
            return []
        return [name for name, value in self.values.items() if value]
