"""The GECCO facade: configuration, pipeline, and result objects.

:class:`Gecco` wires the three steps of the approach together
(Fig. 4): candidate computation (exhaustive or DFG-based, optionally
followed by exclusive-candidate merging), MIP-based selection of an
optimal grouping, and abstraction of the log.  The result object
carries the abstracted log, the grouping, the achieved distance, and
per-step timings; when the problem is infeasible it carries the
original log plus an :class:`~repro.constraints.sets.InfeasibilityReport`
so users can refine their constraints (paper §V-C).

Typical use::

    from repro import Gecco, GeccoConfig
    from repro.constraints import ConstraintSet, MaxDistinctClassAttribute

    constraints = ConstraintSet([MaxDistinctClassAttribute("org:role", 1)])
    result = Gecco(constraints, GeccoConfig(strategy="dfg")).abstract(log)
    result.abstracted_log   # the high-level log
    result.grouping         # the chosen groups

**Engine selection.**  Step 1 can run on two interchangeable engines
(``GeccoConfig(engine=...)``):

* ``"compiled"`` (default) — the integer-encoded hot path of
  :mod:`repro.core.encoding`: event classes are interned to integer IDs
  once per log, instance detection is vectorized with ``numpy``, groups
  and trace sets are bitmasks, and the beam search extends co-occurrence
  checks incrementally.  Identical candidates, distances, and groupings
  as the reference engine, typically ≥5× faster on the candidate phase
  (see ``benchmarks/run_perf.py``).  Requires ``numpy``; when ``numpy``
  is unavailable the pipeline falls back to ``"python"`` with a
  ``RuntimeWarning`` and records the effective engine on the result
  (:attr:`AbstractionResult.engine`).
* ``"python"`` — the pure-Python reference implementation.  Pick it to
  cross-check results, to debug, or on deployments without ``numpy``.

**Artifact sharing.**  The expensive per-log artifacts (the compiled
log, the instance index, and the DFG) depend only on the log, the
instance policy, and the engine — not on the constraints.  Callers that
solve many problems on the same log (the service runtime of
:mod:`repro.service`, the experiment runner) build them once with
:func:`prepare_artifacts` and pass them to :meth:`Gecco.abstract`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.constraints.sets import ConstraintSet, InfeasibilityReport
from repro.core import encoding
from repro.core.abstraction import STRATEGIES, abstract_log
from repro.core.candidates import CandidateResult, exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import default_beam_width, dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.exclusive import merge_exclusive_candidates
from repro.core.grouping import Grouping
from repro.core.instances import POLICIES, InstanceIndex
from repro.core.selection import SOLVER_CHOICES, select_optimal_grouping
from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import EventLog
from repro.exceptions import ConstraintError, InfeasibleProblemError

#: Step-1 strategies.
STEP1_STRATEGIES = ("exhaustive", "dfg")

#: Pipeline engines (see the module docstring).
ENGINES = ("compiled", "python")

#: Step-2 selection modes: the paper-literal single MIP, or the
#: decomposed pipeline of :mod:`repro.selection2`.
SELECTION_MODES = ("monolithic", "decomposed")


@dataclass
class GeccoConfig:
    """Configuration of the GECCO pipeline.

    Attributes
    ----------
    strategy:
        Step-1 instantiation: ``"exhaustive"`` (Alg. 1) or ``"dfg"``
        (Alg. 2).
    beam_width:
        Beam width ``k`` for the DFG strategy.  ``None`` = unlimited
        (the paper's DFG∞); ``"auto"`` = ``5 * |C_L|`` (the paper's
        DFGk); an integer sets ``k`` explicitly.
    exclusive_merging:
        Whether to run the Algorithm-3 post pass (default ``True``).
    instance_policy:
        Instance-splitting policy (see :mod:`repro.core.instances`).
    abstraction_strategy:
        ``"complete"`` or ``"start_complete"`` (Step 3).
    solver:
        Step-2 backend: ``"auto"`` (default — the size-based portfolio
        of :mod:`repro.selection2.portfolio`, applied per component in
        decomposed mode; picks warm-started branch-and-bound for small
        components and HiGHS for large ones, identical groupings
        either way), ``"scipy"`` (always HiGHS), or ``"bnb"``.
    selection:
        Step-2 mode: ``"decomposed"`` (default — the
        :mod:`repro.selection2` pipeline: overlap-graph decomposition,
        certified presolve, per-component portfolio, Eq. 5 coordination)
        or ``"monolithic"`` (the paper-literal single MIP).  Both return
        byte-identical groupings (enforced by
        ``tests/test_selection_decomposed.py``).
    selection_workers:
        Worker processes for parallel component solving in decomposed
        mode (1 = in-process).  Values > 1 spin up a transient pool per
        solve; long-running callers should instead pass an executor to
        :func:`repro.selection2.select_decomposed` directly.
    candidate_timeout:
        Wall-clock budget (seconds) for Step 1; on expiry GECCO
        continues with the candidates found so far (paper §VI-A).
    solver_time_limit:
        Optional time limit for the MIP backend.
    raise_on_infeasible:
        Raise :class:`InfeasibleProblemError` instead of returning the
        original log when no feasible grouping exists.
    label_attribute:
        Optional event-attribute key; groups whose classes share a
        single value of it are labeled ``<value>_Activity_<i>``
        (used for the case study's origin-system labels, Fig. 8).
    distance:
        The objective to minimize: ``"eq1"`` (the paper's Eq. 1,
        default) or one of the alternatives in
        :mod:`repro.core.alt_distance` (``"frequency"``, ``"jaccard"``,
        ``"entropy"``) — §IV-B notes the approach is largely
        independent of the concrete distance function.
    engine:
        ``"compiled"`` (integer-encoded hot path, default) or
        ``"python"`` (pure-Python reference); see the module docstring.
        ``"compiled"`` degrades to ``"python"`` with a ``RuntimeWarning``
        when numpy is missing; the result records the effective engine.
    """

    strategy: str = "dfg"
    beam_width: int | str | None = None
    exclusive_merging: bool = True
    instance_policy: str = "repeat"
    abstraction_strategy: str = "complete"
    solver: str = "auto"
    selection: str = "decomposed"
    selection_workers: int = 1
    candidate_timeout: float | None = None
    solver_time_limit: float | None = None
    raise_on_infeasible: bool = False
    label_attribute: str | None = None
    distance: str = "eq1"
    engine: str = "compiled"

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ConstraintError(
                f"unknown engine {self.engine!r}; use one of {ENGINES}"
            )
        if self.strategy not in STEP1_STRATEGIES:
            raise ConstraintError(
                f"unknown strategy {self.strategy!r}; use one of {STEP1_STRATEGIES}"
            )
        if self.instance_policy not in POLICIES:
            raise ConstraintError(
                f"unknown instance policy {self.instance_policy!r}; use one of {POLICIES}"
            )
        if self.abstraction_strategy not in STRATEGIES:
            raise ConstraintError(
                f"unknown abstraction strategy {self.abstraction_strategy!r}; "
                f"use one of {STRATEGIES}"
            )
        if self.solver not in SOLVER_CHOICES:
            raise ConstraintError(
                f"unknown solver {self.solver!r}; use one of {SOLVER_CHOICES}"
            )
        if self.selection not in SELECTION_MODES:
            raise ConstraintError(
                f"unknown selection mode {self.selection!r}; "
                f"use one of {SELECTION_MODES}"
            )
        if self.selection_workers < 1:
            raise ConstraintError(
                f"selection_workers must be >= 1, got {self.selection_workers}"
            )
        if isinstance(self.beam_width, str) and self.beam_width != "auto":
            raise ConstraintError(
                f"beam_width must be an int, None, or 'auto', got {self.beam_width!r}"
            )
        from repro.core.alt_distance import ALTERNATIVE_DISTANCES

        known_distances = ("eq1", *ALTERNATIVE_DISTANCES)
        if self.distance not in known_distances:
            raise ConstraintError(
                f"unknown distance {self.distance!r}; use one of {known_distances}"
            )

    # -- named configurations of the paper's evaluation --------------------

    @classmethod
    def exhaustive(cls, **overrides) -> "GeccoConfig":
        """The paper's Exh configuration."""
        return cls(strategy="exhaustive", **overrides)

    @classmethod
    def dfg_unlimited(cls, **overrides) -> "GeccoConfig":
        """The paper's DFG∞ configuration (no beam pruning)."""
        return cls(strategy="dfg", beam_width=None, **overrides)

    @classmethod
    def dfg_adaptive(cls, **overrides) -> "GeccoConfig":
        """The paper's DFGk configuration (``k = 5 * |C_L|``)."""
        return cls(strategy="dfg", beam_width="auto", **overrides)


def resolve_engine(engine: str, warn: bool = True) -> str:
    """The engine that will actually run for a requested ``engine``.

    Warns (``RuntimeWarning``) when the compiled engine is requested but
    numpy is unavailable, instead of degrading silently; ``warn=False``
    suppresses the warning for purely informational probes (e.g. the
    scheduler computing a job's cache prefix).
    """
    if engine == "compiled" and not encoding.HAVE_NUMPY:
        if warn:
            warnings.warn(
                "engine='compiled' requested but numpy is unavailable; "
                "falling back to the pure-Python reference engine",
                RuntimeWarning,
                stacklevel=2,
            )
        return "python"
    return engine


@dataclass
class PipelineArtifacts:
    """Per-log artifacts shared by every problem on the same log.

    Building these is the constraint-independent part of a pipeline run:
    the compiled encoding, the instance index, and the DFG depend only
    on ``(log, instance_policy, engine)``.  :meth:`Gecco.abstract`
    accepts a prebuilt instance so that batch callers (the
    :mod:`repro.service` runtime, the experiment runner) pay the cost
    once per log instead of once per job.
    """

    engine: str
    instance_policy: str
    log: EventLog
    compiled: object | None
    instance_index: InstanceIndex
    dfg: dict


def prepare_artifacts(log: EventLog, config: "GeccoConfig") -> PipelineArtifacts:
    """Build the shareable per-log artifacts for ``config``."""
    engine = resolve_engine(config.engine)
    if engine == "compiled":
        compiled = encoding.CompiledLog(log)
        instance_index: InstanceIndex = encoding.CompiledInstanceIndex(
            log, compiled, policy=config.instance_policy
        )
    else:
        compiled = None
        instance_index = InstanceIndex(log, policy=config.instance_policy)
    return PipelineArtifacts(
        engine=engine,
        instance_policy=config.instance_policy,
        log=log,
        compiled=compiled,
        instance_index=instance_index,
        dfg=compute_dfg(log),
    )


@dataclass
class StepTimings:
    """Wall-clock seconds per pipeline step."""

    candidates: float = 0.0
    exclusive: float = 0.0
    selection: float = 0.0
    abstraction: float = 0.0

    @property
    def total(self) -> float:
        return self.candidates + self.exclusive + self.selection + self.abstraction


@dataclass
class AbstractionResult:
    """Everything GECCO produced for one abstraction problem."""

    abstracted_log: EventLog
    grouping: Grouping | None
    distance: float | None
    feasible: bool
    num_candidates: int
    timings: StepTimings = field(default_factory=StepTimings)
    candidate_stats: object | None = None
    infeasibility: InfeasibilityReport | None = None
    original_log: EventLog | None = None
    #: The engine that actually ran (``"compiled"`` or ``"python"``);
    #: differs from the requested one after a numpy fallback.
    engine: str | None = None
    #: Step-2 solver accounting (:class:`repro.selection2.stats.SelectionStats`):
    #: mode, backends, components, presolve reductions, nodes, cache hits.
    selection_stats: object | None = None

    @property
    def size_reduction(self) -> float | None:
        """``1 - |G| / |C_L|``, the paper's size-reduction measure."""
        if self.grouping is None:
            return None
        return 1.0 - self.grouping.size_reduction


class Gecco:
    """The GECCO approach (Fig. 4): candidates → selection → abstraction.

    The paper's three-step pipeline as one reusable object: Step 1
    computes constraint-satisfying candidate groups of event classes
    (``strategy="dfg"`` beam search or ``"exhaustive"``), Step 2 selects
    the distance-minimal exact cover by MIP, Step 3 rewrites the log at
    the higher abstraction level.

    Parameters
    ----------
    constraints:
        The user's :class:`~repro.constraints.sets.ConstraintSet` ``R``
        (a plain iterable of constraints is wrapped automatically).
    config:
        Optional :class:`GeccoConfig`; defaults cover the paper's DFG
        configuration on the compiled engine.

    Example
    -------
    >>> from repro import Gecco, GeccoConfig
    >>> from repro.constraints import ConstraintSet, MaxGroupSize
    >>> from repro.datasets import running_example_log
    >>> result = Gecco(ConstraintSet([MaxGroupSize(3)])).abstract(
    ...     running_example_log())
    >>> result.feasible
    True
    """

    def __init__(self, constraints: ConstraintSet, config: GeccoConfig | None = None):
        if not isinstance(constraints, ConstraintSet):
            constraints = ConstraintSet(constraints)
        self.constraints = constraints
        self.config = config or GeccoConfig()

    # -- pipeline -----------------------------------------------------------

    def abstract(
        self,
        log: EventLog,
        artifacts: PipelineArtifacts | None = None,
        selection_cache=None,
        deadline=None,
    ) -> AbstractionResult:
        """Run the full pipeline on ``log``.

        ``artifacts`` may carry prebuilt per-log artifacts (from
        :func:`prepare_artifacts`); they must match the configuration's
        instance policy and effective engine.  ``selection_cache`` is an
        optional :class:`~repro.service.cache.ArtifactCache` whose
        selection tier memoizes solved Step-2 components across jobs
        (the service runtime passes its per-worker cache here).

        ``deadline`` is an optional
        :class:`~repro.service.resilience.Deadline`: the pipeline
        checks it at each step boundary and raises
        :class:`~repro.service.resilience.DeadlineExceeded` once the
        budget runs out.  The check points never alter what a run that
        *does* finish computes — in particular the Step-1 candidate
        timeout is **not** derived from the deadline (a capped timeout
        would change which candidates are found, breaking byte-identity
        with the unbudgeted run), and Step-2 solver time limits are
        only capped where the decomposed path can fail typed instead of
        returning a different result.
        """
        config = self.config
        timings = StepTimings()
        if deadline is not None:
            deadline.check("pipeline start")
        if artifacts is None:
            artifacts = prepare_artifacts(log, config)
        else:
            expected = resolve_engine(config.engine)
            if (
                artifacts.engine != expected
                or artifacts.instance_policy != config.instance_policy
            ):
                raise ConstraintError(
                    f"artifacts built for engine={artifacts.engine!r}/"
                    f"policy={artifacts.instance_policy!r} do not match config "
                    f"engine={expected!r}/policy={config.instance_policy!r}"
                )
            if artifacts.log is not log and (
                len(artifacts.log) != len(log)
                or artifacts.log.classes != log.classes
                or artifacts.log.event_count != log.event_count
            ):
                raise ConstraintError(
                    "artifacts were built from a different log (trace count, "
                    "class universe, or event count differs)"
                )
        compiled = artifacts.compiled
        instance_index = artifacts.instance_index
        checker = GroupChecker(log, self.constraints, instance_index)
        if config.distance == "eq1":
            if compiled is not None:
                distance = encoding.CompiledDistanceFunction(log, instance_index)
            else:
                distance = DistanceFunction(log, instance_index)
        else:
            from repro.core.alt_distance import ALTERNATIVE_DISTANCES

            distance = ALTERNATIVE_DISTANCES[config.distance](log, instance_index)
        dfg = artifacts.dfg

        # Step 1: candidate computation.
        started = time.perf_counter()
        candidate_result = self._compute_candidates(
            log, checker, distance, dfg, compiled
        )
        timings.candidates = time.perf_counter() - started

        candidates = set(candidate_result.groups)
        if deadline is not None:
            deadline.check("exclusive merging (step 1 done)")
        if config.exclusive_merging:
            started = time.perf_counter()
            candidates, _exclusive_stats = merge_exclusive_candidates(
                log, candidates, checker, dfg, compiled=compiled
            )
            timings.exclusive = time.perf_counter() - started

        # Step 2: optimal grouping.
        if deadline is not None:
            deadline.check("selection (step 2)")
        started = time.perf_counter()
        if config.selection == "decomposed":
            from repro.selection2 import select_decomposed

            selection = select_decomposed(
                log,
                candidates,
                distance,
                min_groups=self.constraints.min_groups,
                max_groups=self.constraints.max_groups,
                backend=config.solver,
                time_limit=config.solver_time_limit,
                workers=config.selection_workers,
                cache=selection_cache,
                deadline=deadline,
            )
        else:
            selection = select_optimal_grouping(
                log,
                candidates,
                distance,
                min_groups=self.constraints.min_groups,
                max_groups=self.constraints.max_groups,
                backend=config.solver,
                time_limit=config.solver_time_limit,
            )
        timings.selection = time.perf_counter() - started
        selection_stats = self._selection_stats(selection, len(candidates))

        if not selection.feasible:
            report = self.constraints.diagnose(
                log, checker.class_attributes, instance_index.events, candidates
            )
            if config.raise_on_infeasible:
                raise InfeasibleProblemError(
                    "no grouping satisfies the constraints:\n" + report.summary(),
                    report=report,
                )
            # Paper §V-C: return the initial log with diagnostics.
            return AbstractionResult(
                abstracted_log=log,
                grouping=None,
                distance=None,
                feasible=False,
                num_candidates=len(candidates),
                timings=timings,
                candidate_stats=candidate_result.stats,
                infeasibility=report,
                original_log=log,
                engine=artifacts.engine,
                selection_stats=selection_stats,
            )

        grouping = selection.grouping
        if config.label_attribute is not None:
            grouping = self._relabel_by_attribute(grouping, checker)

        # Step 3: abstraction.
        if deadline is not None:
            deadline.check("abstraction (step 3)")
        started = time.perf_counter()
        abstracted = abstract_log(
            log,
            grouping,
            instance_index,
            strategy=config.abstraction_strategy,
        )
        timings.abstraction = time.perf_counter() - started

        return AbstractionResult(
            abstracted_log=abstracted,
            grouping=grouping,
            distance=selection.objective,
            feasible=True,
            num_candidates=len(candidates),
            timings=timings,
            candidate_stats=candidate_result.stats,
            original_log=log,
            engine=artifacts.engine,
            selection_stats=selection_stats,
        )

    # -- helpers ------------------------------------------------------------

    def _selection_stats(self, selection, num_candidates: int):
        """The Step-2 stats record (built here for monolithic solves)."""
        stats = getattr(selection, "stats", None)
        if stats is not None:
            return stats
        from repro.selection2.stats import SelectionStats

        return SelectionStats(
            mode="monolithic",
            backend=selection.backend or self.config.solver,
            backends_used=[selection.backend] if selection.backend else [],
            num_components=1,
            num_candidates=num_candidates,
            solves=1,
            nodes=selection.nodes,
            lp_bound_cuts=selection.lp_cuts,
            seconds=selection.seconds,
        )

    def _compute_candidates(
        self, log, checker, distance, dfg, compiled=None
    ) -> CandidateResult:
        config = self.config
        if config.strategy == "exhaustive":
            return exhaustive_candidates(
                log,
                self.constraints,
                checker=checker,
                timeout=config.candidate_timeout,
                compiled=compiled,
            )
        beam_width = config.beam_width
        if beam_width == "auto":
            beam_width = default_beam_width(log)
        return dfg_candidates(
            log,
            self.constraints,
            beam_width=beam_width,
            checker=checker,
            distance=distance,
            dfg=dfg,
            timeout=config.candidate_timeout,
            compiled=compiled,
        )

    def _relabel_by_attribute(self, grouping: Grouping, checker: GroupChecker) -> Grouping:
        """Prefix multi-class group labels with a shared attribute value."""
        key = self.config.label_attribute
        labels: dict[frozenset[str], str] = {}
        counters: dict[str, int] = {}
        for group in sorted(grouping.groups, key=lambda g: sorted(g)[0]):
            if len(group) == 1:
                continue
            values: set = set()
            for cls in group:
                values.update(checker.class_attributes.get(cls, {}).get(key, frozenset()))
            if len(values) == 1:
                prefix = str(next(iter(values)))
                counters[prefix] = counters.get(prefix, 0) + 1
                labels[group] = f"{prefix}_Activity_{counters[prefix]}"
        return grouping.relabel(labels) if labels else grouping
