"""The GECCO distance measure (paper §IV-B, Eq. 1 and Eq. 2).

For a group ``g`` with instances ``inst(L, g)`` the distance is::

    dist(g, L) = ( Σ_ξ [ interrupts(ξ)/|ξ| + missing(ξ, g)/|g| ] ) / N  +  1/|g|

with ``N = |inst(L, g)|``.  The three ingredients:

* ``interrupts(ξ)`` — events from *other* instances interspersed
  between the first and last event of ``ξ`` (cohesion);
* ``missing(ξ, g)`` — event classes of ``g`` absent from ``ξ``
  (correlation);
* ``1/|g|`` — a constant penalty favoring larger groups over unary ones.

The placement of the ``1/|g|`` term (outside the instance average) was
validated against the paper's Fig. 7, whose optimal grouping of the
running example is reported with ``dist = 3.08``: our implementation
reproduces 3.083... exactly (see ``tests/test_distance.py``).

The distance of a grouping is the sum of its groups' distances (Eq. 2).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.instances import InstanceIndex
from repro.eventlog.events import EventLog
from repro.exceptions import GroupingError


def interrupts(positions: list[int]) -> int:
    """Number of foreign events inside the span of an instance.

    ``positions`` are the instance's event indices within its trace;
    every index strictly between the first and last that is not part of
    the instance belongs to some other instance and counts as an
    interruption.
    """
    if len(positions) < 2:
        return 0
    span = positions[-1] - positions[0] + 1
    return span - len(positions)


def missing(positions_classes: Iterable[str], group: frozenset[str]) -> int:
    """Number of group classes absent from an instance."""
    present = set(positions_classes)
    return len(group - present)


class DistanceFunction:
    """Cached evaluation of Eq. 1 / Eq. 2 over one log.

    The function shares an :class:`InstanceIndex` with constraint
    checking; per-group distances are additionally memoized because the
    beam search of Algorithm 2 sorts candidate paths by distance and
    revisits groups frequently.
    """

    def __init__(self, log: EventLog, instance_index: InstanceIndex | None = None):
        self.log = log
        self.instances = instance_index or InstanceIndex(log)
        if self.instances.log is not log:
            raise GroupingError("instance index was built for a different log")
        self._cache: dict[frozenset[str], float] = {}

    def group_distance(self, group: Iterable[str]) -> float:
        """``dist(g, L)`` per Eq. 1.

        Groups without instances (never co-occurring classes that slip
        past ``occurs``, e.g. merged exclusive alternatives before
        their instances are computed) have no defined cohesion term;
        following the vacuous-satisfaction convention their distance is
        the unary penalty ``1/|g|`` alone.
        """
        group = frozenset(group)
        if not group:
            raise GroupingError("cannot compute distance of an empty group")
        if group in self._cache:
            return self._cache[group]
        instances = self.instances.positions(group)
        size = len(group)
        if not instances:
            value = 1.0 / size
        else:
            total = 0.0
            for trace_index, positions in instances:
                trace = self.log[trace_index]
                instance_classes = [trace[p].event_class for p in positions]
                total += interrupts(positions) / len(positions)
                total += missing(instance_classes, group) / size
            value = total / len(instances) + 1.0 / size
        self._cache[group] = value
        return value

    def grouping_distance(self, grouping: Iterable[Iterable[str]]) -> float:
        """``dist(G, L)`` per Eq. 2: the sum over the grouping's groups."""
        return sum(self.group_distance(group) for group in grouping)

    def cache_size(self) -> int:
        """Number of memoized group distances (introspection/tests)."""
        return len(self._cache)
