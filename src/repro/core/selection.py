"""Step 2: selecting an optimal grouping from the candidates (paper §V-C).

Given the candidate groups of Step 1, this module builds the bipartite
candidate/class structure (Fig. 7) and solves the weighted
set-partitioning MIP

    minimize    Σ dist(g_i) · selected_i
    subject to  every event class covered by exactly one selected group
                (Eqs. 3–4), and optional bounds on the number of
                selected groups (Eq. 5),

with one of two backends:

* ``"scipy"`` — the paper-literal binary program (including the
  auxiliary ``covered`` variables of Eqs. 3–4) handed to HiGHS via
  :mod:`repro.mip.scipy_backend`; this is the Gurobi stand-in;
* ``"bnb"`` — the specialized branch-and-bound set-partitioning solver
  of :mod:`repro.mip.branch_and_bound`.

Both backends are exact; tests cross-check their objectives.  When the
problem is infeasible the paper's behavior is reproduced upstream:
GECCO returns the original log plus an infeasibility report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.distance import DistanceFunction
from repro.core.grouping import Grouping
from repro.eventlog.events import EventLog
from repro.exceptions import SolverError
from repro.mip.branch_and_bound import SetPartitionSolver, lexmin_optimal_selection
from repro.mip.model import EQ, GE, LE, BinaryProgram
from repro.mip.result import SolverStatus
from repro.mip import scipy_backend

#: Supported Step-2 backends.
BACKENDS = ("scipy", "bnb")

#: Accepted ``GeccoConfig.solver`` values: the exact backends plus
#: ``"auto"``, which lets the portfolio of
#: :mod:`repro.selection2.portfolio` pick per program (or per component
#: in decomposed mode).
SOLVER_CHOICES = BACKENDS + ("auto",)


@dataclass
class SelectionResult:
    """Outcome of Step 2."""

    grouping: Grouping | None
    objective: float | None
    status: SolverStatus
    seconds: float = 0.0
    num_candidates: int = 0
    solver_message: str = ""
    #: The backend that ran (``"scipy"`` or ``"bnb"``; the requested
    #: name for decomposed solves, which may mix backends per component).
    backend: str = ""
    #: Branch-and-bound nodes explored (0 when HiGHS solved).
    nodes: int = 0
    #: Prunes decided only by the LP-relaxation dual bound (bnb only).
    lp_cuts: int = 0

    @property
    def feasible(self) -> bool:
        return self.status is SolverStatus.OPTIMAL and self.grouping is not None


def build_program(
    candidates: list[frozenset[str]],
    costs: list[float],
    universe: frozenset[str],
    min_groups: int | None = None,
    max_groups: int | None = None,
) -> BinaryProgram:
    """Build the paper-literal binary program (Eqs. 3–5).

    Variables ``g<i>`` select candidate groups; variables ``c<j>`` mark
    classes as covered.  Eq. 4 ties the two (each class is covered by
    exactly the number of selected groups containing it — forced to one
    by binarity), Eq. 3 requires all classes covered.
    """
    program = BinaryProgram()
    class_order = sorted(universe)
    for position, cost in enumerate(costs):
        program.add_variable(f"g{position}", cost)
    for j, _cls in enumerate(class_order):
        program.add_variable(f"c{j}", 0.0)

    # Eq. 3: Σ covered_cj = |C_L|
    program.add_constraint(
        {f"c{j}": 1.0 for j in range(len(class_order))},
        EQ,
        float(len(class_order)),
        name="all-covered",
    )
    # Eq. 4: Σ_{(g_i, c_j) ∈ E} selected_gi = covered_cj  ∀ c_j
    for j, cls in enumerate(class_order):
        coefficients = {
            f"g{i}": 1.0
            for i, candidate in enumerate(candidates)
            if cls in candidate
        }
        coefficients[f"c{j}"] = -1.0
        program.add_constraint(coefficients, EQ, 0.0, name=f"cover[{cls}]")
    # Eq. 5: bounds on the number of selected groups.
    selector = {f"g{i}": 1.0 for i in range(len(candidates))}
    if max_groups is not None:
        program.add_constraint(dict(selector), LE, float(max_groups), name="max-groups")
    if min_groups is not None:
        program.add_constraint(dict(selector), GE, float(min_groups), name="min-groups")
    return program


def select_optimal_grouping(
    log: EventLog,
    candidates: set[frozenset[str]],
    distance: DistanceFunction,
    min_groups: int | None = None,
    max_groups: int | None = None,
    backend: str = "scipy",
    time_limit: float | None = None,
) -> SelectionResult:
    """Pick the distance-minimal exact cover among ``candidates``.

    ``backend="auto"`` defers the scipy-vs-bnb choice to the portfolio
    heuristic of :mod:`repro.selection2.portfolio` based on the
    program's size.
    """
    if backend not in SOLVER_CHOICES:
        raise SolverError(
            f"unknown Step-2 backend {backend!r}; use one of {SOLVER_CHOICES}"
        )
    started = time.perf_counter()
    universe = log.classes
    ordered = sorted(candidates, key=lambda group: sorted(group))
    costs = [distance.group_distance(group) for group in ordered]
    if backend == "auto":
        from repro.selection2.portfolio import choose_backend

        backend = choose_backend(len(universe), len(ordered))

    if backend == "bnb":
        solver = SetPartitionSolver(
            universe=sorted(universe),
            candidates=ordered,
            costs=costs,
            min_count=min_groups,
            max_count=max_groups,
        )
        outcome = solver.solve()
    else:
        program = build_program(ordered, costs, universe, min_groups, max_groups)
        outcome = scipy_backend.solve(program, time_limit=time_limit)

    elapsed = time.perf_counter() - started
    if outcome.status is not SolverStatus.OPTIMAL:
        return SelectionResult(
            grouping=None,
            objective=None,
            status=outcome.status,
            seconds=elapsed,
            num_candidates=len(ordered),
            solver_message=outcome.message,
            backend=backend,
            nodes=outcome.nodes_explored,
            lp_cuts=outcome.lp_bound_cuts,
        )

    positions = sorted(
        int(name[1:]) for name in outcome.selected() if name.startswith("g")
    )
    # Canonical tie-break: equal-cost optima exist, and which one a
    # backend returns depends on matrix layout — replace the backend's
    # pick with the lexicographically-smallest optimal selection so
    # scipy/bnb and monolithic/decomposed all agree byte-for-byte.
    canonical = lexmin_optimal_selection(
        sorted(universe),
        ordered,
        costs,
        target=sum(costs[position] for position in positions),
        min_count=min_groups,
        max_count=max_groups,
    )
    if canonical is not None:
        positions = canonical
    selected = [ordered[position] for position in positions]
    grouping = Grouping(selected, universe)
    objective = sum(distance.group_distance(group) for group in selected)
    return SelectionResult(
        grouping=grouping,
        objective=objective,
        status=SolverStatus.OPTIMAL,
        seconds=elapsed,
        num_candidates=len(ordered),
        solver_message=outcome.message,
        backend=backend,
        nodes=outcome.nodes_explored,
        lp_cuts=outcome.lp_bound_cuts,
    )
