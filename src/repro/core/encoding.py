"""Integer-encoded hot-path engine: the ``compiled`` pipeline backend.

GECCO's Step 1 spends nearly all of its time answering three questions
for thousands of candidate groups: *where are the group's instances*
(:func:`repro.core.instances.instances_in_log`), *what is the group's
distance* (Eq. 1), and *does the group co-occur in some trace*
(``occurs``).  The pure-Python reference implementations answer them by
walking :class:`~repro.eventlog.events.Event` objects — one attribute
lookup per event per group.  This module removes the object layer from
the hot path once per log:

* :class:`CompiledLog` interns the event classes of a log to dense
  integer IDs and stores every trace as a contiguous ``numpy`` array of
  class IDs (one concatenated CSR-style buffer for the whole log).
  Groups become **integer bitmasks over class IDs** and trace sets
  become **integer bitmasks over trace indices** (a bitset posting
  list per class), so ``occurs`` is a single ``&``.
* :meth:`CompiledLog.stats_batch` detects the instances of *many*
  groups in one vectorized sweep: a boolean class-membership matrix is
  indexed with the log's class-ID buffer, a single ``np.nonzero``
  yields every (group, position) hit, and the three splitting policies
  (``repeat`` / ``none`` / ``gap``) become boolean boundary masks over
  the flat hit list.  The result per group is a set of per-instance
  summaries (first/last position, event count, distinct classes); the
  reference ``(trace index, positions)`` form is materialized lazily,
  only where the pipeline actually consumes positions.
* :class:`CompiledInstanceIndex` and :class:`CompiledDistanceFunction`
  are drop-in replacements for :class:`~repro.core.instances.InstanceIndex`
  and :class:`~repro.core.distance.DistanceFunction` built on top of
  the compiled log.  They return **byte-identical** instances and
  **bitwise-identical** Eq. 1 distances: the per-instance terms are
  accumulated left-to-right over the same correctly-rounded divisions
  as the reference loop — on pre-extracted integers instead of
  ``Event`` objects — which is what lets the beam search of Algorithm 2
  produce the same candidate sets on either engine.
* :class:`CompiledDfgOps` mirrors the group-level DFG neighborhood API
  (``pre`` / ``post`` / ``exclusive`` / ``equal_pre_post``) on class
  bitmasks so Algorithm 3's exclusive-candidate merging shares the
  same encoding.

``numpy`` is optional at import time: :data:`HAVE_NUMPY` reports its
availability, and the pipeline facade falls back to the pure-Python
engine when it is missing.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.core.distance import DistanceFunction
from repro.core.instances import POLICIES, InstanceIndex
from repro.eventlog.dfg import DirectlyFollowsGraph
from repro.eventlog.events import EventLog
from repro.exceptions import EventLogError, GroupingError

try:  # pragma: no cover - exercised implicitly by the engine selection
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

#: Number of groups extracted per vectorized sweep; bounds the boolean
#: membership matrix to ``_BATCH_GROUPS * total_events`` bytes.
_BATCH_GROUPS = 256

#: Upper bound on memoized co-occurrence / mask entries per compiled
#: log; an unbounded DFG∞ search probes huge numbers of throwaway
#: frontier groups, so the caches reset rather than growing without
#: bound (mirrors ``_OCCURS_CACHE_LIMIT`` on ``EventLog``).
_COOCCUR_CACHE_LIMIT = 1 << 17


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise EventLogError(
            "the compiled engine requires numpy; install it or select "
            "GeccoConfig(engine='python')"
        )


class GroupInstances:
    """Summary of one group's instances in a log.

    Five parallel lists describe the instances in reference order
    (ascending trace, then position): the owning trace index, the first
    and last position within the trace, the event count, and the number
    of distinct classes.  ``positions`` holds the group's flat event
    positions; consecutive ``counts`` slices of it are the instances.
    The reference ``(trace index, positions list)`` representation is
    materialized lazily by :meth:`pairs` and cached.
    """

    __slots__ = (
        "trace_ids",
        "firsts",
        "lasts",
        "counts",
        "distincts",
        "cohesion",
        "positions",
        "hit_ids",
        "_pairs",
        "_segments",
    )

    def __init__(
        self,
        trace_ids,
        firsts,
        lasts,
        counts,
        distincts,
        cohesion,
        positions,
        hit_ids=None,
    ):
        self.trace_ids: list[int] = trace_ids
        self.firsts: list[int] = firsts
        self.lasts: list[int] = lasts
        self.counts: list[int] = counts
        self.distincts: list[int] = distincts
        #: Eq. 1 cohesion term ``interrupts(ξ)/|ξ|`` per instance,
        #: precomputed vectorized during detection.
        self.cohesion: list[float] = cohesion
        self.positions: list[int] = positions
        #: Global event indexes (into ``CompiledLog.all_ids``) of the
        #: group's hits, parallel to ``positions``; the attribute-column
        #: kernels gather column values through them.  ``None`` on the
        #: pure-Python path (no compiled log).
        self.hit_ids = hit_ids
        self._pairs: list[tuple[int, list[int]]] | None = None
        self._segments = None

    def __len__(self) -> int:
        return len(self.counts)

    def segments(self):
        """Instance segmentation over the flat hit list (cached).

        Returns ``(starts, counts)`` as int64 arrays: hits
        ``starts[i] : starts[i] + counts[i]`` of :attr:`hit_ids` are
        instance ``i``.  Requires numpy (compiled path only).
        """
        if self._segments is None:
            counts = np.asarray(self.counts, dtype=np.int64)
            starts = np.zeros(counts.size, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            self._segments = (starts, counts)
        return self._segments

    def pairs(self) -> list[tuple[int, list[int]]]:
        """The instances as ``(trace index, positions)``, reference format."""
        if self._pairs is None:
            flat = self.positions
            result: list[tuple[int, list[int]]] = []
            start = 0
            for trace_index, count in zip(self.trace_ids, self.counts):
                end = start + count
                result.append((trace_index, flat[start:end]))
                start = end
            self._pairs = result
        return self._pairs

    def distinct_list(self) -> list[int]:
        """Distinct-class counts per instance, parallel to :meth:`pairs`."""
        return self.distincts


_EMPTY_INSTANCES = GroupInstances([], [], [], [], [], [], [])


class CompiledLog:
    """An event log compiled to integer arrays and bitmask indexes.

    The compilation is a one-time pass over the log; afterwards no hot
    path touches :class:`~repro.eventlog.events.Event` objects.  Event
    classes are interned in sorted order so IDs — and therefore group
    bitmasks — are deterministic for a given log.
    """

    def __init__(self, log: EventLog):
        _require_numpy()
        self.log = log
        self.classes: list[str] = sorted(log.classes)
        self.class_to_id: dict[str, int] = {
            cls: index for index, cls in enumerate(self.classes)
        }
        self.num_classes = len(self.classes)
        self.num_traces = len(log)

        lengths = np.zeros(self.num_traces, dtype=np.int64)
        chunks: list = []
        repeat_flags: list[bool] = []
        class_trace_bits = [0] * self.num_classes
        to_id = self.class_to_id
        for trace_index, trace in enumerate(log):
            ids = [to_id[event.event_class] for event in trace]
            lengths[trace_index] = len(ids)
            chunks.append(np.asarray(ids, dtype=np.int64))
            distinct = set(ids)
            if len(distinct) == len(ids):
                repeat_flags.extend([False] * len(ids))
            else:
                occurrences = Counter(ids)
                repeat_flags.extend(occurrences[cid] > 1 for cid in ids)
            trace_bit = 1 << trace_index
            for class_id in distinct:
                class_trace_bits[class_id] |= trace_bit

        #: ``offsets[t]:offsets[t+1]`` slices trace ``t`` out of ``all_ids``.
        self.offsets = np.zeros(self.num_traces + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.offsets[1:])
        self.all_ids = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        total_events = int(self.all_ids.size)
        # Per-event lookup tables shared by every extraction sweep.
        self._trace_of_event = np.repeat(
            np.arange(self.num_traces, dtype=np.int64), lengths
        )
        self._local_of_event = np.arange(total_events, dtype=np.int64) - np.repeat(
            self.offsets[:-1], lengths
        )
        #: True where the event's class occurs more than once in its trace
        #: (only such events can trigger instance splits / duplicates).
        self._event_repeats = np.asarray(repeat_flags, dtype=bool)
        self._row_bounds = np.arange(_BATCH_GROUPS + 1, dtype=np.int64)
        #: Per-class bitset posting list: bit ``t`` set iff trace ``t``
        #: contains the class.
        self.class_trace_bits: list[int] = class_trace_bits
        self._all_traces_mask = (1 << self.num_traces) - 1
        # Group-mask -> trace-bitset cache for the incremental ``occurs``
        # path; seeded with the singleton posting lists.
        self._cooccur: dict[int, int] = {
            1 << class_id: bits for class_id, bits in enumerate(class_trace_bits)
        }
        self._mask_cache: dict[frozenset[str], int] = {}
        self._columns = None

    def columns(self):
        """The log's per-event attribute columns (lazily built, cached).

        See :class:`repro.core.columns.AttributeColumns`: one array per
        attribute key, aligned to the CSR event buffer, powering the
        vectorized instance-constraint kernels and the compiled Step-3
        abstraction.
        """
        if self._columns is None:
            from repro.core.columns import AttributeColumns

            self._columns = AttributeColumns(self)
        return self._columns

    # -- group <-> bitmask conversions -----------------------------------

    def class_bit(self, cls: str) -> int:
        """The singleton bitmask of ``cls`` (KeyError for foreign classes)."""
        return 1 << self.class_to_id[cls]

    def mask_of(self, group: Iterable[str]) -> int:
        """Bitmask of ``group``'s classes (foreign classes are ignored)."""
        group = frozenset(group)
        cached = self._mask_cache.get(group)
        if cached is None:
            cached = 0
            for cls in group:
                class_id = self.class_to_id.get(cls)
                if class_id is not None:
                    cached |= 1 << class_id
            if len(self._mask_cache) >= _COOCCUR_CACHE_LIMIT:
                self._mask_cache.clear()
            self._mask_cache[group] = cached
        return cached

    def group_of(self, mask: int) -> frozenset[str]:
        """The class set encoded by ``mask``."""
        members = []
        while mask:
            low = mask & -mask
            members.append(self.classes[low.bit_length() - 1])
            mask ^= low
        return frozenset(members)

    @property
    def nbytes(self) -> int:
        """Approximate footprint of the compiled arrays, in bytes.

        Surfaced as ``resident_artifact_bytes`` in the service-layer
        artifact cache's snapshots (:mod:`repro.service.cache`) so
        operators can see what the artifact tier holds; eviction itself
        is entry-count bounded.
        """
        arrays = (
            self.offsets,
            self.all_ids,
            self._trace_of_event,
            self._local_of_event,
            self._event_repeats,
            self._row_bounds,
        )
        total = sum(int(array.nbytes) for array in arrays)
        total += sum(
            (bits.bit_length() + 7) // 8 for bits in self.class_trace_bits
        )
        return total

    # -- co-occurrence (the ``occurs`` predicate) -------------------------

    def _cooccur_insert(self, mask: int, bits: int) -> None:
        """Memoize a trace bitset, resetting the cache at the size bound.

        The singleton posting lists are re-seeded after a reset so the
        incremental parent-extension path stays warm.
        """
        cache = self._cooccur
        if len(cache) >= _COOCCUR_CACHE_LIMIT:
            cache.clear()
            for class_id, posting in enumerate(self.class_trace_bits):
                cache[1 << class_id] = posting
        cache[mask] = bits

    def cooccurring_traces(self, mask: int) -> int:
        """Bitset of traces containing *all* classes of ``mask`` (cached).

        A cached strict-subset result is extended by one posting-list
        intersection when available (the candidate searches always grow
        groups by one class, so the parent is virtually always cached);
        otherwise the member posting lists are intersected directly.
        """
        if mask == 0:
            return 0
        cached = self._cooccur.get(mask)
        if cached is not None:
            return cached
        remaining = mask
        while remaining:
            low = remaining & -remaining
            parent = self._cooccur.get(mask ^ low)
            if parent is not None:
                bits = parent & self.class_trace_bits[low.bit_length() - 1]
                self._cooccur_insert(mask, bits)
                return bits
            remaining ^= low
        bits = self._all_traces_mask
        remaining = mask
        while remaining and bits:
            low = remaining & -remaining
            bits &= self.class_trace_bits[low.bit_length() - 1]
            remaining ^= low
        self._cooccur_insert(mask, bits)
        return bits

    def extend_cooccurring(self, parent_mask: int, cls_bit: int) -> int:
        """Trace bitset of ``parent_mask | cls_bit`` via one intersection."""
        child_mask = parent_mask | cls_bit
        cached = self._cooccur.get(child_mask)
        if cached is not None:
            return cached
        bits = self.cooccurring_traces(parent_mask) & self.class_trace_bits[
            cls_bit.bit_length() - 1
        ]
        self._cooccur_insert(child_mask, bits)
        return bits

    def occurs_mask(self, mask: int) -> bool:
        """``occurs(g, L)`` on a group bitmask."""
        return mask != 0 and self.cooccurring_traces(mask) != 0

    def occurs(self, group: Iterable[str]) -> bool:
        """``occurs(g, L)`` on a class set (foreign classes never occur)."""
        group = frozenset(group)
        if not group:
            return False
        for cls in group:
            if cls not in self.class_to_id:
                return False
        return self.occurs_mask(self.mask_of(group))

    # -- vectorized instance detection ------------------------------------

    def instances(
        self, group: Iterable[str], policy: str = "repeat", gap_limit: int = 3
    ) -> tuple[list[tuple[int, list[int]]], list[int]]:
        """Instances of one group: ``(trace index, positions)`` + distinct counts.

        The pairs are byte-identical to
        :func:`repro.core.instances.instances_in_log`; the parallel list
        holds each instance's number of distinct classes (what Eq. 1's
        ``missing`` term needs), computed for free during detection.
        """
        stats = self.stats_batch([frozenset(group)], policy, gap_limit)[0]
        return stats.pairs(), stats.distinct_list()

    def stats_batch(
        self,
        groups: Sequence[frozenset[str]],
        policy: str = "repeat",
        gap_limit: int = 3,
    ) -> list[GroupInstances]:
        """Detect the instances of many groups in vectorized sweeps.

        One boolean membership matrix per batch of ``_BATCH_GROUPS``
        groups is indexed with the whole log's class-ID buffer; a single
        ``np.nonzero`` then yields every (group, event) hit in group-
        major, position-ascending order — exactly the iteration order of
        the reference implementation.  The splitting policies become
        boolean instance-boundary masks over the flat hit list; only
        hits whose class actually recurs within its trace (precomputed
        per event) ever need duplicate handling.
        """
        if policy not in POLICIES:
            raise EventLogError(
                f"unknown instance policy {policy!r}; use one of {POLICIES}"
            )
        results: list[GroupInstances] = [None] * len(groups)  # type: ignore[list-item]
        if not groups:
            return results
        if self.num_classes == 0 or self.all_ids.size == 0:
            return [_EMPTY_INSTANCES for _ in groups]
        for start in range(0, len(groups), _BATCH_GROUPS):
            batch = groups[start : start + _BATCH_GROUPS]
            self._extract_batch(batch, start, policy, gap_limit, results)
        return results

    def _extract_batch(self, batch, base, policy, gap_limit, results) -> None:
        if self.num_classes <= 64:
            # Unpack the group bitmasks directly into the membership
            # matrix — no per-group python loop.
            masks = np.array(
                [self.mask_of(group) for group in batch], dtype=np.uint64
            )
            membership = (
                masks[:, None] >> np.arange(self.num_classes, dtype=np.uint64)
            ) & np.uint64(1) != 0
        else:
            membership = np.zeros((len(batch), self.num_classes), dtype=bool)
            for row, group in enumerate(batch):
                ids = [
                    self.class_to_id[cls]
                    for cls in group
                    if cls in self.class_to_id
                ]
                if ids:
                    membership[row, ids] = True
        group_idx, event_idx = np.nonzero(membership[:, self.all_ids])
        total = group_idx.size
        if total == 0:
            for row in range(len(batch)):
                results[base + row] = _EMPTY_INSTANCES
            return
        trace_of = self._trace_of_event[event_idx]
        local = self._local_of_event[event_idx]

        # One segment per (group, trace) pair; instances never span
        # segments, so every policy starts from the segment boundaries.
        seg_change = np.empty(total, dtype=bool)
        seg_change[0] = True
        np.not_equal(trace_of[1:], trace_of[:-1], out=seg_change[1:])
        np.logical_or(
            seg_change[1:], group_idx[1:] != group_idx[:-1], out=seg_change[1:]
        )

        # Hits whose class recurs within its trace are the only ones that
        # can repeat inside a segment; everything else skips duplicate
        # handling entirely.
        repeat_candidates = self._event_repeats[event_idx]
        has_repeats = bool(repeat_candidates.any())

        if policy == "repeat":
            boundaries = self._repeat_boundaries(
                seg_change, repeat_candidates, has_repeats, event_idx
            )
        elif policy == "none":
            boundaries = seg_change
        else:  # policy == "gap"
            boundaries = seg_change.copy()
            gap_split = (local[1:] - local[:-1] - 1) > gap_limit
            boundaries[1:] |= gap_split & ~seg_change[1:]

        inst_starts = np.flatnonzero(boundaries)
        num_instances = inst_starts.size
        counts = np.diff(inst_starts, append=total)

        if policy == "repeat" or not has_repeats:
            # ``repeat`` instances are all-distinct by construction; for
            # the other policies a repeat-free batch is too.
            distincts = counts
        else:
            distincts = counts - self._duplicates_per_instance(
                group_idx,
                trace_of,
                repeat_candidates,
                event_idx,
                boundaries,
                inst_starts,
                num_instances,
            )

        first_arr = local[inst_starts]
        last_arr = local[inst_starts + counts - 1]
        # Cohesion term per instance: interrupts/|ξ|, with interrupts
        # defined as 0 for single-event instances (reference divides the
        # same integers, so the floats are bitwise identical).
        cohesion = (
            np.where(counts >= 2, last_arr - first_arr + 1 - counts, 0) / counts
        ).tolist()
        firsts = first_arr.tolist()
        lasts = last_arr.tolist()
        inst_group = group_idx[inst_starts]
        inst_trace = trace_of[inst_starts].tolist()
        counts_list = counts.tolist()
        distincts_list = distincts.tolist() if distincts is not counts else counts_list
        positions = local.tolist()

        bounds = self._row_bounds[: len(batch) + 1]
        hit_bounds = np.searchsorted(group_idx, bounds).tolist()
        inst_bounds = np.searchsorted(inst_group, bounds).tolist()
        for row in range(len(batch)):
            i0, i1 = inst_bounds[row], inst_bounds[row + 1]
            if i0 == i1:
                results[base + row] = _EMPTY_INSTANCES
            else:
                h0, h1 = hit_bounds[row], hit_bounds[row + 1]
                results[base + row] = GroupInstances(
                    inst_trace[i0:i1],
                    firsts[i0:i1],
                    lasts[i0:i1],
                    counts_list[i0:i1],
                    distincts_list[i0:i1],
                    cohesion[i0:i1],
                    positions[h0:h1],
                    hit_ids=event_idx[h0:h1],
                )

    def _repeat_boundaries(
        self, seg_change, repeat_candidates, has_repeats, event_idx
    ):
        """Boundary mask for the ``repeat`` policy.

        Without recurring classes every segment is one instance.  Only
        segments that contain a potentially recurring class need the
        sequential seen-set walk (a new instance starts whenever a class
        re-occurs within the current one) — and only those are walked.
        """
        if not has_repeats:
            return seg_change
        boundaries = seg_change.copy()
        seg_index = np.cumsum(seg_change) - 1
        seg_starts = np.flatnonzero(seg_change)
        seg_ends = np.append(seg_starts[1:], seg_change.size)
        dirty = np.unique(seg_index[repeat_candidates])
        class_list = self.all_ids[event_idx].tolist()
        for seg in dirty.tolist():
            seen = 0
            for hit in range(int(seg_starts[seg]), int(seg_ends[seg])):
                bit = 1 << class_list[hit]
                if seen & bit:
                    boundaries[hit] = True
                    seen = 0
                seen |= bit
        return boundaries

    def _duplicates_per_instance(
        self,
        group_idx,
        trace_of,
        repeat_candidates,
        event_idx,
        boundaries,
        inst_starts,
        num_instances,
    ):
        """Per-instance duplicate-class counts (``none`` / ``gap`` policies).

        Only hits flagged as potential repeats participate: a stable
        sort of those hits by (group, trace, class) makes consecutive
        occurrences adjacent; a hit whose previous same-class occurrence
        falls inside the same instance is a duplicate.
        """
        flagged = np.flatnonzero(repeat_candidates)
        keys = (
            group_idx[flagged] * np.int64(self.num_traces) + trace_of[flagged]
        ) * np.int64(self.num_classes) + self.all_ids[event_idx[flagged]]
        order = np.argsort(keys, kind="stable")
        ordered = keys[order]
        same = ordered[1:] == ordered[:-1]
        duplicates = flagged[order[1:][same]]
        previous = flagged[order[:-1][same]]
        inst_id = np.cumsum(boundaries) - 1
        within = previous >= inst_starts[inst_id[duplicates]]
        return np.bincount(
            inst_id[duplicates[within]], minlength=num_instances
        )

    def __repr__(self) -> str:
        return (
            f"CompiledLog({self.num_traces} traces, {self.all_ids.size} events, "
            f"{self.num_classes} classes)"
        )


class CompiledInstanceIndex(InstanceIndex):
    """Drop-in :class:`InstanceIndex` backed by a :class:`CompiledLog`.

    ``positions`` / ``events`` / ``count`` keep their reference
    semantics (and exact output format); detection runs through the
    vectorized batch path, and :meth:`prime` lets the beam search
    extract a whole frontier of groups in one sweep.
    """

    def __init__(
        self,
        log: EventLog,
        compiled: CompiledLog | None = None,
        policy: str = "repeat",
        gap_limit: int = 3,
    ):
        super().__init__(log, policy=policy, gap_limit=gap_limit)
        if compiled is not None and compiled.log is not log:
            raise GroupingError("compiled log was built for a different log")
        self.compiled = compiled or CompiledLog(log)
        self._stats_cache: dict[frozenset[str], GroupInstances] = {}

    def stats(self, group: frozenset[str]) -> GroupInstances:
        """The group's instance summary (cached)."""
        group = frozenset(group)
        cached = self._stats_cache.get(group)
        if cached is None:
            cached = self.compiled.stats_batch(
                [group], self.policy, self.gap_limit
            )[0]
            self._stats_cache[group] = cached
        return cached

    def prime(self, groups: Sequence[frozenset[str]]) -> None:
        """Batch-detect all not-yet-cached groups in one vectorized sweep."""
        missing = [group for group in groups if group not in self._stats_cache]
        if not missing:
            return
        extracted = self.compiled.stats_batch(
            missing, self.policy, self.gap_limit
        )
        for group, stats in zip(missing, extracted):
            self._stats_cache[group] = stats

    def positions(self, group: frozenset[str]) -> list[tuple[int, list[int]]]:
        return self.stats(group).pairs()

    def distinct_counts(self, group: frozenset[str]) -> list[int]:
        """Per-instance distinct-class counts, parallel to :meth:`positions`."""
        return self.stats(group).distinct_list()

    def count(self, group: frozenset[str]) -> int:
        return len(self.stats(group))

    def cache_size(self) -> int:
        return len(self._stats_cache)


def _eq1_from_stats(stats: GroupInstances, size: int) -> float:
    """Eq. 1 on an instance summary, replaying the reference arithmetic.

    Same divisions on the same integers, accumulated in the same order
    as :meth:`repro.core.distance.DistanceFunction.group_distance`, so
    the result is bitwise identical.  The cohesion terms come
    precomputed from detection; the missing terms take at most
    ``size + 1`` distinct values and are tabulated once per group.
    """
    num_instances = len(stats.counts)
    if num_instances == 0:
        return 1.0 / size
    missing_term = [(size - present) / size for present in range(size + 1)]
    total = 0.0
    for cohesion, distinct in zip(stats.cohesion, stats.distincts):
        total += cohesion
        total += missing_term[distinct]
    return total / num_instances + 1.0 / size


class CompiledDistanceFunction(DistanceFunction):
    """Eq. 1 on precomputed instance summaries (no ``Event`` access).

    The heavy part — locating every instance of every group — runs
    through the compiled log's vectorized batch detection
    (:meth:`prime`); the remaining per-instance accumulation replays the
    reference implementation's arithmetic on plain integers, keeping the
    returned floats bitwise identical so the beam ordering of
    Algorithm 2 is preserved exactly.
    """

    def __init__(self, log: EventLog, instance_index: CompiledInstanceIndex | None = None):
        if instance_index is None:
            instance_index = CompiledInstanceIndex(log)
        if not isinstance(instance_index, CompiledInstanceIndex):
            raise GroupingError(
                "CompiledDistanceFunction requires a CompiledInstanceIndex"
            )
        super().__init__(log, instance_index)

    @property
    def _singletons_are_unit(self) -> bool:
        """Whether singleton groups score exactly 1.0 without detection.

        Under the ``repeat`` policy a singleton's instances are all
        single events (the class re-occurring starts a new instance), so
        every cohesion and missing term is exactly ``0.0`` and Eq. 1
        reduces to ``0.0/N + 1/1 = 1.0`` — bitwise identical to the
        reference accumulation of zero terms.  Not true for ``none`` /
        ``gap``, where multi-event singleton instances can interrupt.
        """
        return self.instances.policy == "repeat"

    def prime(self, groups: Sequence[frozenset[str]]) -> None:
        """Batch-compute distances for ``groups`` in one detection sweep."""
        singleton_unit = self._singletons_are_unit
        missing: list[frozenset[str]] = []
        seen: set[frozenset[str]] = set()
        for group in groups:
            group = frozenset(group)
            if group in self._cache or group in seen:
                continue
            if singleton_unit and len(group) == 1:
                self._cache[group] = 1.0
                continue
            seen.add(group)
            missing.append(group)
        if not missing:
            return
        self.instances.prime(missing)
        for group in missing:
            self._cache[group] = _eq1_from_stats(
                self.instances.stats(group), len(group)
            )

    def group_distance(self, group: Iterable[str]) -> float:
        group = frozenset(group)
        if not group:
            raise GroupingError("cannot compute distance of an empty group")
        cached = self._cache.get(group)
        if cached is not None:
            return cached
        if len(group) == 1 and self._singletons_are_unit:
            value = 1.0
        else:
            value = _eq1_from_stats(self.instances.stats(group), len(group))
        self._cache[group] = value
        return value


class CompiledDfgOps:
    """Group-level DFG neighborhoods on class bitmasks (Algorithm 3).

    Exposes the same ``pre`` / ``post`` / ``exclusive`` /
    ``equal_pre_post`` API as
    :class:`~repro.eventlog.dfg.DirectlyFollowsGraph`, so the
    exclusive-merging pass can use either interchangeably.  Per-class
    predecessor/successor bitmasks are precomputed once; every group
    query is then a handful of integer operations.
    """

    def __init__(self, compiled: CompiledLog, graph: DirectlyFollowsGraph):
        self.compiled = compiled
        self.graph = graph
        succ = [0] * compiled.num_classes
        pred = [0] * compiled.num_classes
        to_id = compiled.class_to_id
        for source, target in graph.edge_counts:
            source_id = to_id.get(source)
            target_id = to_id.get(target)
            if source_id is None or target_id is None:
                continue
            succ[source_id] |= 1 << target_id
            pred[target_id] |= 1 << source_id
        self._succ = succ
        self._pred = pred
        self._neighborhood_cache: dict[int, tuple[int, int]] = {}

    def _neighborhood(self, mask: int) -> tuple[int, int]:
        """Raw (predecessors, successors) bitmask union over members."""
        cached = self._neighborhood_cache.get(mask)
        if cached is not None:
            return cached
        preds = 0
        succs = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            class_id = low.bit_length() - 1
            preds |= self._pred[class_id]
            succs |= self._succ[class_id]
            remaining ^= low
        result = (preds, succs)
        self._neighborhood_cache[mask] = result
        return result

    def pre(self, group: Iterable[str]) -> frozenset[str]:
        """Preset of a group: external predecessors of its members."""
        mask = self.compiled.mask_of(group)
        preds, _ = self._neighborhood(mask)
        return self.compiled.group_of(preds & ~mask)

    def post(self, group: Iterable[str]) -> frozenset[str]:
        """Postset of a group: external successors of its members."""
        mask = self.compiled.mask_of(group)
        _, succs = self._neighborhood(mask)
        return self.compiled.group_of(succs & ~mask)

    def exclusive(self, group_a: Iterable[str], group_b: Iterable[str]) -> bool:
        """``True`` iff no DFG edge connects the two (disjoint) groups."""
        mask_a = self.compiled.mask_of(group_a)
        mask_b = self.compiled.mask_of(group_b)
        if mask_a & mask_b:
            return False
        if self._neighborhood(mask_a)[1] & mask_b:
            return False
        if self._neighborhood(mask_b)[1] & mask_a:
            return False
        return True

    def equal_pre_post(
        self, group: Iterable[str], candidates: Iterable[frozenset[str]]
    ) -> list[frozenset[str]]:
        """Candidates sharing ``group``'s pre- and postsets (as bitmasks)."""
        mask = self.compiled.mask_of(group)
        preds, succs = self._neighborhood(mask)
        reference = (preds & ~mask, succs & ~mask)
        matches = []
        for other in candidates:
            other_mask = self.compiled.mask_of(other)
            if other_mask == mask:
                continue
            other_preds, other_succs = self._neighborhood(other_mask)
            if (other_preds & ~other_mask, other_succs & ~other_mask) == reference:
                matches.append(frozenset(other))
        return matches
