"""Groupings: exact covers of the event-class universe.

A grouping ``G`` is a set of disjoint groups of event classes whose
union is exactly ``C_L`` (Problem 1).  This module provides the
validated value object plus labeling utilities used when the abstracted
log is produced (groups become high-level activity names).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.exceptions import GroupingError


class Grouping:
    """A validated exact cover of a set of event classes.

    Parameters
    ----------
    groups:
        The groups, each a collection of event-class names.
    universe:
        The event classes that must be covered exactly once (``C_L``).
    labels:
        Optional mapping from group to activity label.  Groups without
        an explicit label are named automatically: singleton groups keep
        their class name; larger groups get ``Activity_<i>`` (or a
        shared attribute-derived prefix when assigned by the caller).
    """

    def __init__(
        self,
        groups: Iterable[Iterable[str]],
        universe: Iterable[str],
        labels: Mapping[frozenset[str], str] | None = None,
    ):
        self.groups: list[frozenset[str]] = [frozenset(group) for group in groups]
        self.universe: frozenset[str] = frozenset(universe)
        self._validate()
        self.labels: dict[frozenset[str], str] = {}
        explicit = dict(labels) if labels else {}
        counter = 1
        for group in sorted(self.groups, key=lambda g: sorted(g)[0]):
            if group in explicit:
                self.labels[group] = explicit[group]
            elif len(group) == 1:
                self.labels[group] = next(iter(group))
            else:
                self.labels[group] = f"Activity_{counter}"
                counter += 1
        self._class_to_group: dict[str, frozenset[str]] = {}
        for group in self.groups:
            for cls in group:
                self._class_to_group[cls] = group

    def _validate(self) -> None:
        seen: set[str] = set()
        for group in self.groups:
            if not group:
                raise GroupingError("grouping contains an empty group")
            overlap = seen & group
            if overlap:
                raise GroupingError(
                    f"groups are not disjoint; classes in several groups: {sorted(overlap)}"
                )
            seen.update(group)
        if seen != self.universe:
            missing = sorted(self.universe - seen)
            extra = sorted(seen - self.universe)
            details = []
            if missing:
                details.append(f"uncovered classes: {missing}")
            if extra:
                details.append(f"unknown classes: {extra}")
            raise GroupingError(
                "grouping is not an exact cover of the event classes: "
                + "; ".join(details)
            )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self.groups)

    def __contains__(self, group: Iterable[str]) -> bool:
        return frozenset(group) in set(self.groups)

    def group_of(self, event_class: str) -> frozenset[str]:
        """The group containing ``event_class``."""
        try:
            return self._class_to_group[event_class]
        except KeyError:
            raise GroupingError(f"unknown event class {event_class!r}") from None

    def label_of(self, group: Iterable[str]) -> str:
        """The activity label assigned to ``group``."""
        group = frozenset(group)
        try:
            return self.labels[group]
        except KeyError:
            raise GroupingError(f"group {sorted(group)} is not part of this grouping") from None

    def label_of_class(self, event_class: str) -> str:
        """The activity label of the group containing ``event_class``."""
        return self.labels[self.group_of(event_class)]

    @property
    def size_reduction(self) -> float:
        """``|G| / |C_L|`` — the paper's size-reduction ingredient."""
        if not self.universe:
            return 1.0
        return len(self.groups) / len(self.universe)

    def non_trivial_groups(self) -> list[frozenset[str]]:
        """Groups with more than one event class."""
        return [group for group in self.groups if len(group) > 1]

    def relabel(self, labels: Mapping[frozenset[str], str]) -> "Grouping":
        """Return a copy with (some) labels replaced."""
        merged = dict(self.labels)
        merged.update({frozenset(k): v for k, v in labels.items()})
        return Grouping(self.groups, self.universe, merged)

    def __repr__(self) -> str:
        rendered = ", ".join(
            "{" + ", ".join(sorted(group)) + "}" for group in self.groups
        )
        return f"Grouping([{rendered}])"


def singleton_grouping(universe: Iterable[str]) -> Grouping:
    """The trivial grouping mapping every class to its own group."""
    classes = frozenset(universe)
    return Grouping([[cls] for cls in classes], classes)
