"""Shared, memoized evaluation of the ``holds(g, L, R)`` predicate.

Both candidate-generation algorithms check the same groups against the
same constraint set, and the MIP selection re-validates the chosen
grouping.  :class:`GroupChecker` centralizes this: it owns the log's
class-attribute view, shares an :class:`~repro.core.instances.InstanceIndex`
with the distance function, evaluates class-based constraints before
instance-based ones (the paper's cost ordering), and memoizes verdicts
per group.

On the compiled engine (a
:class:`~repro.core.encoding.CompiledInstanceIndex`) instance-based
constraints are evaluated by the vectorized kernels of
:mod:`repro.core.columns` — segment reductions over the instance spans
and the log's attribute columns, no :class:`~repro.eventlog.events.Event`
materialization — with an automatic per-constraint fallback to the
reference path when a constraint type has no kernel or a column cannot
represent the attribute faithfully.  Verdicts are identical either way.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.constraints.sets import ConstraintSet, class_attribute_view
from repro.core.instances import InstanceIndex
from repro.eventlog.events import EventLog


class _LazyClassAttributeView(Mapping):
    """A class-attribute view that scans the log on first real access.

    Building the view walks every event attribute of the log; constraint
    sets that never inspect class attributes (pure size bounds,
    cannot-links) should not pay for it.  The wrapper is handed to the
    constraints in place of the plain dict and materializes lazily.
    """

    __slots__ = ("_log", "_view")

    def __init__(self, log: EventLog):
        self._log = log
        self._view = None

    def _materialized(self):
        if self._view is None:
            self._view = class_attribute_view(self._log)
        return self._view

    def __getitem__(self, key):
        return self._materialized()[key]

    def __iter__(self):
        return iter(self._materialized())

    def __len__(self):
        return len(self._materialized())


class GroupChecker:
    """Memoized ``holds`` evaluation for one log and constraint set."""

    def __init__(
        self,
        log: EventLog,
        constraints: ConstraintSet,
        instance_index: InstanceIndex | None = None,
    ):
        self.log = log
        self.constraints = constraints
        self.instances = instance_index or InstanceIndex(log)
        self.class_attributes = _LazyClassAttributeView(log)
        self._cache: dict[frozenset[str], bool] = {}
        self.checks_performed = 0
        #: ``[(constraint, kernel | None), ...]`` on the compiled
        #: engine; ``None`` when instance checks run on the reference
        #: event-materialized path.
        self._instance_plan = None
        #: Constraint checks answered by a columnar kernel vs. by
        #: materialized events (introspection/tests).
        self.kernel_checks = 0
        self.fallback_checks = 0
        if constraints.instance_based:
            from repro.core import encoding

            if isinstance(self.instances, encoding.CompiledInstanceIndex):
                from repro.core.columns import compile_instance_kernels

                self._instance_plan = compile_instance_kernels(
                    constraints.instance_based, self.instances.compiled
                )

    def _instance_constraints_hold(self, group: frozenset[str]) -> bool:
        """All instance-based constraints, kernels first.

        Constraints are evaluated in set order with the same
        short-circuiting as the reference conjunction; each one uses
        its columnar kernel when available and falls back to the
        materialized-event path otherwise (identical verdicts).
        """
        if self._instance_plan is None:
            return self.constraints.check_instance_constraints(
                group, self.instances.events(group)
            )
        stats = self.instances.stats(group)
        events = None
        for constraint, kernel in self._instance_plan:
            verdict = kernel(stats, group) if kernel is not None else None
            if verdict is None:
                if events is None:
                    events = self.instances.events(group)
                self.fallback_checks += 1
                verdict = constraint.check_instances(events, group)
            else:
                self.kernel_checks += 1
            if not verdict:
                return False
        return True

    def _instance_level(self, groups: list[frozenset[str]]) -> list[bool]:
        """Instance-constraint verdicts for several groups, batched.

        Constraints run in set order with the sequential path's
        short-circuiting — a group that fails one constraint is never
        evaluated against later ones — so verdicts *and* the
        ``kernel_checks``/``fallback_checks`` totals match looping
        :meth:`_instance_constraints_hold` over the groups exactly.
        The only difference is dispatch: each group-free columnar
        kernel runs one segment reduction over the stacked instance
        spans of all still-undecided groups
        (:func:`~repro.core.columns.stack_instances`) instead of one
        reduction per group.
        """
        if self._instance_plan is None:
            return [
                self.constraints.check_instance_constraints(
                    group, self.instances.events(group)
                )
                for group in groups
            ]
        from repro.core.columns import stack_instances

        verdicts = [True] * len(groups)
        alive = list(range(len(groups)))
        stats_list = [self.instances.stats(group) for group in groups]
        events_list: list = [None] * len(groups)
        for constraint, kernel in self._instance_plan:
            if not alive:
                break
            batched: dict[int, bool] | None = None
            if kernel is not None and kernel.group_free:
                populated = [
                    index for index in alive if len(stats_list[index])
                ]
                if len(populated) > 1:
                    stacked = stack_instances(
                        [stats_list[index] for index in populated]
                    )
                    rows = kernel.verdict_array(stacked, None)
                    if rows is not None:
                        offsets = stacked.offsets
                        batched = {}
                        for k, index in enumerate(populated):
                            lo, hi = int(offsets[k]), int(offsets[k + 1])
                            batched[index] = kernel.reduce(
                                rows[lo:hi], hi - lo
                            )
            survivors = []
            for index in alive:
                if batched is not None:
                    # Absent from the stack ⇒ no instances ⇒ vacuously
                    # satisfied, same as the per-group kernel.
                    verdict = batched.get(index, True)
                    self.kernel_checks += 1
                else:
                    verdict = (
                        kernel(stats_list[index], groups[index])
                        if kernel is not None
                        else None
                    )
                    if verdict is None:
                        if events_list[index] is None:
                            events_list[index] = self.instances.events(
                                groups[index]
                            )
                        self.fallback_checks += 1
                        verdict = constraint.check_instances(
                            events_list[index], groups[index]
                        )
                    else:
                        self.kernel_checks += 1
                if verdict:
                    survivors.append(index)
                else:
                    verdicts[index] = False
            alive = survivors
        return verdicts

    def check_level(
        self, entries: list[tuple[frozenset[str], bool]]
    ) -> list[bool]:
        """Verdicts for one search level, instance kernels batched.

        ``entries`` is ``[(group, skip_class_checks), ...]`` with
        distinct groups; the flag is set when a satisfying strict
        subset is already known (monotonic mode), in which case
        class-based checks are skipped exactly like
        :meth:`holds_given_satisfying_subset`.  Returns one bool per
        entry.  Verdicts, memoization, and every counter are identical
        to looping :meth:`holds` /
        :meth:`holds_given_satisfying_subset` over the level — only
        the instance-kernel dispatch is batched
        (see :meth:`_instance_level`).
        """
        results: list[bool] = [False] * len(entries)
        pending: list[int] = []
        instance_based = bool(self.constraints.instance_based)
        for position, (group, skip_class) in enumerate(entries):
            cached = self._cache.get(group)
            if cached is not None:
                results[position] = cached
                continue
            if skip_class:
                if not instance_based:
                    # Identical to holds_given_satisfying_subset():
                    # the skipped class-based monotonic constraints
                    # are guaranteed satisfied by the subset.
                    self._cache[group] = True
                    results[position] = True
                    continue
                self.checks_performed += 1
                pending.append(position)
                continue
            self.checks_performed += 1
            verdict = self.constraints.check_class_constraints(
                group, self.class_attributes
            )
            if not verdict or not instance_based:
                self._cache[group] = verdict
                results[position] = verdict
                continue
            pending.append(position)

        if pending:
            groups = [entries[position][0] for position in pending]
            for position, verdict in zip(pending, self._instance_level(groups)):
                self._cache[entries[position][0]] = verdict
                results[position] = verdict
        return results

    def holds(self, group: Iterable[str]) -> bool:
        """Whether ``group`` satisfies all per-group constraints."""
        group = frozenset(group)
        cached = self._cache.get(group)
        if cached is not None:
            return cached
        self.checks_performed += 1
        verdict = self.constraints.check_class_constraints(
            group, self.class_attributes
        )
        if verdict and self.constraints.instance_based:
            verdict = self._instance_constraints_hold(group)
        self._cache[group] = verdict
        return verdict

    def holds_given_satisfying_subset(self, group: Iterable[str]) -> bool:
        """``holds`` given that a strict subset already satisfies everything.

        In the monotonic checking mode the paper skips *all* validation
        for supergroups of satisfying groups (Alg. 1 line 5).  That is
        sound for class-based monotonic constraints, but under the
        projection instantiation of ``inst`` it is unsound for
        instance-based ones: adding a class creates *new* instances in
        traces that contain none of the subset's classes (e.g. adding
        ``prio`` to ``{ckt}`` creates a singleton ``⟨prio⟩`` instance in
        σ1), and those can violate a "monotonic" aggregate lower bound.
        We therefore skip only the class-based checks and always
        re-validate the instance-based constraints, which keeps the
        guarantee that every candidate satisfies R.
        """
        group = frozenset(group)
        cached = self._cache.get(group)
        if cached is not None:
            return cached
        if self.constraints.instance_based:
            self.checks_performed += 1
            verdict = self._instance_constraints_hold(group)
        else:
            verdict = True
        # Identical to full holds(): the skipped class-based monotonic
        # constraints are guaranteed satisfied by the subset.
        self._cache[group] = verdict
        return verdict

    def holds_class_only(self, group: Iterable[str]) -> bool:
        """Class-based constraints only (Alg. 3 line 11: ``holds(g, L, R_C)``).

        Merging exclusive groups cannot newly violate instance-based
        constraints (their instances are exactly the union of the parts'
        instances), so Algorithm 3 skips the log pass.
        """
        return self.constraints.check_class_constraints(
            frozenset(group), self.class_attributes
        )

    def cache_size(self) -> int:
        """Number of memoized group verdicts (introspection/tests)."""
        return len(self._cache)
