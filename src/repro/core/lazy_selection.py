"""Lazy-constraint selection: Step 2 under grouping-level constraints.

Grouping-level rules (:mod:`repro.core.grouping_constraints`) judge a
*complete* grouping and cannot be linearized into the Step-2 MIP.  The
standard remedy is lazy constraints: solve the relaxation, test the
incumbent against the rules, and — when violated — add a **no-good
cut** excluding exactly that selection before re-solving:

    Σ_{i ∈ S} selected_i  <=  |S| - 1        (S = the violating selection)

Iterating yields the cheapest grouping satisfying both the per-group
constraints (already baked into the candidate set) and the
grouping-level rules, since groupings are enumerated in order of
non-decreasing distance.

Both Step-2 backends are supported: the HiGHS backend receives the cut
as an explicit linear constraint; the branch-and-bound backend receives
the excluded selections as forbidden solutions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.distance import DistanceFunction
from repro.core.grouping import Grouping
from repro.core.grouping_constraints import GroupingConstraintRule
from repro.core.instances import InstanceIndex
from repro.core.selection import BACKENDS, build_program
from repro.eventlog.events import EventLog
from repro.exceptions import SolverError
from repro.mip.branch_and_bound import SetPartitionSolver
from repro.mip.model import LE
from repro.mip.result import SolverStatus
from repro.mip import scipy_backend


@dataclass
class LazySelectionResult:
    """Outcome of the lazy-constraint selection loop."""

    grouping: Grouping | None
    objective: float | None
    status: SolverStatus
    iterations: int = 0
    cuts_added: int = 0
    rejected_groupings: list[list[frozenset[str]]] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.status is SolverStatus.OPTIMAL and self.grouping is not None


class _ForbiddenAwareSolver(SetPartitionSolver):
    """Branch-and-bound solver that rejects a set of known selections."""

    def __init__(self, *args, forbidden: list[frozenset[int]] | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._forbidden = forbidden or []

    def _search(self, covered, selection, cost):
        # Reject complete solutions matching a forbidden selection by
        # inflating their cost check at the leaf.
        if len(covered) == len(self.universe):
            if frozenset(selection) in self._forbidden:
                self._nodes += 1
                return
        super()._search(covered, selection, cost)


def select_with_grouping_rules(
    log: EventLog,
    candidates: set[frozenset[str]],
    distance: DistanceFunction,
    rules: list[GroupingConstraintRule],
    instance_index: InstanceIndex | None = None,
    min_groups: int | None = None,
    max_groups: int | None = None,
    backend: str = "scipy",
    max_iterations: int = 200,
) -> LazySelectionResult:
    """Find the cheapest grouping satisfying the grouping-level ``rules``.

    ``max_iterations`` bounds the number of no-good cuts; hitting it
    raises :class:`SolverError` (each cut excludes one grouping, so the
    bound also caps worst-case work).
    """
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; use one of {BACKENDS}")
    started = time.perf_counter()
    index = instance_index or InstanceIndex(log)
    universe = log.classes
    ordered = sorted(candidates, key=lambda group: sorted(group))
    positions = {group: i for i, group in enumerate(ordered)}
    costs = [distance.group_distance(group) for group in ordered]

    cuts: list[frozenset[int]] = []
    rejected: list[list[frozenset[str]]] = []

    for iteration in range(1, max_iterations + 1):
        if backend == "bnb":
            solver = _ForbiddenAwareSolver(
                universe=sorted(universe),
                candidates=ordered,
                costs=costs,
                min_count=min_groups,
                max_count=max_groups,
                forbidden=cuts,
            )
            outcome = solver.solve()
        else:
            program = build_program(ordered, costs, universe, min_groups, max_groups)
            for cut in cuts:
                program.add_constraint(
                    {f"g{i}": 1.0 for i in cut}, LE, float(len(cut) - 1),
                    name="no-good",
                )
            outcome = scipy_backend.solve(program)

        if outcome.status is not SolverStatus.OPTIMAL:
            return LazySelectionResult(
                grouping=None,
                objective=None,
                status=outcome.status,
                iterations=iteration,
                cuts_added=len(cuts),
                rejected_groupings=rejected,
                seconds=time.perf_counter() - started,
            )

        selected = [
            ordered[int(name[1:])]
            for name in outcome.selected()
            if name.startswith("g")
        ]
        grouping_instances = {group: index.events(group) for group in selected}
        if all(rule.check(grouping_instances) for rule in rules):
            grouping = Grouping(selected, universe)
            objective = sum(distance.group_distance(group) for group in selected)
            return LazySelectionResult(
                grouping=grouping,
                objective=objective,
                status=SolverStatus.OPTIMAL,
                iterations=iteration,
                cuts_added=len(cuts),
                rejected_groupings=rejected,
                seconds=time.perf_counter() - started,
            )
        rejected.append(list(selected))
        cuts.append(frozenset(positions[group] for group in selected))

    raise SolverError(
        f"lazy selection exceeded {max_iterations} iterations "
        f"({len(cuts)} groupings rejected)"
    )
