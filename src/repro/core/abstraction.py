"""Step 3: creating the abstracted event log (paper §V-D).

Given a grouping, every trace is rewritten in terms of its *activity
instances* — the instances of the grouping's groups within the trace.
Two strategies are offered:

* ``"complete"`` — each activity instance is represented by a single
  event at the position of its last (completing) low-level event; this
  is the common projection-style abstraction (``σ^c`` in the paper);
* ``"start_complete"`` — instances spanning more than one event emit a
  start event (``<label>_s``) at their first event's position and a
  completion event (``<label>_c``) at their last; single-event
  instances emit one plain ``<label>`` event.  This strategy preserves
  interleaving between activities (``σ^{s+c}``), at the price of longer
  traces.

Abstracted events carry provenance attributes: the member classes of
their group (``gecco:group``), the number of low-level events in the
instance (``gecco:instance_size``), and — when the low-level events are
timestamped — the instance's first/last timestamps.
"""

from __future__ import annotations

from repro.core.grouping import Grouping
from repro.core.instances import InstanceIndex
from repro.eventlog.events import TIMESTAMP_KEY, Event, EventLog, Trace
from repro.exceptions import GroupingError

#: Supported abstraction strategies.
STRATEGIES = ("complete", "start_complete")

GROUP_ATTRIBUTE = "gecco:group"
SIZE_ATTRIBUTE = "gecco:instance_size"
LIFECYCLE_ATTRIBUTE = "lifecycle:transition"


def _instance_attributes(trace: Trace, positions: list[int], group: frozenset[str]) -> dict:
    attributes = {
        GROUP_ATTRIBUTE: ",".join(sorted(group)),
        SIZE_ATTRIBUTE: len(positions),
    }
    stamps = [
        trace[p].timestamp for p in positions if trace[p].timestamp is not None
    ]
    if stamps:
        attributes[TIMESTAMP_KEY] = max(stamps)
        attributes["gecco:start_timestamp"] = min(stamps)
    return attributes


def abstract_trace(
    trace: Trace,
    grouping: Grouping,
    instance_index: InstanceIndex,
    trace_index: int,
    strategy: str = "complete",
) -> Trace:
    """Abstract one trace according to ``grouping``.

    ``instance_index`` must be built over the log containing ``trace``
    at ``trace_index`` (sharing it across the pipeline avoids
    recomputing instances per group).
    """
    if strategy not in STRATEGIES:
        raise GroupingError(f"unknown abstraction strategy {strategy!r}; use one of {STRATEGIES}")
    # Collect all activity instances I_σ with their spans.
    instances: list[tuple[list[int], frozenset[str]]] = []
    for group in grouping:
        for owner_index, positions in instance_index.positions(group):
            if owner_index == trace_index:
                instances.append((positions, group))

    emitted: list[tuple[int, int, Event]] = []  # (position, order, event)
    for positions, group in instances:
        label = grouping.label_of(group)
        attributes = _instance_attributes(trace, positions, group)
        if strategy == "complete" or len(positions) == 1:
            event = Event(label, {**attributes, LIFECYCLE_ATTRIBUTE: "complete"})
            emitted.append((positions[-1], 1, event))
        else:
            start_attributes = dict(attributes)
            start_attributes[LIFECYCLE_ATTRIBUTE] = "start"
            if "gecco:start_timestamp" in start_attributes:
                start_attributes[TIMESTAMP_KEY] = start_attributes["gecco:start_timestamp"]
            start = Event(f"{label}_s", start_attributes)
            complete = Event(f"{label}_c", {**attributes, LIFECYCLE_ATTRIBUTE: "complete"})
            emitted.append((positions[0], 0, start))
            emitted.append((positions[-1], 1, complete))

    emitted.sort(key=lambda item: (item[0], item[1]))
    return Trace([event for _, _, event in emitted], dict(trace.attributes))


def abstract_log(
    log: EventLog,
    grouping: Grouping,
    instance_index: InstanceIndex | None = None,
    strategy: str = "complete",
) -> EventLog:
    """Abstract every trace of ``log`` according to ``grouping`` (Step 3)."""
    if grouping.universe != log.classes:
        raise GroupingError(
            "grouping does not cover this log's event classes "
            f"(grouping universe {sorted(grouping.universe)}, log classes {sorted(log.classes)})"
        )
    index = instance_index or InstanceIndex(log)
    traces = [
        abstract_trace(trace, grouping, index, trace_index, strategy=strategy)
        for trace_index, trace in enumerate(log)
    ]
    attributes = dict(log.attributes)
    attributes["gecco:abstraction_strategy"] = strategy
    return EventLog(traces, attributes)
