"""Step 3: creating the abstracted event log (paper §V-D).

Given a grouping, every trace is rewritten in terms of its *activity
instances* — the instances of the grouping's groups within the trace.
Two strategies are offered:

* ``"complete"`` — each activity instance is represented by a single
  event at the position of its last (completing) low-level event; this
  is the common projection-style abstraction (``σ^c`` in the paper);
* ``"start_complete"`` — instances spanning more than one event emit a
  start event (``<label>_s``) at their first event's position and a
  completion event (``<label>_c``) at their last; single-event
  instances emit one plain ``<label>`` event.  This strategy preserves
  interleaving between activities (``σ^{s+c}``), at the price of longer
  traces.

Abstracted events carry provenance attributes: the member classes of
their group (``gecco:group``), the number of low-level events in the
instance (``gecco:instance_size``), and — when the low-level events are
timestamped — the instance's first/last timestamps.

Two implementations share this module.  The reference path rewrites one
trace at a time from materialized instance positions.  When the
instance index is a :class:`~repro.core.encoding.CompiledInstanceIndex`,
:func:`abstract_log` instead builds the abstracted traces from the
compiled engine's instance span arrays: per group, the first/last
positions and event counts come straight from vectorized detection, and
the provenance timestamps are located by exact integer-microsecond
segment reductions over the log's timestamp column
(:mod:`repro.core.columns`) — the emitted events are byte-for-byte
identical, only the per-event scans are gone.
"""

from __future__ import annotations

from repro.core.grouping import Grouping
from repro.core.instances import InstanceIndex
from repro.eventlog.events import TIMESTAMP_KEY, Event, EventLog, Trace
from repro.exceptions import GroupingError

#: Supported abstraction strategies.
STRATEGIES = ("complete", "start_complete")

GROUP_ATTRIBUTE = "gecco:group"
SIZE_ATTRIBUTE = "gecco:instance_size"
LIFECYCLE_ATTRIBUTE = "lifecycle:transition"


def _instance_attributes(trace: Trace, positions: list[int], group: frozenset[str]) -> dict:
    attributes = {
        GROUP_ATTRIBUTE: ",".join(sorted(group)),
        SIZE_ATTRIBUTE: len(positions),
    }
    stamps = [
        trace[p].timestamp for p in positions if trace[p].timestamp is not None
    ]
    if stamps:
        attributes[TIMESTAMP_KEY] = max(stamps)
        attributes["gecco:start_timestamp"] = min(stamps)
    return attributes


def abstract_trace(
    trace: Trace,
    grouping: Grouping,
    instance_index: InstanceIndex,
    trace_index: int,
    strategy: str = "complete",
) -> Trace:
    """Abstract one trace according to ``grouping``.

    ``instance_index`` must be built over the log containing ``trace``
    at ``trace_index`` (sharing it across the pipeline avoids
    recomputing instances per group).
    """
    if strategy not in STRATEGIES:
        raise GroupingError(f"unknown abstraction strategy {strategy!r}; use one of {STRATEGIES}")
    # Collect all activity instances I_σ with their spans.
    instances: list[tuple[list[int], frozenset[str]]] = []
    for group in grouping:
        for owner_index, positions in instance_index.positions(group):
            if owner_index == trace_index:
                instances.append((positions, group))

    emitted: list[tuple[int, int, Event]] = []  # (position, order, event)
    for positions, group in instances:
        label = grouping.label_of(group)
        attributes = _instance_attributes(trace, positions, group)
        if strategy == "complete" or len(positions) == 1:
            event = Event(label, {**attributes, LIFECYCLE_ATTRIBUTE: "complete"})
            emitted.append((positions[-1], 1, event))
        else:
            start_attributes = dict(attributes)
            start_attributes[LIFECYCLE_ATTRIBUTE] = "start"
            if "gecco:start_timestamp" in start_attributes:
                start_attributes[TIMESTAMP_KEY] = start_attributes["gecco:start_timestamp"]
            start = Event(f"{label}_s", start_attributes)
            complete = Event(f"{label}_c", {**attributes, LIFECYCLE_ATTRIBUTE: "complete"})
            emitted.append((positions[0], 0, start))
            emitted.append((positions[-1], 1, complete))

    emitted.sort(key=lambda item: (item[0], item[1]))
    return Trace([event for _, _, event in emitted], dict(trace.attributes))


def abstract_log(
    log: EventLog,
    grouping: Grouping,
    instance_index: InstanceIndex | None = None,
    strategy: str = "complete",
) -> EventLog:
    """Abstract every trace of ``log`` according to ``grouping`` (Step 3)."""
    if strategy not in STRATEGIES:
        raise GroupingError(
            f"unknown abstraction strategy {strategy!r}; use one of {STRATEGIES}"
        )
    if grouping.universe != log.classes:
        raise GroupingError(
            "grouping does not cover this log's event classes "
            f"(grouping universe {sorted(grouping.universe)}, log classes {sorted(log.classes)})"
        )
    index = instance_index or InstanceIndex(log)
    traces = _abstract_traces_compiled(log, grouping, index, strategy)
    if traces is None:
        traces = [
            abstract_trace(trace, grouping, index, trace_index, strategy=strategy)
            for trace_index, trace in enumerate(log)
        ]
    attributes = dict(log.attributes)
    attributes["gecco:abstraction_strategy"] = strategy
    return EventLog(traces, attributes)


def _abstract_traces_compiled(log, grouping, index, strategy):
    """Step 3 from compiled instance spans (``None`` = use the reference).

    Per group, the instance spans (owning trace, first/last position,
    event count) come from the compiled index's vectorized detection;
    the provenance timestamps are found by integer-microsecond argmin /
    argmax over the timestamp column, then the *original* ``datetime``
    objects are emitted — so every attribute, including tie-breaks
    between equal stamps, matches the reference byte-for-byte.  The
    per-trace ``(position, order)`` sort key is total (a grouping
    partitions the classes, so no two emitted events share a position
    and order), which makes the output independent of emission order.
    """
    from repro.core import encoding

    if not encoding.HAVE_NUMPY or not isinstance(
        index, encoding.CompiledInstanceIndex
    ):
        return None
    compiled = index.compiled
    column = compiled.columns().timestamps()
    if column is None or column.has_foreign_stamps:
        # Mixed naive/aware timestamps have no common timeline, and
        # non-datetime stamp values pass the reference's weaker
        # ``timestamp is not None`` provenance test; the reference path
        # reproduces the exact semantics (including its errors) there.
        return None
    import numpy as np

    emitted: list[list[tuple[int, int, Event]]] = [[] for _ in range(len(log))]
    big = np.iinfo(np.int64).max
    for group in grouping:
        label = grouping.label_of(group)
        group_attr = ",".join(sorted(group))
        stats = index.stats(group)
        num_instances = len(stats)
        if not num_instances:
            continue
        starts, counts = stats.segments()
        hits = stats.hit_ids
        flags = column.mask[hits]
        if flags.any():
            us = column.us[hits]
            seg_ids = np.repeat(
                np.arange(num_instances, dtype=np.int64), counts
            )
            order = np.arange(hits.size, dtype=np.int64)
            highs = np.maximum.reduceat(
                np.where(flags, us, np.iinfo(np.int64).min), starts
            )
            lows = np.minimum.reduceat(np.where(flags, us, big), starts)
            # First hit attaining the extreme — ``max``/``min`` on the
            # reference's stamp list keep the first of equals.
            last_at = np.minimum.reduceat(
                np.where(flags & (us == highs[seg_ids]), order, big), starts
            )
            first_at = np.minimum.reduceat(
                np.where(flags & (us == lows[seg_ids]), order, big), starts
            )
            stamped = (
                np.add.reduceat(flags.astype(np.int64), starts) > 0
            ).tolist()
            hit_list = hits.tolist()
            last_at = last_at.tolist()
            first_at = first_at.tolist()
        else:
            stamped = [False] * num_instances
            hit_list = first_at = last_at = None
        objects = column.objects
        rows = zip(
            stats.trace_ids, stats.firsts, stats.lasts, stats.counts, stamped
        )
        for position, (owner, first, last, count, has_stamp) in enumerate(rows):
            attributes = {
                GROUP_ATTRIBUTE: group_attr,
                SIZE_ATTRIBUTE: count,
            }
            if has_stamp:
                attributes[TIMESTAMP_KEY] = objects[hit_list[last_at[position]]]
                attributes["gecco:start_timestamp"] = objects[
                    hit_list[first_at[position]]
                ]
            bucket = emitted[owner]
            if strategy == "complete" or count == 1:
                event = Event(
                    label, {**attributes, LIFECYCLE_ATTRIBUTE: "complete"}
                )
                bucket.append((last, 1, event))
            else:
                start_attributes = dict(attributes)
                start_attributes[LIFECYCLE_ATTRIBUTE] = "start"
                if "gecco:start_timestamp" in start_attributes:
                    start_attributes[TIMESTAMP_KEY] = start_attributes[
                        "gecco:start_timestamp"
                    ]
                bucket.append((first, 0, Event(f"{label}_s", start_attributes)))
                bucket.append(
                    (
                        last,
                        1,
                        Event(
                            f"{label}_c",
                            {**attributes, LIFECYCLE_ATTRIBUTE: "complete"},
                        ),
                    )
                )
    traces = []
    for trace, bucket in zip(log, emitted):
        bucket.sort(key=lambda item: (item[0], item[1]))
        traces.append(
            Trace([event for _, _, event in bucket], dict(trace.attributes))
        )
    return traces
