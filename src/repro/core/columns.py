"""Per-event attribute columns and vectorized instance-constraint kernels.

Instance-based constraint checking (``R_I``, paper §IV-A / Table II) is
the last Step-1 hot path that still materializes
:class:`~repro.eventlog.events.Event` lists: every ``holds`` evaluation
walks each instance's events, reading attribute dicts one lookup at a
time.  This module removes the object layer the same way
:mod:`repro.core.encoding` did for instance detection — one compilation
pass per (log, attribute key), then segment reductions over flat arrays:

* :class:`AttributeColumns` lazily builds, per attribute key, arrays
  aligned to the compiled log's CSR event buffer: a **numeric column**
  (float64 values + carrier mask, the domain of ``sum/avg/min/max``), a
  **presence column** (the domain of ``count``), an **interned code
  column** (dense IDs for distinct-value counting over values of any
  hashable type), and one **timestamp column** (exact integer
  microseconds since an epoch + the original ``datetime`` objects, the
  domain of duration/gap constraints and of Step-3 provenance stamps).
* :func:`compile_instance_kernels` turns a constraint list into
  per-constraint kernels evaluating ``holds`` verdicts as segment
  reductions over a group's instance spans
  (:meth:`~repro.core.encoding.GroupInstances.segments`), with the
  paper semantics preserved exactly: vacuous satisfaction when an
  instance has no carrier of the attribute, and
  :class:`~repro.constraints.base.AtLeastFraction` loose wrappers.

**Bitwise identity.**  Kernel verdicts must equal the reference
implementation's on every input, so each aggregate replays the
reference arithmetic:

* ``min``/``max``/``count``/``distinct`` and the integer-microsecond
  duration/gap reductions are order-independent and exact;
* ``sum``/``avg`` are *certified*: the vectorized segment sum (whose
  summation order numpy does not guarantee) decides the threshold
  comparison only when it clears the threshold by more than a rigorous
  floating-point error bound; instances inside the margin — and any
  instance with non-finite values — are re-summed left-to-right exactly
  like the reference loop;
* instances whose carrier values contain NaN fall back to the
  reference's (order-dependent) ``min``/``max`` Python semantics.

A column that cannot faithfully represent a key's values — unhashable
values for ``distinct``, out-of-float-range ints, a log mixing naive
and aware timestamps — reports itself unavailable, and the checker
falls back to the materialized-event path for that constraint only.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np

from repro.constraints.base import AtLeastFraction
from repro.constraints.instancebased import (
    MaxConsecutiveGap,
    MaxDistinctInstanceAttribute,
    MaxEventsPerClass,
    MaxInstanceAggregate,
    MaxInstanceDuration,
    MinDistinctInstanceAttribute,
    MinEventsPerClass,
    MinInstanceAggregate,
    MinInstanceDuration,
)
from repro.eventlog.events import TIMESTAMP_KEY

#: Aware/naive epochs for the exact microsecond encoding; which one a
#: log uses is decided by its first timestamp (mixing disables the
#: column, mirroring the reference's inability to compare the two).
_EPOCH_AWARE = datetime(1970, 1, 1, tzinfo=timezone.utc)
_EPOCH_NAIVE = datetime(1970, 1, 1)

#: Integer deltas beyond float64's exact-integer range (spans over
#: ~285 years in microseconds) are re-divided with exact Python
#: integer/float arithmetic instead of the vectorized cast.
_EXACT_FLOAT_INT = 1 << 53

#: Safety factor on the sequential-vs-pairwise summation error bound;
#: the bound itself is computed from rounded quantities, so certify
#: comparisons only well clear of the threshold.
_SUM_MARGIN_SAFETY = 4.0

_EPS = float(np.finfo(np.float64).eps)


class _NumericColumn:
    """float64 values + carrier mask for one attribute key."""

    __slots__ = ("values", "mask")

    def __init__(self, values, mask):
        self.values = values
        self.mask = mask


class _CodeColumn:
    """Interned value codes (dense ints) + carrier mask for one key."""

    __slots__ = ("codes", "mask", "num_codes")

    def __init__(self, codes, mask, num_codes):
        self.codes = codes
        self.mask = mask
        self.num_codes = num_codes


class _TimestampColumn:
    """Exact integer microseconds + the original datetime objects.

    ``mask`` marks ``datetime``-valued stamps — the domain of the
    duration/gap constraint kernels, matching the reference aggregates'
    ``isinstance(..., datetime)`` filter.  ``has_foreign_stamps``
    records that some event carries a non-``None``, non-``datetime``
    timestamp value: Step-3 provenance follows the reference's weaker
    ``timestamp is not None`` test there, so the compiled abstraction
    must fall back to the reference path for such logs.
    """

    __slots__ = ("us", "mask", "objects", "has_foreign_stamps")

    def __init__(self, us, mask, objects, has_foreign_stamps=False):
        self.us = us
        self.mask = mask
        self.objects = objects
        self.has_foreign_stamps = has_foreign_stamps


class AttributeColumns:
    """Lazily built per-key attribute columns of one compiled log.

    Every accessor returns ``None`` when the column cannot represent
    the key faithfully (the caller then falls back to the
    materialized-event path); results — including failures — are
    cached, so each key is compiled at most once.
    """

    def __init__(self, compiled):
        self.compiled = compiled
        self._numeric: dict[str, _NumericColumn | None] = {}
        self._presence: dict[str, np.ndarray] = {}
        self._codes: dict[str, _CodeColumn | None] = {}
        self._timestamps: _TimestampColumn | None | bool = False

    def _events(self):
        for trace in self.compiled.log:
            yield from trace

    def numeric(self, key: str) -> _NumericColumn | None:
        """Numeric values of ``key`` (bools excluded, like the reference)."""
        if key not in self._numeric:
            total = int(self.compiled.all_ids.size)
            values = np.zeros(total, dtype=np.float64)
            mask = np.zeros(total, dtype=bool)
            column: _NumericColumn | None = _NumericColumn(values, mask)
            try:
                for index, event in enumerate(self._events()):
                    value = event.attributes.get(key)
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue
                    values[index] = float(value)
                    mask[index] = True
            except (OverflowError, ValueError):
                # An int outside float range: the reference raises when
                # (and only when) the carrying group is actually checked
                # — keep that behavior by refusing to compile the key.
                column = None
            self._numeric[key] = column
        return self._numeric[key]

    def presence(self, key: str) -> np.ndarray:
        """Boolean carrier mask of ``key`` (any value type)."""
        column = self._presence.get(key)
        if column is None:
            total = int(self.compiled.all_ids.size)
            column = np.zeros(total, dtype=bool)
            for index, event in enumerate(self._events()):
                if key in event.attributes:
                    column[index] = True
            self._presence[key] = column
        return column

    def codes(self, key: str) -> _CodeColumn | None:
        """Values of ``key`` interned to dense integer codes.

        Interning uses dict identity semantics — the same hash/equality
        as the reference's ``set`` — so per-instance distinct counts
        match exactly (including cross-type equalities like ``1 ==
        1.0``).  Unhashable values make the column unavailable.
        """
        if key not in self._codes:
            total = int(self.compiled.all_ids.size)
            codes = np.zeros(total, dtype=np.int64)
            mask = np.zeros(total, dtype=bool)
            interned: dict = {}
            column: _CodeColumn | None
            try:
                for index, event in enumerate(self._events()):
                    if key not in event.attributes:
                        continue
                    value = event.attributes[key]
                    code = interned.setdefault(value, len(interned))
                    codes[index] = code
                    mask[index] = True
                column = _CodeColumn(codes, mask, len(interned))
            except TypeError:
                column = None
            self._codes[key] = column
        return self._codes[key]

    def timestamps(self) -> _TimestampColumn | None:
        """The log's timestamps as exact integer microseconds.

        ``(a - b).total_seconds()`` in CPython divides the delta's
        integer microseconds by ``10**6``; encoding each stamp as
        integer microseconds since a fixed epoch reproduces that
        division bitwise.  A log mixing naive and aware datetimes has
        no common epoch — the column reports unavailable and duration
        constraints / Step-3 stamps fall back to the reference path.
        """
        if self._timestamps is False:
            total = int(self.compiled.all_ids.size)
            us = np.zeros(total, dtype=np.int64)
            mask = np.zeros(total, dtype=bool)
            objects: list = [None] * total
            epoch = None
            foreign = False
            column: _TimestampColumn | None = None
            for index, event in enumerate(self._events()):
                value = event.attributes.get(TIMESTAMP_KEY)
                if not isinstance(value, datetime):
                    if value is not None:
                        foreign = True
                    continue
                aware = value.tzinfo is not None
                if epoch is None:
                    epoch = _EPOCH_AWARE if aware else _EPOCH_NAIVE
                elif aware != (epoch is _EPOCH_AWARE):
                    break  # mixed naive/aware: no common timeline
                delta = value - epoch
                us[index] = (
                    delta.days * 86400 + delta.seconds
                ) * 10**6 + delta.microseconds
                mask[index] = True
                objects[index] = value
            else:
                column = _TimestampColumn(us, mask, objects, foreign)
            self._timestamps = column
        return self._timestamps


# -- segment-reduction helpers -----------------------------------------


def _segment_sums(flags, values, starts):
    """Per-instance carrier counts and (pairwise) sums over carriers."""
    counts = np.add.reduceat(flags.astype(np.int64), starts)
    sums = np.add.reduceat(np.where(flags, values, 0.0), starts)
    return counts, sums


def _segment_extreme(flags, values, starts, maximum):
    """Per-instance min/max over carriers (sentinel-filled, exact)."""
    if maximum:
        filled = np.where(flags, values, -np.inf)
        return np.maximum.reduceat(filled, starts)
    filled = np.where(flags, values, np.inf)
    return np.minimum.reduceat(filled, starts)


def _distinct_counts(seg_ids, codes, flags, num_codes, num_instances):
    """Per-instance distinct-code counts over carrier hits.

    Dedup via an explicit sort + boundary scan: exact like
    ``np.unique`` but without its hash-table path, which dominates on
    the large stacked key arrays of frontier-batched checking.
    """
    keys = seg_ids[flags] * np.int64(num_codes + 1) + codes[flags]
    if keys.size == 0:
        return np.zeros(num_instances, dtype=np.int64)
    keys.sort()
    boundaries = np.empty(keys.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
    return np.bincount(
        keys[boundaries] // np.int64(num_codes + 1), minlength=num_instances
    )


def _sorted_unique_counts(keys):
    """``np.unique(keys, return_counts=True)`` via sort + boundary scan.

    ``keys`` must be a fresh array (it is sorted in place).  Avoids
    numpy's hash-table unique, which dominates on the large stacked
    key arrays of frontier-batched checking.
    """
    if keys.size == 0:
        return keys, np.zeros(0, dtype=np.int64)
    keys.sort()
    boundaries = np.empty(keys.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
    firsts = np.flatnonzero(boundaries)
    multiplicity = np.empty(firsts.size, dtype=np.int64)
    multiplicity[:-1] = firsts[1:] - firsts[:-1]
    multiplicity[-1] = keys.size - firsts[-1]
    return keys[firsts], multiplicity


def _sequential_sum(values) -> float:
    """Left-to-right float accumulation, exactly like the reference."""
    total = 0.0
    for value in values:
        total += value
    return total


def _python_values(column, stats, starts, counts, index):
    """One instance's carrier values as the reference's float list."""
    lo = int(starts[index])
    hi = lo + int(counts[index])
    hits = stats.hit_ids[lo:hi]
    flags = column.mask[hits]
    return column.values[hits][flags].tolist()


# -- per-instance verdict builders -------------------------------------
#
# Each builder returns ``fn(stats, group) -> bool ndarray | None`` with
# one verdict per instance; ``None`` means the needed column is
# unavailable and the constraint must use the event-materialized path.


def _aggregate_verdicts(columns, key, how, threshold, lower):
    compare = (lambda v, t: v >= t) if lower else (lambda v, t: v <= t)

    def verdicts(stats, group):
        starts, counts = stats.segments()
        hits = stats.hit_ids
        num_instances = counts.size

        if how == "count":
            present = columns.presence(key)[hits]
            observed = np.add.reduceat(
                present.astype(np.int64), starts
            ).astype(np.float64)
            return compare(observed, threshold)

        if how == "distinct":
            column = columns.codes(key)
            if column is None:
                return None
            seg_ids = np.repeat(
                np.arange(num_instances, dtype=np.int64), counts
            )
            observed = _distinct_counts(
                seg_ids, column.codes[hits], column.mask[hits],
                column.num_codes, num_instances,
            ).astype(np.float64)
            return compare(observed, threshold)

        column = columns.numeric(key)
        if column is None:
            return None
        flags = column.mask[hits]
        values = column.values[hits]
        carriers, sums = _segment_sums(flags, values, starts)
        vacuous = carriers == 0

        if how in ("min", "max"):
            extremes = _segment_extreme(flags, values, starts, how == "max")
            result = vacuous | compare(extremes, threshold)
            # NaN carriers: the reference's min()/max() is
            # order-dependent — replay it per affected instance.
            nan_hits = np.add.reduceat(
                (flags & np.isnan(values)).astype(np.int64), starts
            )
            for index in np.flatnonzero(nan_hits):
                instance = _python_values(column, stats, starts, counts, index)
                value = min(instance) if how == "min" else max(instance)
                result[index] = compare(value, threshold)
            return result

        # how in ("sum", "avg"): certify the pairwise sums against a
        # rigorous sequential-summation error bound; instances inside
        # the margin are re-summed left-to-right like the reference.
        abs_sums = np.add.reduceat(
            np.where(flags, np.abs(values), 0.0), starts
        )
        margins = _SUM_MARGIN_SAFETY * _EPS * carriers * abs_sums
        if how == "avg":
            observed = np.divide(
                sums, carriers, out=np.zeros_like(sums),
                where=~vacuous,
            )
            margins = np.divide(
                margins, carriers, out=margins, where=~vacuous
            )
        else:
            observed = sums
        result = vacuous | compare(observed, threshold)
        uncertain = ~vacuous & (
            ~np.isfinite(observed)
            | ~np.isfinite(margins)
            | (np.abs(observed - threshold) <= margins)
        )
        for index in np.flatnonzero(uncertain):
            instance = _python_values(column, stats, starts, counts, index)
            value = _sequential_sum(instance)
            if how == "avg":
                value = value / len(instance)
            result[index] = compare(value, threshold)
        return result

    return verdicts


def _distinct_bound_verdicts(columns, key, bound, lower):
    def verdicts(stats, group):
        column = columns.codes(key)
        if column is None:
            return None
        starts, counts = stats.segments()
        hits = stats.hit_ids
        num_instances = counts.size
        seg_ids = np.repeat(np.arange(num_instances, dtype=np.int64), counts)
        observed = _distinct_counts(
            seg_ids, column.codes[hits], column.mask[hits],
            column.num_codes, num_instances,
        )
        return observed >= bound if lower else observed <= bound

    return verdicts


def _exact_seconds(deltas):
    """``microseconds / 10**6`` with the reference's exact rounding.

    The vectorized int64→float64 cast is exact below 2**53; larger
    deltas (285+-year spans) are re-divided with Python's
    correctly-rounded int/int division, matching ``total_seconds()``.
    """
    seconds = deltas / np.float64(10**6)
    huge = np.abs(deltas) >= _EXACT_FLOAT_INT
    for index in np.flatnonzero(huge):
        seconds[index] = int(deltas[index]) / 10**6
    return seconds


def _duration_verdicts(columns, seconds, lower):
    def verdicts(stats, group):
        column = columns.timestamps()
        if column is None:
            return None
        starts, counts = stats.segments()
        hits = stats.hit_ids
        flags = column.mask[hits]
        us = column.us[hits]
        carriers = np.add.reduceat(flags.astype(np.int64), starts)
        highs = np.maximum.reduceat(
            np.where(flags, us, np.iinfo(np.int64).min), starts
        )
        lows = np.minimum.reduceat(
            np.where(flags, us, np.iinfo(np.int64).max), starts
        )
        vacuous = carriers == 0
        deltas = np.zeros(carriers.size, dtype=np.int64)
        live = ~vacuous
        deltas[live] = highs[live] - lows[live]
        spans = _exact_seconds(deltas)
        if lower:
            return vacuous | (spans >= seconds)
        return vacuous | (spans <= seconds)

    return verdicts


def _gap_verdicts(columns, seconds):
    def verdicts(stats, group):
        column = columns.timestamps()
        if column is None:
            return None
        starts, counts = stats.segments()
        hits = stats.hit_ids
        num_instances = counts.size
        flags = column.mask[hits]
        seg_ids = np.repeat(np.arange(num_instances, dtype=np.int64), counts)
        stamped_segs = seg_ids[flags]
        stamped_us = column.us[hits][flags]
        carriers = np.bincount(stamped_segs, minlength=num_instances)
        result = np.ones(num_instances, dtype=bool)
        if stamped_us.size < 2:
            return result
        gaps = stamped_us[1:] - stamped_us[:-1]
        within = stamped_segs[1:] == stamped_segs[:-1]
        worst = np.full(num_instances, np.iinfo(np.int64).min, dtype=np.int64)
        np.maximum.at(worst, stamped_segs[1:][within], gaps[within])
        measured = carriers >= 2
        result[measured] = (
            _exact_seconds(worst[measured]) <= seconds
        )
        return result

    return verdicts


def _events_per_class_verdicts(compiled, bound, minimum, classes):
    def verdicts(stats, group):
        starts, counts = stats.segments()
        hits = stats.hit_ids
        num_instances = counts.size
        num_classes = np.int64(compiled.num_classes + 1)
        seg_ids = np.repeat(np.arange(num_instances, dtype=np.int64), counts)
        keys = seg_ids * num_classes + compiled.all_ids[hits]
        unique, multiplicity = _sorted_unique_counts(keys)
        owners = unique // num_classes
        if not minimum:
            worst = np.zeros(num_instances, dtype=np.int64)
            np.maximum.at(worst, owners, multiplicity)
            return worst <= bound
        targets = group if classes is None else (classes & group)
        if not targets:
            return np.ones(num_instances, dtype=bool)
        if any(cls not in compiled.class_to_id for cls in targets):
            # A target class foreign to the log never reaches ``bound``.
            return np.zeros(num_instances, dtype=bool)
        target_ids = np.asarray(
            sorted(compiled.class_to_id[cls] for cls in targets),
            dtype=np.int64,
        )
        satisfied = np.isin(unique % num_classes, target_ids) & (
            multiplicity >= bound
        )
        met = np.bincount(owners[satisfied], minlength=num_instances)
        return met == len(targets)

    return verdicts


#: Constraint types with an exact kernel; subclasses may override the
#: check methods, so only these *exact* types dispatch to kernels.
def _instance_verdict_builder(constraint, columns, compiled):
    kind = type(constraint)
    if kind is MinInstanceAggregate:
        return _aggregate_verdicts(
            columns, constraint.key, constraint.how, constraint.threshold, True
        )
    if kind is MaxInstanceAggregate:
        return _aggregate_verdicts(
            columns, constraint.key, constraint.how, constraint.threshold, False
        )
    if kind is MaxDistinctInstanceAttribute:
        return _distinct_bound_verdicts(
            columns, constraint.key, constraint.bound, False
        )
    if kind is MinDistinctInstanceAttribute:
        return _distinct_bound_verdicts(
            columns, constraint.key, constraint.bound, True
        )
    if kind is MaxInstanceDuration:
        return _duration_verdicts(columns, constraint.seconds, False)
    if kind is MinInstanceDuration:
        return _duration_verdicts(columns, constraint.seconds, True)
    if kind is MaxConsecutiveGap:
        return _gap_verdicts(columns, constraint.seconds)
    if kind is MaxEventsPerClass:
        return _events_per_class_verdicts(
            compiled, constraint.bound, False, None
        )
    if kind is MinEventsPerClass:
        return _events_per_class_verdicts(
            compiled, constraint.bound, True, constraint.classes
        )
    return None


def _per_instance_builder(constraint, columns, compiled):
    """The per-instance predicate, unwrapping nested loose wrappers.

    ``AtLeastFraction.check_instances`` judges each instance with the
    *wrapped* constraint's ``check_instance`` — recursively, for nested
    wrappers — so the innermost constraint supplies the predicate.
    """
    if type(constraint) is AtLeastFraction:
        return _per_instance_builder(constraint.inner, columns, compiled)
    return _instance_verdict_builder(constraint, columns, compiled)


class InstanceKernel:
    """One instance constraint compiled to segment reductions.

    Calling the kernel evaluates one group (``kernel(stats, group) ->
    bool | None``, ``None`` meaning the needed column is unavailable
    and the caller must fall back to the materialized-event path).
    :meth:`verdict_array` and :meth:`reduce` expose the two halves
    separately so :meth:`~repro.core.checker.GroupChecker.check_level`
    can run the per-instance verdicts once over a whole frontier
    level's *stacked* instance spans and reduce per group afterwards.

    ``group_free`` marks kernels whose verdict builders never read the
    ``group`` argument — every kernel except
    :class:`~repro.constraints.instancebased.MinEventsPerClass`, whose
    target classes depend on the group being checked.  Only group-free
    kernels may be evaluated over a stack.
    """

    __slots__ = ("_verdicts", "fraction", "group_free")

    def __init__(self, verdicts, fraction=None, group_free=True):
        self._verdicts = verdicts
        #: ``AtLeastFraction`` threshold, or ``None`` for plain
        #: all-instances conjunction.
        self.fraction = fraction
        self.group_free = group_free

    def verdict_array(self, stats, group):
        """Per-instance verdicts (``None``: column unavailable)."""
        return self._verdicts(stats, group)

    def reduce(self, verdicts, num_instances: int) -> bool:
        """Fold per-instance verdicts into one group verdict."""
        if self.fraction is None:
            return bool(verdicts.all())
        satisfied = int(np.count_nonzero(verdicts))
        return satisfied / num_instances >= self.fraction

    def __call__(self, stats, group):
        num_instances = len(stats)
        if not num_instances:
            return True  # no instances: vacuously satisfied (§IV-A)
        verdicts = self._verdicts(stats, group)
        if verdicts is None:
            return None
        return self.reduce(verdicts, num_instances)


class StackedInstances:
    """Concatenated instance spans of several groups (one search level).

    Exposes the same ``hit_ids`` / ``segments()`` / ``len()`` surface
    as :class:`~repro.core.encoding.GroupInstances`, so every
    group-free verdict builder runs unchanged over the stack: all of
    their reductions are segment-local and instance segments never
    straddle group boundaries, hence per-instance verdicts over the
    stack equal the per-group verdict arrays concatenated.  (The
    certified ``sum``/``avg`` comparisons stay bitwise-faithful too:
    any instance whose vectorized sum lands inside the error margin is
    re-summed sequentially either way.)

    ``offsets`` maps stacked verdict rows back to groups: group ``k``
    owns rows ``offsets[k] : offsets[k + 1]``.
    """

    __slots__ = ("hit_ids", "offsets", "_starts", "_counts")

    def __init__(self, hit_ids, starts, counts, offsets):
        self.hit_ids = hit_ids
        self.offsets = offsets
        self._starts = starts
        self._counts = counts

    def __len__(self) -> int:
        return int(self._counts.size)

    def segments(self):
        """``(starts, counts)`` span arrays, one entry per instance."""
        return self._starts, self._counts


def stack_instances(stats_list) -> StackedInstances:
    """Stack per-group :class:`GroupInstances` for one batched kernel run."""
    hit_arrays = []
    starts_arrays = []
    counts_arrays = []
    offsets = np.zeros(len(stats_list) + 1, dtype=np.int64)
    hit_base = 0
    for index, stats in enumerate(stats_list):
        starts, counts = stats.segments()
        hits = np.asarray(stats.hit_ids, dtype=np.int64)
        hit_arrays.append(hits)
        starts_arrays.append(starts + hit_base)
        counts_arrays.append(counts)
        hit_base += int(hits.size)
        offsets[index + 1] = offsets[index] + counts.size
    return StackedInstances(
        np.concatenate(hit_arrays),
        np.concatenate(starts_arrays),
        np.concatenate(counts_arrays),
        offsets,
    )


def _innermost(constraint):
    """The wrapped constraint under (possibly nested) loose wrappers."""
    while type(constraint) is AtLeastFraction:
        constraint = constraint.inner
    return constraint


def compile_instance_kernels(constraints, compiled):
    """Compile each instance constraint to a group-verdict kernel.

    Returns ``[(constraint, kernel | None), ...]`` in evaluation order,
    each kernel an :class:`InstanceKernel`.  A ``None`` verdict at
    runtime means the needed column is unavailable for this log and the
    caller must fall back to ``constraint.check_instances`` on
    materialized events (behavior is then identical by construction).
    Constraints of unknown (sub)types get no kernel at all.
    """
    columns = compiled.columns()
    plan = []
    for constraint in constraints:
        builder = None
        group_free = type(_innermost(constraint)) is not MinEventsPerClass
        if type(constraint) is AtLeastFraction:
            verdicts = _per_instance_builder(constraint, columns, compiled)
            if verdicts is not None:
                builder = InstanceKernel(
                    verdicts,
                    fraction=constraint.fraction,
                    group_free=group_free,
                )
        else:
            verdicts = _instance_verdict_builder(constraint, columns, compiled)
            if verdicts is not None:
                builder = InstanceKernel(verdicts, group_free=group_free)
        plan.append((constraint, builder))
    return plan
