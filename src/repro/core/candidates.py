"""Exhaustive candidate computation (paper Algorithm 1).

Starting from singleton groups, the algorithm iteratively expands
groups by one event class, keeping every group that (i) actually
co-occurs in at least one trace (``occurs(g, L)``) and (ii) satisfies
the per-group constraints.  Two monotonicity-based pruning strategies
cut the search space:

* **monotonic mode** — once a subgroup satisfies the (all-monotonic)
  constraints, its supergroups' *class-based* checks can be skipped.
  (Deviation from the paper's Alg. 1 line 5, which skips all checks:
  under the projection instantiation of ``inst``, adding a class
  creates new instances in traces lacking the other classes, so
  instance-based "monotonic" constraints can still break — see
  ``GroupChecker.holds_given_satisfying_subset``.  We re-check them to
  preserve the paper's guarantee that the output satisfies R.);
* **anti-monotonic mode** — once a group violates an anti-monotonic
  constraint, no supergroup can recover, so only satisfying groups are
  expanded.

The worst case remains exponential in ``|C_L|`` (paper §V-B); a
wall-clock ``timeout`` mirrors the paper's 5-hour cap, after which the
candidates found so far are returned (``stats.timed_out`` is set).

Two implementations share this module: the pure-Python reference and a
bitmask frontier over :class:`~repro.core.encoding.CompiledLog` (pass
``compiled=``).  The compiled variant represents every frontier group
as an interned class-ID bitmask, answers ``occurs`` by extending the
parent's cached trace bitset with one posting-list intersection, runs
the monotonic subset prune on integer masks, and batch-primes each
level's instance extraction in one vectorized sweep (feeding the
columnar constraint kernels of :mod:`repro.core.columns`).  Both
return identical candidate sets and search statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.constraints.base import CheckingMode
from repro.constraints.sets import ConstraintSet
from repro.core.checker import GroupChecker
from repro.eventlog.events import EventLog


@dataclass
class CandidateStats:
    """Bookkeeping of one candidate-computation run."""

    iterations: int = 0
    groups_checked: int = 0
    groups_expanded: int = 0
    subset_prunes: int = 0
    timed_out: bool = False
    seconds: float = 0.0


@dataclass
class CandidateResult:
    """Outcome of Step 1: the candidate set plus search statistics."""

    groups: set[frozenset[str]] = field(default_factory=set)
    stats: CandidateStats = field(default_factory=CandidateStats)

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)


def _expand_groups(
    groups: set[frozenset[str]], classes: frozenset[str]
) -> set[frozenset[str]]:
    """All one-class extensions of the given groups (``expandGroups``)."""
    expanded: set[frozenset[str]] = set()
    for group in groups:
        for cls in classes - group:
            expanded.add(group | {cls})
    return expanded


def _has_candidate_subset(
    group: frozenset[str], candidates: set[frozenset[str]]
) -> bool:
    """``∃ g' ∈ G : g' ⊂ g`` via immediate parents.

    Because ``occurs`` is anti-monotonic (subsets of co-occurring groups
    co-occur in the same trace) and monotonic mode adds every satisfying
    group's occurring supersets to the candidate set level by level, a
    strict subset in the candidate set implies an immediate parent in
    the candidate set — so checking the ``|g|`` parents suffices.
    """
    for cls in group:
        if (group - {cls}) in candidates:
            return True
    return False


def exhaustive_candidates(
    log: EventLog,
    constraints: ConstraintSet,
    checker: GroupChecker | None = None,
    timeout: float | None = None,
    compiled=None,
) -> CandidateResult:
    """Compute the complete constraint-satisfying candidate set (Alg. 1).

    Parameters
    ----------
    checker:
        Optional pre-built :class:`GroupChecker` (lets the caller share
        instance caches with the distance function).
    timeout:
        Wall-clock budget in seconds; on expiry the candidates found so
        far are returned with ``stats.timed_out = True``.
    compiled:
        Optional :class:`~repro.core.encoding.CompiledLog` built over
        ``log``; when given, the frontier walk runs on interned class-ID
        bitmasks (same candidates, same statistics, several times
        faster).
    """
    if compiled is not None:
        return _exhaustive_candidates_compiled(
            log, constraints, checker, timeout, compiled
        )
    started = time.perf_counter()
    checker = checker or GroupChecker(log, constraints)
    mode = constraints.checking_mode
    classes = log.classes
    stats = CandidateStats()

    candidates: set[frozenset[str]] = set()
    to_check: set[frozenset[str]] = {frozenset([cls]) for cls in classes}

    while to_check:
        stats.iterations += 1
        new_candidates: set[frozenset[str]] = set()
        for group in to_check:
            if timeout is not None and time.perf_counter() - started > timeout:
                stats.timed_out = True
                stats.seconds = time.perf_counter() - started
                return CandidateResult(candidates | new_candidates, stats)
            if mode is CheckingMode.MONOTONIC and _has_candidate_subset(
                group, candidates
            ):
                stats.subset_prunes += 1
                if checker.holds_given_satisfying_subset(group):
                    new_candidates.add(group)
                continue
            stats.groups_checked += 1
            if checker.holds(group):
                new_candidates.add(group)
        candidates |= new_candidates

        if mode is CheckingMode.ANTI_MONOTONIC:
            expansion_base = new_candidates
        else:
            expansion_base = to_check
        expanded = _expand_groups(expansion_base, classes)
        stats.groups_expanded += len(expanded)
        to_check = {group for group in expanded if log.occurs(group)}

    stats.seconds = time.perf_counter() - started
    return CandidateResult(candidates, stats)


#: Groups per frontier batch handed to ``GroupChecker.check_level``;
#: the wall-clock timeout is re-checked between batches.
_LEVEL_CHUNK = 512


def _has_mask_subset(mask: int, candidate_masks: set[int]) -> bool:
    """Bitmask form of :func:`_has_candidate_subset`: check the |g| parents."""
    remaining = mask
    while remaining:
        low = remaining & -remaining
        if (mask ^ low) in candidate_masks:
            return True
        remaining ^= low
    return False


def _exhaustive_candidates_compiled(
    log: EventLog,
    constraints: ConstraintSet,
    checker: GroupChecker | None,
    timeout: float | None,
    compiled,
) -> CandidateResult:
    """Algorithm 1 on the integer-encoded engine (same outputs as above).

    Level-wise expansion over class-ID bitmasks: ``occurs`` extends the
    parent's cached trace bitset by one posting-list intersection, the
    monotonic subset prune runs on masks, and — when the constraint set
    needs instances — each level's groups are extracted in one
    vectorized sweep before checking, so the columnar kernels find
    their instance spans already cached.
    """
    from repro.core.encoding import CompiledInstanceIndex

    started = time.perf_counter()
    if checker is None:
        checker = GroupChecker(
            log, constraints, CompiledInstanceIndex(log, compiled)
        )
    mode = constraints.checking_mode
    stats = CandidateStats()

    can_prime = constraints.needs_instances and isinstance(
        checker.instances, CompiledInstanceIndex
    )
    all_bits = [1 << class_id for class_id in range(compiled.num_classes)]
    candidates: set[frozenset[str]] = set()
    candidate_masks: set[int] = set()
    to_check: list[int] = list(all_bits)

    while to_check:
        stats.iterations += 1
        level = {mask: compiled.group_of(mask) for mask in to_check}
        if can_prime:
            checker.instances.prime(list(level.values()))
        new_candidates: set[frozenset[str]] = set()
        new_masks: set[int] = set()
        # The monotonic subset prune only consults candidates of
        # *previous* levels (candidate_masks grows after the loop), so
        # every group's prune status is decidable up front and the
        # whole level goes to the checker in frontier batches: one
        # stacked segment reduction per instance kernel per batch
        # instead of one dispatch per group.  Chunking bounds how much
        # work one timeout check admits.
        pending = list(level.items())
        for chunk_start in range(0, len(pending), _LEVEL_CHUNK):
            if timeout is not None and time.perf_counter() - started > timeout:
                stats.timed_out = True
                stats.seconds = time.perf_counter() - started
                return CandidateResult(candidates | new_candidates, stats)
            chunk = pending[chunk_start : chunk_start + _LEVEL_CHUNK]
            entries = []
            for mask, group in chunk:
                pruned = mode is CheckingMode.MONOTONIC and _has_mask_subset(
                    mask, candidate_masks
                )
                if pruned:
                    stats.subset_prunes += 1
                else:
                    stats.groups_checked += 1
                entries.append((group, pruned))
            verdicts = checker.check_level(entries)
            for (mask, group), verdict in zip(chunk, verdicts):
                if verdict:
                    new_candidates.add(group)
                    new_masks.add(mask)
        candidates |= new_candidates
        candidate_masks |= new_masks

        expansion_base = new_masks if mode is CheckingMode.ANTI_MONOTONIC else level
        expanded: set[int] = set()
        for mask in expansion_base:
            for bit in all_bits:
                if not mask & bit:
                    expanded.add(mask | bit)
        stats.groups_expanded += len(expanded)
        to_check = [
            mask for mask in expanded if compiled.cooccurring_traces(mask)
        ]

    stats.seconds = time.perf_counter() - started
    return CandidateResult(candidates, stats)
