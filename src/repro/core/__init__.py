"""Core GECCO algorithms: instances, distance, candidates, selection, abstraction."""

from repro.core.abstraction import abstract_log, abstract_trace
from repro.core.candidates import CandidateResult, CandidateStats, exhaustive_candidates
from repro.core.checker import GroupChecker
from repro.core.dfg_candidates import BeamStats, default_beam_width, dfg_candidates
from repro.core.distance import DistanceFunction
from repro.core.encoding import (
    HAVE_NUMPY,
    CompiledDfgOps,
    CompiledDistanceFunction,
    CompiledInstanceIndex,
    CompiledLog,
)
from repro.core.exclusive import ExclusiveStats, merge_exclusive_candidates
from repro.core.gecco import (
    AbstractionResult,
    Gecco,
    GeccoConfig,
    PipelineArtifacts,
    StepTimings,
    prepare_artifacts,
    resolve_engine,
)
from repro.core.grouping import Grouping, singleton_grouping
from repro.core.grouping_constraints import (
    GroupingConstraintRule,
    MaxGroupSizeSpread,
    MaxMeanAggregateOverGrouping,
    MaxViolatingGroups,
)
from repro.core.lazy_selection import LazySelectionResult, select_with_grouping_rules
from repro.core.instances import InstanceIndex, instances_in_log, instances_in_trace
from repro.core.selection import SelectionResult, select_optimal_grouping

__all__ = [
    "abstract_log",
    "abstract_trace",
    "CandidateResult",
    "CandidateStats",
    "exhaustive_candidates",
    "GroupChecker",
    "BeamStats",
    "default_beam_width",
    "dfg_candidates",
    "DistanceFunction",
    "HAVE_NUMPY",
    "CompiledDfgOps",
    "CompiledDistanceFunction",
    "CompiledInstanceIndex",
    "CompiledLog",
    "ExclusiveStats",
    "merge_exclusive_candidates",
    "AbstractionResult",
    "Gecco",
    "GeccoConfig",
    "PipelineArtifacts",
    "StepTimings",
    "prepare_artifacts",
    "resolve_engine",
    "Grouping",
    "singleton_grouping",
    "GroupingConstraintRule",
    "MaxGroupSizeSpread",
    "MaxMeanAggregateOverGrouping",
    "MaxViolatingGroups",
    "LazySelectionResult",
    "select_with_grouping_rules",
    "InstanceIndex",
    "instances_in_log",
    "instances_in_trace",
    "SelectionResult",
    "select_optimal_grouping",
]
