"""Group-instance detection: the paper's ``inst(sigma, g)`` function.

An *instance* of a group ``g`` in a trace is a maximal sub-sequence of
(not necessarily consecutive) events whose classes belong to ``g``.
For traces without recurring behavior the instance is simply the
projection of the trace onto ``g``.  When behavior recurs — e.g. the
running example's ``σ4`` where a rejected request loops back to the
start — the projection must be *split* into multiple instances.  The
paper instantiates this with the repetition-detection technique of
van der Aa et al. [9]; we reproduce its observable behavior with the
**repeat-split** policy: a new instance starts whenever the next
event's class already occurred in the current instance.  This yields
exactly the paper's worked example::

    inst(σ4, {rcp, ckc, ckt}) = {⟨rcp, ckc⟩, ⟨rcp, ckt⟩}

Two alternative policies are provided for ablations and for cardinality
constraints that need multiple events per class within one instance:

* ``"none"`` — the projection is a single instance;
* ``"gap"``  — a new instance starts when more than ``gap_limit``
  foreign events separate two group events (temporal-locality split).

The module also offers an :class:`InstanceIndex` cache so that the
candidate-generation algorithms, the distance function, and constraint
checking share one computation per group.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eventlog.events import Event, EventLog, Trace
from repro.exceptions import EventLogError

#: Supported instance-splitting policies.
POLICIES = ("repeat", "none", "gap")


def _positions_of_group(trace: Trace, group: frozenset[str]) -> list[int]:
    """Indices of ``trace`` events whose class belongs to ``group``."""
    return [
        index
        for index, event in enumerate(trace)
        if event.event_class in group
    ]


def instances_in_trace(
    trace: Trace,
    group: frozenset[str],
    policy: str = "repeat",
    gap_limit: int = 3,
) -> list[list[int]]:
    """Return the instances of ``group`` in ``trace`` as lists of positions.

    Positions (not events) are returned because the distance function
    needs the span of an instance within the original trace to count
    interruptions.  Use :func:`instance_events` to materialize events.
    """
    if policy not in POLICIES:
        raise EventLogError(f"unknown instance policy {policy!r}; use one of {POLICIES}")
    positions = _positions_of_group(trace, group)
    if not positions:
        return []
    if policy == "none":
        return [positions]
    if policy == "gap":
        instances: list[list[int]] = [[positions[0]]]
        for previous, current in zip(positions, positions[1:]):
            if current - previous - 1 > gap_limit:
                instances.append([current])
            else:
                instances[-1].append(current)
        return instances
    # policy == "repeat": split when a class re-occurs within the
    # current instance (recurring behavior detected).
    instances = []
    current_instance: list[int] = []
    seen: set[str] = set()
    for position in positions:
        cls = trace[position].event_class
        if cls in seen:
            instances.append(current_instance)
            current_instance = []
            seen = set()
        current_instance.append(position)
        seen.add(cls)
    if current_instance:
        instances.append(current_instance)
    return instances


def instance_events(trace: Trace, positions: Sequence[int]) -> list[Event]:
    """Materialize an instance's events from its positions."""
    return [trace[position] for position in positions]


def instances_in_log(
    log: EventLog,
    group: frozenset[str],
    policy: str = "repeat",
    gap_limit: int = 3,
) -> list[tuple[int, list[int]]]:
    """All instances of ``group`` in ``log`` as ``(trace index, positions)``.

    Traces containing none of the group's classes contribute nothing
    (constraints are vacuously satisfied there, paper §IV-A).  The
    per-class trace index of the log keeps this linear in the traces
    that actually matter.
    """
    relevant: set[int] = set()
    membership = log.traces_by_class
    for cls in group:
        relevant.update(membership.get(cls, frozenset()))
    result: list[tuple[int, list[int]]] = []
    for trace_index in sorted(relevant):
        for positions in instances_in_trace(
            log[trace_index], group, policy=policy, gap_limit=gap_limit
        ):
            result.append((trace_index, positions))
    return result


class InstanceIndex:
    """Cached instance computation for one log and splitting policy.

    Both candidate generation (constraint checking) and the distance
    function request instances of the same groups over and over; this
    index computes each group's instances once.  It also exposes the
    event-materialized form that instance-based constraints consume.
    """

    def __init__(self, log: EventLog, policy: str = "repeat", gap_limit: int = 3):
        if policy not in POLICIES:
            raise EventLogError(f"unknown instance policy {policy!r}; use one of {POLICIES}")
        self.log = log
        self.policy = policy
        self.gap_limit = gap_limit
        self._positions_cache: dict[frozenset[str], list[tuple[int, list[int]]]] = {}
        self._events_cache: dict[frozenset[str], list[list[Event]]] = {}

    def positions(self, group: frozenset[str]) -> list[tuple[int, list[int]]]:
        """Instances of ``group`` as ``(trace index, positions)`` pairs."""
        group = frozenset(group)
        if group not in self._positions_cache:
            self._positions_cache[group] = instances_in_log(
                self.log, group, policy=self.policy, gap_limit=self.gap_limit
            )
        return self._positions_cache[group]

    def events(self, group: frozenset[str]) -> list[list[Event]]:
        """Instances of ``group`` materialized as event lists."""
        group = frozenset(group)
        if group not in self._events_cache:
            self._events_cache[group] = [
                instance_events(self.log[trace_index], positions)
                for trace_index, positions in self.positions(group)
            ]
        return self._events_cache[group]

    def count(self, group: frozenset[str]) -> int:
        """Number of instances ``|inst(L, g)|`` of the group in the log."""
        return len(self.positions(group))

    def cache_size(self) -> int:
        """Number of groups with cached instances (introspection/tests)."""
        return len(self._positions_cache)
