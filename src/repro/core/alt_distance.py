"""Alternative distance functions for the log-abstraction objective.

The paper notes (§IV-B) that GECCO is *"largely independent of a
specific distance function"*.  This module makes that concrete: every
measure below implements the same ``group_distance`` protocol as
:class:`repro.core.distance.DistanceFunction` and can be passed to
Step 2 unchanged.  All of them preserve the two structural properties
Step 2's branch-and-bound backend relies on: non-negativity and a
strictly positive score for singleton groups (so that merging remains
attractive and costs admit per-class lower bounds).

* :class:`FrequencyWeightedDistance` — Eq. 1 with instances weighted by
  how much behavior they represent (an interrupted instance in a
  frequent variant hurts more than one in a rare variant);
* :class:`JaccardDistance` — a pure co-occurrence measure: one minus
  the mean pairwise Jaccard similarity of the classes' trace sets,
  plus the ``1/|g|`` unary penalty (ignores ordering entirely);
* :class:`EntropyDistance` — penalizes groups whose instances realize
  many distinct orderings (high behavioral entropy means the group
  hides rather than abstracts structure).

``benchmarks/test_bench_alt_distance.py`` compares the groupings these
objectives select.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from collections.abc import Iterable

from repro.core.distance import interrupts, missing
from repro.core.instances import InstanceIndex
from repro.eventlog.events import EventLog
from repro.exceptions import GroupingError


class _CachedDistance:
    """Shared memoization and instance plumbing for the alternatives."""

    def __init__(self, log: EventLog, instance_index: InstanceIndex | None = None):
        self.log = log
        self.instances = instance_index or InstanceIndex(log)
        self._cache: dict[frozenset[str], float] = {}

    def group_distance(self, group: Iterable[str]) -> float:
        group = frozenset(group)
        if not group:
            raise GroupingError("cannot compute distance of an empty group")
        if group not in self._cache:
            self._cache[group] = self._compute(group)
        return self._cache[group]

    def grouping_distance(self, grouping: Iterable[Iterable[str]]) -> float:
        return sum(self.group_distance(group) for group in grouping)

    def _compute(self, group: frozenset[str]) -> float:  # pragma: no cover
        raise NotImplementedError


class FrequencyWeightedDistance(_CachedDistance):
    """Eq. 1 with variant-frequency weighting of instances."""

    def _compute(self, group: frozenset[str]) -> float:
        instances = self.instances.positions(group)
        size = len(group)
        if not instances:
            return 1.0 / size
        variant_weight = Counter(
            self.log[trace_index].variant() for trace_index, _ in instances
        )
        total_weight = 0.0
        total = 0.0
        for trace_index, positions in instances:
            trace = self.log[trace_index]
            weight = variant_weight[trace.variant()]
            classes = [trace[p].event_class for p in positions]
            total += weight * (
                interrupts(positions) / len(positions)
                + missing(classes, group) / size
            )
            total_weight += weight
        return total / total_weight + 1.0 / size


class JaccardDistance(_CachedDistance):
    """One minus mean pairwise Jaccard of trace sets, plus 1/|g|."""

    def _compute(self, group: frozenset[str]) -> float:
        membership = self.log.traces_by_class
        members = sorted(group)
        if len(members) == 1:
            return 1.0
        similarities = []
        for cls_a, cls_b in itertools.combinations(members, 2):
            traces_a = membership.get(cls_a, frozenset())
            traces_b = membership.get(cls_b, frozenset())
            union = traces_a | traces_b
            if not union:
                similarities.append(0.0)
            else:
                similarities.append(len(traces_a & traces_b) / len(union))
        mean_similarity = sum(similarities) / len(similarities)
        return (1.0 - mean_similarity) + 1.0 / len(members)


class EntropyDistance(_CachedDistance):
    """Normalized ordering entropy of the group's instances, plus 1/|g|."""

    def _compute(self, group: frozenset[str]) -> float:
        instances = self.instances.positions(group)
        size = len(group)
        if not instances:
            return 1.0 / size
        orderings = Counter()
        for trace_index, positions in instances:
            trace = self.log[trace_index]
            orderings[tuple(trace[p].event_class for p in positions)] += 1
        total = sum(orderings.values())
        entropy = -sum(
            (count / total) * math.log2(count / total)
            for count in orderings.values()
        )
        normalizer = math.log2(total) if total > 1 else 1.0
        normalized = entropy / normalizer if normalizer > 0 else 0.0
        return normalized + 1.0 / size


#: Name -> class, for CLIs and benches.
ALTERNATIVE_DISTANCES = {
    "frequency": FrequencyWeightedDistance,
    "jaccard": JaccardDistance,
    "entropy": EntropyDistance,
}
