"""DFG-based candidate computation with beam search (paper Algorithm 2).

Instead of enumerating arbitrary class subsets, this instantiation of
Step 1 walks the log's directly-follows graph: candidate groups are the
node sets of DFG paths, grown by prepending a predecessor of the first
node or appending a successor of the last node.  Because behaviorally
cohesive classes sit close together in the DFG, this focuses the search
on *cohesive candidates* and skips far-apart combinations such as
``{rcp, arv}`` in the running example.

A beam of width ``k`` bounds the frontier: each iteration keeps only
the ``k`` candidate paths whose node sets have the lowest distance
(Eq. 1) and discards the rest.  ``k = None`` gives the paper's DFG∞
configuration (no beam pruning); the paper's adaptive configuration
DFGk uses ``k = 5 * |C_L|``.

The same monotonicity pruning as in Algorithm 1 applies.  Note one
deliberate deviation from the paper's *pseudocode* (not its prose): in
the literal pseudocode a monotonic-mode path failing ``holds`` is never
expanded, while the accompanying text — and Algorithm 1 — state that in
monotonic and non-monotonic modes violating groups must still be
expanded, since their supergroups may yet satisfy the constraints.  We
follow the text.

Two implementations share this module: the pure-Python reference and an
incremental hot path over :class:`~repro.core.encoding.CompiledLog`
(pass ``compiled=``).  The compiled variant batches each frontier's
instance extraction into one vectorized sweep, reuses a parent path's
relevant-trace bitset via a single posting-list intersection when a
path grows by one class, and checks the monotonic subset prune on
integer bitmasks.  Both return identical candidate sets.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.constraints.base import CheckingMode
from repro.constraints.sets import ConstraintSet
from repro.core.candidates import (
    CandidateResult,
    CandidateStats,
    _has_candidate_subset,
    _has_mask_subset,
)
from repro.core.checker import GroupChecker
from repro.core.distance import DistanceFunction
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog


@dataclass
class BeamStats(CandidateStats):
    """Algorithm 2 statistics: adds beam-pruning counters."""

    paths_considered: int = 0
    paths_beam_pruned: int = 0


def default_beam_width(log: EventLog, factor: int = 5) -> int:
    """The paper's adaptive beam width for DFGk: ``k = 5 * |C_L|``."""
    return factor * len(log.classes)


def dfg_candidates(
    log: EventLog,
    constraints: ConstraintSet,
    beam_width: int | None = None,
    checker: GroupChecker | None = None,
    distance: DistanceFunction | None = None,
    dfg: DirectlyFollowsGraph | None = None,
    timeout: float | None = None,
    compiled=None,
) -> CandidateResult:
    """Compute cohesive candidate groups by DFG traversal (Alg. 2).

    Parameters
    ----------
    beam_width:
        ``k``; ``None`` disables beam pruning (DFG∞ configuration).
    checker / distance / dfg:
        Optional pre-built collaborators so the caller can share caches.
    timeout:
        Wall-clock budget in seconds; on expiry the candidates found so
        far are returned with ``stats.timed_out = True``.
    compiled:
        Optional :class:`~repro.core.encoding.CompiledLog` built over
        ``log``; when given, the search runs on the integer-encoded hot
        path (same candidates, typically several times faster).
    """
    if compiled is not None:
        return _dfg_candidates_compiled(
            log, constraints, beam_width, checker, distance, dfg, timeout, compiled
        )
    started = time.perf_counter()
    checker = checker or GroupChecker(log, constraints)
    distance = distance or DistanceFunction(log, checker.instances)
    graph = dfg or compute_dfg(log)
    mode = constraints.checking_mode
    stats = BeamStats()

    candidates: set[frozenset[str]] = set()
    to_check: set[tuple[str, ...]] = {(node,) for node in graph.nodes}

    while to_check:
        stats.iterations += 1
        # Lowest-distance paths first; path tuple breaks ties deterministically.
        path_key = lambda path: (distance.group_distance(frozenset(path)), path)  # noqa: E731
        if beam_width is None:
            sorted_paths = sorted(to_check, key=path_key)
        else:
            # ``nsmallest`` matches ``sorted(...)[:k]`` exactly but skips
            # ordering the discarded tail of the frontier.
            stats.paths_beam_pruned += max(0, len(to_check) - beam_width)
            sorted_paths = heapq.nsmallest(beam_width, to_check, key=path_key)

        to_expand: list[tuple[str, ...]] = []
        for path in sorted_paths:
            if timeout is not None and time.perf_counter() - started > timeout:
                stats.timed_out = True
                stats.seconds = time.perf_counter() - started
                return CandidateResult(candidates, stats)
            stats.paths_considered += 1
            group = frozenset(path)
            if mode is CheckingMode.MONOTONIC and _has_candidate_subset(
                group, candidates
            ):
                stats.subset_prunes += 1
                if checker.holds_given_satisfying_subset(group):
                    candidates.add(group)
                to_expand.append(path)
                continue
            stats.groups_checked += 1
            if checker.holds(group):
                candidates.add(group)
                to_expand.append(path)
            elif mode is not CheckingMode.ANTI_MONOTONIC:
                # Violating paths may still lead to satisfying supergroups
                # under monotonic / non-monotonic constraints.
                to_expand.append(path)

        next_frontier: set[tuple[str, ...]] = set()
        for path in to_expand:
            first, last = path[0], path[-1]
            members = frozenset(path)
            for successor in graph.successors(last):
                if successor not in members:
                    next_frontier.add(path + (successor,))
            for predecessor in graph.predecessors(first):
                if predecessor not in members:
                    next_frontier.add((predecessor,) + path)
        stats.groups_expanded += len(next_frontier)
        to_check = {
            path for path in next_frontier if log.occurs(frozenset(path))
        }

    stats.seconds = time.perf_counter() - started
    return CandidateResult(candidates, stats)


def _dfg_candidates_compiled(
    log: EventLog,
    constraints: ConstraintSet,
    beam_width: int | None,
    checker: GroupChecker | None,
    distance: DistanceFunction | None,
    dfg: DirectlyFollowsGraph | None,
    timeout: float | None,
    compiled,
) -> CandidateResult:
    """Algorithm 2 on the integer-encoded engine (same outputs as above).

    Differences are purely mechanical: paths carry their class bitmask,
    ``occurs`` extends the parent's trace bitset by one posting-list
    intersection, the subset prune runs on bitmasks, and each frontier's
    distances are primed with one vectorized instance-extraction sweep.
    """
    from repro.core.encoding import (
        CompiledDistanceFunction,
        CompiledInstanceIndex,
    )

    started = time.perf_counter()
    if checker is None:
        checker = GroupChecker(
            log, constraints, CompiledInstanceIndex(log, compiled)
        )
    if distance is None:
        if isinstance(checker.instances, CompiledInstanceIndex):
            distance = CompiledDistanceFunction(log, checker.instances)
        else:
            distance = DistanceFunction(log, checker.instances)
    graph = dfg or compute_dfg(log)
    mode = constraints.checking_mode
    stats = BeamStats()

    class_bit = {cls: compiled.class_bit(cls) for cls in graph.nodes}
    # Pair each neighbor with its class bit once, up front.
    successors_of = {
        node: [(cls, class_bit[cls]) for cls in graph.successors(node)]
        for node in graph.nodes
    }
    predecessors_of = {
        node: [(cls, class_bit[cls]) for cls in graph.predecessors(node)]
        for node in graph.nodes
    }
    candidates: set[frozenset[str]] = set()
    candidate_masks: set[int] = set()
    group_by_mask: dict[int, frozenset[str]] = {}
    dist_by_mask: dict[int, float] = {}
    can_prime = isinstance(distance, CompiledDistanceFunction)

    path_mask: dict[tuple[str, ...], int] = {}
    to_check: set[tuple[str, ...]] = set()
    for node in graph.nodes:
        path = (node,)
        to_check.add(path)
        path_mask[path] = class_bit[node]

    def group_for(mask: int, path: tuple[str, ...]) -> frozenset[str]:
        group = group_by_mask.get(mask)
        if group is None:
            group = frozenset(path)
            group_by_mask[mask] = group
        return group

    def path_key(path: tuple[str, ...]):
        mask = path_mask[path]
        value = dist_by_mask.get(mask)
        if value is None:
            value = distance.group_distance(group_for(mask, path))
            dist_by_mask[mask] = value
        return (value, path)

    while to_check:
        stats.iterations += 1
        if can_prime:
            # One vectorized extraction sweep covers the whole frontier.
            fresh = {
                mask: path
                for path in to_check
                if (mask := path_mask[path]) not in dist_by_mask
            }
            distance.prime(
                [group_for(mask, path) for mask, path in fresh.items()]
            )
        if beam_width is None:
            sorted_paths = sorted(to_check, key=path_key)
        else:
            stats.paths_beam_pruned += max(0, len(to_check) - beam_width)
            sorted_paths = heapq.nsmallest(beam_width, to_check, key=path_key)

        to_expand: list[tuple[str, ...]] = []
        for path in sorted_paths:
            if timeout is not None and time.perf_counter() - started > timeout:
                stats.timed_out = True
                stats.seconds = time.perf_counter() - started
                return CandidateResult(candidates, stats)
            stats.paths_considered += 1
            mask = path_mask[path]
            group = group_for(mask, path)
            if mode is CheckingMode.MONOTONIC and _has_mask_subset(
                mask, candidate_masks
            ):
                stats.subset_prunes += 1
                if checker.holds_given_satisfying_subset(group):
                    candidates.add(group)
                    candidate_masks.add(mask)
                to_expand.append(path)
                continue
            stats.groups_checked += 1
            if checker.holds(group):
                candidates.add(group)
                candidate_masks.add(mask)
                to_expand.append(path)
            elif mode is not CheckingMode.ANTI_MONOTONIC:
                to_expand.append(path)

        next_frontier: set[tuple[str, ...]] = set()
        for path in to_expand:
            first, last = path[0], path[-1]
            mask = path_mask[path]
            for successor, bit in successors_of[last]:
                if not mask & bit:
                    child = path + (successor,)
                    if child not in next_frontier:
                        next_frontier.add(child)
                        path_mask[child] = mask | bit
                        compiled.extend_cooccurring(mask, bit)
            for predecessor, bit in predecessors_of[first]:
                if not mask & bit:
                    child = (predecessor,) + path
                    if child not in next_frontier:
                        next_frontier.add(child)
                        path_mask[child] = mask | bit
                        compiled.extend_cooccurring(mask, bit)
        stats.groups_expanded += len(next_frontier)
        to_check = {
            path
            for path in next_frontier
            if compiled.occurs_mask(path_mask[path])
        }

    stats.seconds = time.perf_counter() - started
    return CandidateResult(candidates, stats)
