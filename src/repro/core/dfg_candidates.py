"""DFG-based candidate computation with beam search (paper Algorithm 2).

Instead of enumerating arbitrary class subsets, this instantiation of
Step 1 walks the log's directly-follows graph: candidate groups are the
node sets of DFG paths, grown by prepending a predecessor of the first
node or appending a successor of the last node.  Because behaviorally
cohesive classes sit close together in the DFG, this focuses the search
on *cohesive candidates* and skips far-apart combinations such as
``{rcp, arv}`` in the running example.

A beam of width ``k`` bounds the frontier: each iteration keeps only
the ``k`` candidate paths whose node sets have the lowest distance
(Eq. 1) and discards the rest.  ``k = None`` gives the paper's DFG∞
configuration (no beam pruning); the paper's adaptive configuration
DFGk uses ``k = 5 * |C_L|``.

The same monotonicity pruning as in Algorithm 1 applies.  Note one
deliberate deviation from the paper's *pseudocode* (not its prose): in
the literal pseudocode a monotonic-mode path failing ``holds`` is never
expanded, while the accompanying text — and Algorithm 1 — state that in
monotonic and non-monotonic modes violating groups must still be
expanded, since their supergroups may yet satisfy the constraints.  We
follow the text.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.constraints.base import CheckingMode
from repro.constraints.sets import ConstraintSet
from repro.core.candidates import CandidateResult, CandidateStats, _has_candidate_subset
from repro.core.checker import GroupChecker
from repro.core.distance import DistanceFunction
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog


@dataclass
class BeamStats(CandidateStats):
    """Algorithm 2 statistics: adds beam-pruning counters."""

    paths_considered: int = 0
    paths_beam_pruned: int = 0


def default_beam_width(log: EventLog, factor: int = 5) -> int:
    """The paper's adaptive beam width for DFGk: ``k = 5 * |C_L|``."""
    return factor * len(log.classes)


def dfg_candidates(
    log: EventLog,
    constraints: ConstraintSet,
    beam_width: int | None = None,
    checker: GroupChecker | None = None,
    distance: DistanceFunction | None = None,
    dfg: DirectlyFollowsGraph | None = None,
    timeout: float | None = None,
) -> CandidateResult:
    """Compute cohesive candidate groups by DFG traversal (Alg. 2).

    Parameters
    ----------
    beam_width:
        ``k``; ``None`` disables beam pruning (DFG∞ configuration).
    checker / distance / dfg:
        Optional pre-built collaborators so the caller can share caches.
    timeout:
        Wall-clock budget in seconds; on expiry the candidates found so
        far are returned with ``stats.timed_out = True``.
    """
    started = time.perf_counter()
    checker = checker or GroupChecker(log, constraints)
    distance = distance or DistanceFunction(log, checker.instances)
    graph = dfg or compute_dfg(log)
    mode = constraints.checking_mode
    stats = BeamStats()

    candidates: set[frozenset[str]] = set()
    to_check: set[tuple[str, ...]] = {(node,) for node in graph.nodes}

    while to_check:
        stats.iterations += 1
        # Lowest-distance paths first; path tuple breaks ties deterministically.
        sorted_paths = sorted(
            to_check,
            key=lambda path: (distance.group_distance(frozenset(path)), path),
        )
        if beam_width is not None:
            stats.paths_beam_pruned += max(0, len(sorted_paths) - beam_width)
            sorted_paths = sorted_paths[:beam_width]

        to_expand: list[tuple[str, ...]] = []
        for path in sorted_paths:
            if timeout is not None and time.perf_counter() - started > timeout:
                stats.timed_out = True
                stats.seconds = time.perf_counter() - started
                return CandidateResult(candidates, stats)
            stats.paths_considered += 1
            group = frozenset(path)
            if mode is CheckingMode.MONOTONIC and _has_candidate_subset(
                group, candidates
            ):
                stats.subset_prunes += 1
                if checker.holds_given_satisfying_subset(group):
                    candidates.add(group)
                to_expand.append(path)
                continue
            stats.groups_checked += 1
            if checker.holds(group):
                candidates.add(group)
                to_expand.append(path)
            elif mode is not CheckingMode.ANTI_MONOTONIC:
                # Violating paths may still lead to satisfying supergroups
                # under monotonic / non-monotonic constraints.
                to_expand.append(path)

        next_frontier: set[tuple[str, ...]] = set()
        for path in to_expand:
            first, last = path[0], path[-1]
            members = frozenset(path)
            for successor in graph.successors(last):
                if successor not in members:
                    next_frontier.add(path + (successor,))
            for predecessor in graph.predecessors(first):
                if predecessor not in members:
                    next_frontier.add((predecessor,) + path)
        stats.groups_expanded += len(next_frontier)
        to_check = {
            path for path in next_frontier if log.occurs(frozenset(path))
        }

    stats.seconds = time.perf_counter() - started
    return CandidateResult(candidates, stats)
