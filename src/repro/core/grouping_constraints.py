"""Grouping-level instance constraints (the paper's first future-work item).

The paper's constraints are checked per group; its conclusion proposes
extending GECCO with *"instance-based constraints over the entire
grouping (rather than per group)"*.  This module implements that
extension: a :class:`GroupingConstraintRule` judges a complete
candidate grouping, with access to every group's instances.

Because such constraints couple the selection variables of the Step-2
MIP in non-linear ways, they cannot be encoded directly; instead
:mod:`repro.core.lazy_selection` solves the MIP iteratively, rejecting
each optimal-but-violating grouping with a no-good cut until the best
*conforming* grouping is found (a standard lazy-constraint scheme).

Provided rules:

* :class:`MaxMeanAggregateOverGrouping` — the mean of an aggregate over
  *all* activity instances of the grouping is bounded (e.g. "the
  average activity instance across the abstracted log costs <= 300$");
* :class:`MaxViolatingGroups` — at most ``k`` selected groups may
  contain any instance violating an inner per-instance constraint
  (budgeted violation, impossible to express per group);
* :class:`MaxGroupSizeSpread` — the difference between the largest and
  smallest selected group is bounded (balanced abstraction).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from repro.constraints.aggregates import aggregate
from repro.constraints.base import InstanceConstraint
from repro.eventlog.events import Event
from repro.exceptions import ConstraintError

#: ``group -> list of instances (event lists)`` for a full grouping.
GroupingInstances = Mapping[frozenset, Sequence[Sequence[Event]]]


class GroupingConstraintRule(ABC):
    """A constraint evaluated on a complete grouping."""

    @abstractmethod
    def check(self, grouping_instances: GroupingInstances) -> bool:
        """Return ``True`` iff the grouping satisfies this rule."""

    @abstractmethod
    def describe(self) -> str:
        """A one-line, user-facing description."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self.describe()}>"


class MaxMeanAggregateOverGrouping(GroupingConstraintRule):
    """Mean of ``how(key)`` over all instances of all groups is <= threshold."""

    def __init__(self, key: str, how: str, threshold: float):
        self.key = key
        self.how = how
        self.threshold = float(threshold)

    def check(self, grouping_instances: GroupingInstances) -> bool:
        values = []
        for instances in grouping_instances.values():
            for instance in instances:
                value = aggregate(instance, self.key, self.how)
                if value is not None:
                    values.append(value)
        if not values:
            return True  # vacuous: nothing carries the attribute
        return sum(values) / len(values) <= self.threshold

    def describe(self) -> str:
        return f"mean over all instances of {self.how}(g.{self.key}) <= {self.threshold:g}"


class MaxViolatingGroups(GroupingConstraintRule):
    """At most ``budget`` groups contain an instance violating ``inner``.

    A per-group version would forbid every violation; budgeting the
    violations across the grouping is only expressible at this level.
    """

    def __init__(self, inner: InstanceConstraint, budget: int):
        if not isinstance(inner, InstanceConstraint):
            raise ConstraintError("inner must be an InstanceConstraint")
        if budget < 0:
            raise ConstraintError(f"budget must be >= 0, got {budget}")
        self.inner = inner
        self.budget = budget

    def check(self, grouping_instances: GroupingInstances) -> bool:
        violating = 0
        for group, instances in grouping_instances.items():
            if any(
                not self.inner.check_instance(instance, group)
                for instance in instances
            ):
                violating += 1
                if violating > self.budget:
                    return False
        return True

    def describe(self) -> str:
        return (
            f"at most {self.budget} groups violate: {self.inner.describe()}"
        )


class MaxGroupSizeSpread(GroupingConstraintRule):
    """``max |g| - min |g| <= spread`` over the selected groups."""

    def __init__(self, spread: int):
        if spread < 0:
            raise ConstraintError(f"spread must be >= 0, got {spread}")
        self.spread = spread

    def check(self, grouping_instances: GroupingInstances) -> bool:
        sizes = [len(group) for group in grouping_instances]
        if not sizes:
            return True
        return max(sizes) - min(sizes) <= self.spread

    def describe(self) -> str:
        return f"max |g| - min |g| <= {self.spread}"
