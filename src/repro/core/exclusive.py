"""Exclusive-candidate merging (paper Algorithm 3, Fig. 6).

Generally, classes that never co-occur in a trace are not grouped
(``occurs`` filters them out).  The exception: *proper behavioral
alternatives* — groups with identical DFG pre- and postsets and no
edges between them, like the running example's ``{ckc}`` / ``{ckt}``.
Merging alternatives reduces log complexity without losing behavioral
information, so this post pass extends the candidate set with such
merges, with their pre/post extensions (e.g. ``{rcp, ckc, ckt}`` once
``{rcp, ckc}`` and ``{rcp, ckt}`` are candidates), and — via the work
stack — with iteratively larger unions of three or more alternatives.

Only class-based constraints are (re)checked for merged groups:
instance-based constraints cannot be newly violated when merging
exclusive groups, because no trace contains classes from both sides, so
the merged group's instances are exactly the union of the parts'
instances (paper §V-B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.checker import GroupChecker
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog


@dataclass
class ExclusiveStats:
    """Bookkeeping of one exclusive-merge pass."""

    pairs_checked: int = 0
    merges_added: int = 0
    extensions_added: int = 0
    seconds: float = 0.0


def merge_exclusive_candidates(
    log: EventLog,
    candidates: set[frozenset[str]],
    checker: GroupChecker,
    dfg: DirectlyFollowsGraph | None = None,
    compiled=None,
) -> tuple[set[frozenset[str]], ExclusiveStats]:
    """Extend ``candidates`` with merges of behavioral alternatives (Alg. 3).

    Returns the extended candidate set (a new set; the input is not
    mutated) together with pass statistics.  When ``compiled`` (a
    :class:`~repro.core.encoding.CompiledLog`) is given, the DFG
    neighborhood queries run on precomputed class bitmasks via
    :class:`~repro.core.encoding.CompiledDfgOps` — same API, same
    results, without per-query set algebra over edge tuples.
    """
    started = time.perf_counter()
    dfg = dfg or compute_dfg(log)
    if compiled is not None:
        from repro.core.encoding import CompiledDfgOps

        graph = CompiledDfgOps(compiled, dfg)
    else:
        graph = dfg
    stats = ExclusiveStats()
    result = set(candidates)
    seen_groups: set[frozenset[str]] = set()

    for group in sorted(candidates, key=lambda g: (len(g), sorted(g))):
        if group in seen_groups:
            continue
        equiv_groups: list[frozenset[str]] = graph.equal_pre_post(group, result)
        equiv_groups.append(group)
        pairs_to_check: list[tuple[frozenset[str], frozenset[str]]] = []
        for i, group_i in enumerate(equiv_groups):
            for group_j in equiv_groups[i + 1 :]:
                pairs_to_check.append((group_i, group_j))

        while pairs_to_check:
            group_i, group_j = pairs_to_check.pop()
            merged = group_i | group_j
            stats.pairs_checked += 1
            if merged in result:
                continue
            if not graph.exclusive(group_i, group_j):
                continue
            if not checker.holds_class_only(merged):
                continue
            result.add(merged)
            stats.merges_added += 1

            # Extend the merge with the shared pre/post context when the
            # corresponding extensions of both parts were candidates.
            preset = graph.pre(group_i)
            postset = graph.post(group_i)
            both = preset | postset
            if (both | group_i) in result and (both | group_j) in result:
                if checker.holds_class_only(both | merged):
                    if (both | merged) not in result:
                        result.add(both | merged)
                        stats.extensions_added += 1
            elif (preset | group_i) in result and (preset | group_j) in result:
                if checker.holds_class_only(preset | merged):
                    if (preset | merged) not in result:
                        result.add(preset | merged)
                        stats.extensions_added += 1
            elif (postset | group_i) in result and (postset | group_j) in result:
                if checker.holds_class_only(postset | merged):
                    if (postset | merged) not in result:
                        result.add(postset | merged)
                        stats.extensions_added += 1

            # Iteratively larger unions of three or more alternatives.
            for group_k in equiv_groups:
                if group_k != group_i and group_k != group_j:
                    pairs_to_check.append((merged, group_k))
            equiv_groups.append(merged)

        seen_groups.update(equiv_groups)

    stats.seconds = time.perf_counter() - started
    return result, stats
