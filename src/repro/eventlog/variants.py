"""Control-flow variants of an event log.

A *variant* is the sequence of event classes of a trace; the number of
distinct variants is a standard measure of a log's behavioral
variability (Table III reports it for every log in the paper's
collection).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.eventlog.events import EventLog, Trace


def variant_of(trace: Trace) -> tuple[str, ...]:
    """The variant (class sequence) of a single trace."""
    return trace.variant()


def variant_counts(log: EventLog) -> dict[tuple[str, ...], int]:
    """Map each variant to the number of traces exhibiting it."""
    return dict(Counter(trace.variant() for trace in log))


def variant_count(log: EventLog) -> int:
    """Number of distinct variants in ``log``."""
    return len({trace.variant() for trace in log})


def top_variants(
    log: EventLog, limit: int | None = None
) -> list[tuple[tuple[str, ...], int]]:
    """Variants sorted by descending frequency (ties broken lexically)."""
    ranked = sorted(
        variant_counts(log).items(), key=lambda item: (-item[1], item[0])
    )
    return ranked if limit is None else ranked[:limit]


def traces_of_variant(log: EventLog, variant: Iterable[str]) -> list[int]:
    """Indices of traces whose class sequence equals ``variant``."""
    wanted = tuple(variant)
    return [index for index, trace in enumerate(log) if trace.variant() == wanted]
