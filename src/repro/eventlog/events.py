"""Core event model: :class:`Event`, :class:`Trace`, and :class:`EventLog`.

This module implements the event model of the paper's §III-A.  An event
has an *event class* (its type, written ``e.C`` in the paper) and a set
of data attributes capturing its context (timestamp, executing role,
cost, ...).  A trace is a finite sequence of events belonging to one
case; an event log is a collection of traces.

The model deliberately mirrors the XES standard closely enough that XES
round-tripping (see :mod:`repro.eventlog.xes`) is lossless for the
attribute types GECCO uses: strings, integers, floats, booleans and
timestamps.
"""

from __future__ import annotations

import copy
from collections.abc import Iterable, Iterator, Mapping, Sequence
from datetime import datetime, timezone
from typing import Any

from repro.exceptions import EventLogError

#: Attribute key conventionally holding the event class (XES uses
#: ``concept:name``; we accept both spellings when importing).
CLASS_KEY = "concept:name"

#: Attribute key conventionally holding the event timestamp.
TIMESTAMP_KEY = "time:timestamp"

#: Attribute key conventionally holding the executing role/resource.
ROLE_KEY = "org:role"

#: Upper bound on memoized ``occurs`` trace-set entries per log; the
#: candidate searches probe huge numbers of throwaway frontier groups,
#: so the cache resets rather than growing without bound.
_OCCURS_CACHE_LIMIT = 1 << 17


def _ensure_datetime(value: Any) -> Any:
    """Normalize timestamp-ish values to timezone-aware ``datetime``.

    Numbers are interpreted as POSIX seconds; ISO strings are parsed.
    Anything else is returned unchanged (the caller may store arbitrary
    attribute values under non-timestamp keys).
    """
    if isinstance(value, datetime):
        if value.tzinfo is None:
            return value.replace(tzinfo=timezone.utc)
        return value
    if isinstance(value, (int, float)):
        return datetime.fromtimestamp(float(value), tz=timezone.utc)
    if isinstance(value, str):
        try:
            parsed = datetime.fromisoformat(value)
        except ValueError:
            return value
        if parsed.tzinfo is None:
            parsed = parsed.replace(tzinfo=timezone.utc)
        return parsed
    return value


class Event:
    """A single recorded event.

    Parameters
    ----------
    event_class:
        The type of the event (``e.C`` in the paper), e.g. ``"rcp"``.
    attributes:
        Mapping of data attributes (``e.D``).  The timestamp, if given
        under :data:`TIMESTAMP_KEY`, is normalized to a timezone-aware
        ``datetime``.
    """

    __slots__ = ("event_class", "attributes")

    def __init__(self, event_class: str, attributes: Mapping[str, Any] | None = None):
        if not isinstance(event_class, str) or not event_class:
            raise EventLogError(f"event class must be a non-empty string, got {event_class!r}")
        self.event_class = event_class
        attrs = dict(attributes) if attributes else {}
        if TIMESTAMP_KEY in attrs:
            attrs[TIMESTAMP_KEY] = _ensure_datetime(attrs[TIMESTAMP_KEY])
        self.attributes = attrs

    # -- attribute access -------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` or ``default`` if absent."""
        return self.attributes.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    def __contains__(self, key: str) -> bool:
        return key in self.attributes

    @property
    def timestamp(self):
        """The event timestamp (``None`` if the log carries none)."""
        return self.attributes.get(TIMESTAMP_KEY)

    @property
    def role(self):
        """The executing role (``None`` if the log carries none)."""
        return self.attributes.get(ROLE_KEY)

    # -- misc --------------------------------------------------------------

    def copy(self) -> "Event":
        """Return a deep copy of this event."""
        return Event(self.event_class, copy.deepcopy(self.attributes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_class == other.event_class
            and self.attributes == other.attributes
        )

    def __hash__(self):
        # Events are identity-hashable: the paper's model states no event
        # occurs in more than one trace, so object identity is the most
        # faithful notion of "the same event".
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"Event({self.event_class!r}, {self.attributes!r})"


class Trace(Sequence[Event]):
    """A single execution of a process: an ordered sequence of events."""

    __slots__ = ("events", "attributes")

    def __init__(
        self,
        events: Iterable[Event] = (),
        attributes: Mapping[str, Any] | None = None,
    ):
        self.events: list[Event] = list(events)
        for event in self.events:
            if not isinstance(event, Event):
                raise EventLogError(f"trace elements must be Event, got {type(event).__name__}")
        self.attributes = dict(attributes) if attributes else {}

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.events[index], self.attributes)
        return self.events[index]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # -- derived views -----------------------------------------------------

    @property
    def case_id(self) -> str | None:
        """The case identifier, when recorded (XES ``concept:name``)."""
        return self.attributes.get(CLASS_KEY)

    @property
    def classes(self) -> list[str]:
        """Event classes in occurrence order (the trace *variant*)."""
        return [event.event_class for event in self.events]

    @property
    def class_set(self) -> frozenset[str]:
        """Set of distinct event classes occurring in this trace."""
        return frozenset(event.event_class for event in self.events)

    def variant(self) -> tuple[str, ...]:
        """The control-flow variant of this trace as a hashable tuple."""
        return tuple(self.classes)

    def project(self, classes: Iterable[str]) -> "Trace":
        """Return the sub-trace of events whose class is in ``classes``."""
        wanted = frozenset(classes)
        return Trace(
            [event for event in self.events if event.event_class in wanted],
            self.attributes,
        )

    def append(self, event: Event) -> None:
        """Append ``event`` to the trace."""
        if not isinstance(event, Event):
            raise EventLogError(f"expected Event, got {type(event).__name__}")
        self.events.append(event)

    def copy(self) -> "Trace":
        """Return a deep copy of this trace."""
        return Trace([event.copy() for event in self.events], copy.deepcopy(self.attributes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.events == other.events and self.attributes == other.attributes

    def __repr__(self) -> str:
        preview = ", ".join(self.classes[:8])
        ellipsis = ", ..." if len(self.events) > 8 else ""
        return f"Trace(<{preview}{ellipsis}>, case_id={self.case_id!r})"


class EventLog(Sequence[Trace]):
    """An event log: a collection of traces plus log-level attributes.

    The log also exposes the derived views that GECCO's algorithms need
    repeatedly — the event-class universe ``C_L``, per-class frequencies,
    and per-class trace membership (used for the ``occurs`` co-occurrence
    check of Algorithms 1 and 2).  These views are computed lazily and
    cached; mutating the trace list through :meth:`append` invalidates
    the caches.
    """

    __slots__ = (
        "traces",
        "attributes",
        "_classes",
        "_class_counts",
        "_traces_by_class",
        "_group_trace_sets",
    )

    def __init__(
        self,
        traces: Iterable[Trace] = (),
        attributes: Mapping[str, Any] | None = None,
    ):
        self.traces: list[Trace] = list(traces)
        for trace in self.traces:
            if not isinstance(trace, Trace):
                raise EventLogError(f"log elements must be Trace, got {type(trace).__name__}")
        self.attributes = dict(attributes) if attributes else {}
        self._invalidate()

    def _invalidate(self) -> None:
        self._classes: frozenset[str] | None = None
        self._class_counts: dict[str, int] | None = None
        self._traces_by_class: dict[str, frozenset[int]] | None = None
        self._group_trace_sets: dict[frozenset[str], frozenset[int]] = {}

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.traces)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EventLog(self.traces[index], self.attributes)
        return self.traces[index]

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def append(self, trace: Trace) -> None:
        """Append ``trace`` to the log (invalidates cached views)."""
        if not isinstance(trace, Trace):
            raise EventLogError(f"expected Trace, got {type(trace).__name__}")
        self.traces.append(trace)
        self._invalidate()

    # -- derived views -----------------------------------------------------

    @property
    def classes(self) -> frozenset[str]:
        """The event-class universe ``C_L`` of this log."""
        if self._classes is None:
            self._classes = frozenset(
                event.event_class for trace in self.traces for event in trace
            )
        return self._classes

    @property
    def class_counts(self) -> dict[str, int]:
        """Number of events per event class."""
        if self._class_counts is None:
            counts: dict[str, int] = {}
            for trace in self.traces:
                for event in trace:
                    counts[event.event_class] = counts.get(event.event_class, 0) + 1
            self._class_counts = counts
        return dict(self._class_counts)

    @property
    def traces_by_class(self) -> dict[str, frozenset[int]]:
        """Map each event class to the set of trace indices containing it.

        This powers the ``occurs(g, L)`` co-occurrence check: a group
        ``g`` occurs in the log iff the intersection of its classes'
        trace sets is non-empty.
        """
        if self._traces_by_class is None:
            membership: dict[str, set[int]] = {}
            for index, trace in enumerate(self.traces):
                for cls in trace.class_set:
                    membership.setdefault(cls, set()).add(index)
            self._traces_by_class = {
                cls: frozenset(indices) for cls, indices in membership.items()
            }
        return dict(self._traces_by_class)

    def _group_trace_set(self, group: frozenset[str]) -> frozenset[int]:
        """Traces containing all classes of ``group``, memoized per group.

        The candidate searches filter every frontier group through
        ``occurs``; frontier groups extend an already-filtered parent by
        one class, so when a parent's trace set is cached the child
        costs a single posting-list intersection.  Cold groups fall back
        to intersecting the member posting lists smallest-first.  The
        cache is dropped whenever the trace list mutates and resets when
        it reaches :data:`_OCCURS_CACHE_LIMIT` entries.
        """
        cached = self._group_trace_sets.get(group)
        if cached is not None:
            return cached
        if len(self._group_trace_sets) >= _OCCURS_CACHE_LIMIT:
            self._group_trace_sets.clear()
        if self._traces_by_class is None:
            self.traces_by_class  # build the per-class posting lists
        membership = self._traces_by_class
        result: frozenset[int] | None = None
        if len(group) > 1:
            for cls in group:
                parent = self._group_trace_sets.get(group - {cls})
                if parent is not None:
                    result = parent & membership.get(cls, frozenset())
                    break
        if result is None:
            postings = sorted(
                (membership.get(cls, frozenset()) for cls in group), key=len
            )
            result = postings[0]
            for posting in postings[1:]:
                if not result:
                    break
                result = result & posting
        self._group_trace_sets[group] = result
        return result

    def occurs(self, group: Iterable[str]) -> bool:
        """Return ``True`` iff some trace contains *all* classes of ``group``.

        This is the paper's ``occurs(g, L)`` predicate (Alg. 1 line 13,
        Alg. 2 line 29).
        """
        group = frozenset(group)
        if not group:
            return False
        return bool(self._group_trace_set(group))

    def traces_containing(self, group: Iterable[str]) -> list[int]:
        """Indices of traces containing all classes of ``group``."""
        group = frozenset(group)
        if not group:
            return []
        return sorted(self._group_trace_set(group))

    @property
    def event_count(self) -> int:
        """Total number of events in the log."""
        return sum(len(trace) for trace in self.traces)

    def copy(self) -> "EventLog":
        """Return a deep copy of this log."""
        return EventLog([trace.copy() for trace in self.traces], copy.deepcopy(self.attributes))

    def __repr__(self) -> str:
        return (
            f"EventLog({len(self.traces)} traces, {self.event_count} events, "
            f"{len(self.classes)} classes)"
        )


def log_from_variants(
    variants: Mapping[Sequence[str], int] | Iterable[Sequence[str]],
    attributes_per_class: Mapping[str, Mapping[str, Any]] | None = None,
) -> EventLog:
    """Build a log from control-flow variants.

    Parameters
    ----------
    variants:
        Either a mapping from a class sequence to its trace count, or an
        iterable of class sequences (each yielding one trace).
    attributes_per_class:
        Optional per-class event attributes copied onto every event of
        that class (convenient for class-level attributes such as roles).
    """
    if isinstance(variants, Mapping):
        items = [(tuple(variant), count) for variant, count in variants.items()]
    else:
        items = [(tuple(variant), 1) for variant in variants]
    per_class = attributes_per_class or {}
    traces = []
    case = 0
    for variant, count in items:
        for _ in range(count):
            events = [Event(cls, per_class.get(cls, {})) for cls in variant]
            traces.append(Trace(events, {CLASS_KEY: f"case_{case}"}))
            case += 1
    return EventLog(traces)
