"""Event-log substrate: event model, DFGs, XES/CSV I/O, statistics.

This subpackage replaces the PM4Py dependency of the paper's original
implementation with a self-contained event-log stack.
"""

from repro.eventlog.events import (
    CLASS_KEY,
    ROLE_KEY,
    TIMESTAMP_KEY,
    Event,
    EventLog,
    Trace,
    log_from_variants,
)
from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.statistics import LogStatistics, describe
from repro.eventlog.variants import variant_count, variant_counts, top_variants

__all__ = [
    "CLASS_KEY",
    "ROLE_KEY",
    "TIMESTAMP_KEY",
    "Event",
    "EventLog",
    "Trace",
    "log_from_variants",
    "DirectlyFollowsGraph",
    "compute_dfg",
    "LogStatistics",
    "describe",
    "variant_count",
    "variant_counts",
    "top_variants",
]
