"""Filtering and sampling utilities over event logs.

These are the standard preprocessing helpers an abstraction pipeline
needs: keeping/dropping event classes, trace sampling for scaled-down
experiments, and frequency-based variant filtering.
All functions return new logs; inputs are never mutated.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable

from repro.eventlog.events import Event, EventLog, Trace
from repro.eventlog.variants import variant_counts


def filter_classes(
    log: EventLog, classes: Iterable[str], keep: bool = True
) -> EventLog:
    """Project every trace onto (or away from) the given event classes.

    Parameters
    ----------
    keep:
        When ``True``, retain only events of the given classes; when
        ``False``, drop them instead.  Traces that become empty are
        removed.
    """
    wanted = frozenset(classes)
    traces = []
    for trace in log:
        if keep:
            events = [event for event in trace if event.event_class in wanted]
        else:
            events = [event for event in trace if event.event_class not in wanted]
        if events:
            traces.append(Trace(events, dict(trace.attributes)))
    return EventLog(traces, dict(log.attributes))


def filter_traces(log: EventLog, predicate: Callable[[Trace], bool]) -> EventLog:
    """Keep only traces for which ``predicate`` returns ``True``."""
    return EventLog(
        [trace for trace in log if predicate(trace)], dict(log.attributes)
    )


def filter_events(log: EventLog, predicate: Callable[[Event], bool]) -> EventLog:
    """Keep only events for which ``predicate`` returns ``True``.

    Traces that become empty are dropped.
    """
    traces = []
    for trace in log:
        events = [event for event in trace if predicate(event)]
        if events:
            traces.append(Trace(events, dict(trace.attributes)))
    return EventLog(traces, dict(log.attributes))


def sample_traces(log: EventLog, size: int, seed: int = 0) -> EventLog:
    """Uniformly sample ``size`` traces without replacement (seeded).

    If the log has at most ``size`` traces, it is returned as a copy.
    """
    if size < 0:
        raise ValueError(f"sample size must be non-negative, got {size}")
    if len(log) <= size:
        return EventLog(list(log.traces), dict(log.attributes))
    rng = random.Random(seed)
    indices = sorted(rng.sample(range(len(log)), size))
    return EventLog([log[i] for i in indices], dict(log.attributes))


def keep_top_variants(log: EventLog, count: int) -> EventLog:
    """Keep only the traces of the ``count`` most frequent variants."""
    if count <= 0:
        return EventLog([], dict(log.attributes))
    ranked = sorted(
        variant_counts(log).items(), key=lambda item: (-item[1], item[0])
    )
    kept = {variant for variant, _ in ranked[:count]}
    return filter_traces(log, lambda trace: trace.variant() in kept)


def truncate_traces(log: EventLog, max_length: int) -> EventLog:
    """Truncate every trace to at most ``max_length`` events."""
    if max_length <= 0:
        raise ValueError(f"max_length must be positive, got {max_length}")
    return EventLog(
        [trace[:max_length] for trace in log], dict(log.attributes)
    )
