"""CSV import/export for event logs.

Many public logs (and most quick experiments) live in flat CSV files
with one row per event.  This module converts between such files and
:class:`~repro.eventlog.events.EventLog`, grouping rows into traces by a
case-id column and ordering events by a timestamp column when present.
"""

from __future__ import annotations

import csv
import io
import os
from datetime import datetime
from typing import Any, IO

from repro.eventlog.events import (
    CLASS_KEY,
    TIMESTAMP_KEY,
    Event,
    EventLog,
    Trace,
    _ensure_datetime,
)
from repro.exceptions import EventLogError

#: Default column names, matching the common pm4py CSV conventions.
DEFAULT_CASE_COLUMN = "case:concept:name"
DEFAULT_CLASS_COLUMN = CLASS_KEY
DEFAULT_TIMESTAMP_COLUMN = TIMESTAMP_KEY


def _coerce(raw: str) -> Any:
    """Parse a CSV cell into int, float, bool, datetime or string."""
    text = raw.strip()
    if text == "":
        return None
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    parsed = _ensure_datetime(text)
    return parsed


def read_csv(
    source: str | os.PathLike | IO,
    case_column: str = DEFAULT_CASE_COLUMN,
    class_column: str = DEFAULT_CLASS_COLUMN,
    timestamp_column: str = DEFAULT_TIMESTAMP_COLUMN,
    sort_by_timestamp: bool = True,
) -> EventLog:
    """Read a one-row-per-event CSV file into an :class:`EventLog`.

    Parameters
    ----------
    source:
        Path or readable text file object.
    case_column / class_column / timestamp_column:
        Column names for the case identifier, event class and timestamp.
        The timestamp column is optional in the data; all remaining
        columns become event attributes.
    sort_by_timestamp:
        When ``True`` (default) and the timestamp column exists, events
        within a case are sorted by timestamp (stable: file order breaks
        ties).
    """
    if hasattr(source, "read"):
        handle = source
        close = False
    else:
        handle = open(source, newline="", encoding="utf-8")
        close = True
    try:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise EventLogError("CSV source has no header row")
        if case_column not in reader.fieldnames:
            raise EventLogError(f"CSV is missing case column {case_column!r}")
        if class_column not in reader.fieldnames:
            raise EventLogError(f"CSV is missing class column {class_column!r}")
        cases: dict[str, list[Event]] = {}
        case_order: list[str] = []
        for row in reader:
            case_id = row.pop(case_column)
            event_class = row.pop(class_column)
            if event_class is None or event_class == "":
                raise EventLogError(f"row in case {case_id!r} has empty event class")
            attributes: dict[str, Any] = {}
            for key, raw in row.items():
                if raw is None:
                    continue
                value = _coerce(raw)
                if value is not None:
                    attributes[key] = value
            if timestamp_column in attributes and timestamp_column != TIMESTAMP_KEY:
                attributes[TIMESTAMP_KEY] = attributes.pop(timestamp_column)
            if case_id not in cases:
                cases[case_id] = []
                case_order.append(case_id)
            cases[case_id].append(Event(event_class, attributes))
    finally:
        if close:
            handle.close()

    traces = []
    for case_id in case_order:
        events = cases[case_id]
        if sort_by_timestamp and all(event.timestamp is not None for event in events):
            events = sorted(
                enumerate(events), key=lambda pair: (pair[1].timestamp, pair[0])
            )
            events = [event for _, event in events]
        traces.append(Trace(events, {CLASS_KEY: case_id}))
    return EventLog(traces)


def write_csv(
    log: EventLog,
    target: str | os.PathLike | IO,
    case_column: str = DEFAULT_CASE_COLUMN,
    class_column: str = DEFAULT_CLASS_COLUMN,
) -> None:
    """Write ``log`` as a one-row-per-event CSV file.

    The column set is the union of all event attribute keys, emitted in
    sorted order after the case and class columns.
    """
    attribute_keys: set[str] = set()
    for trace in log:
        for event in trace:
            attribute_keys.update(event.attributes)
    columns = [case_column, class_column] + sorted(attribute_keys)

    if hasattr(target, "write"):
        handle = target
        close = False
    else:
        handle = open(target, "w", newline="", encoding="utf-8")
        close = True
    try:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for index, trace in enumerate(log):
            case_id = trace.case_id or f"case_{index}"
            for event in trace:
                row = {case_column: case_id, class_column: event.event_class}
                for key, value in event.attributes.items():
                    if isinstance(value, datetime):
                        row[key] = value.isoformat()
                    else:
                        row[key] = value
                writer.writerow(row)
    finally:
        if close:
            handle.close()


def csv_roundtrip(log: EventLog) -> EventLog:
    """Serialize ``log`` to CSV text and parse it back (testing helper)."""
    buffer = io.StringIO()
    write_csv(log, buffer)
    buffer.seek(0)
    return read_csv(buffer)
