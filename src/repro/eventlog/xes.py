"""XES import and export built on the standard library's ``xml.etree``.

The paper's implementation relies on PM4Py for event-log handling; since
this reproduction implements its own substrate, this module provides a
self-contained reader/writer for the XES interchange format (IEEE
1849-2016) covering the attribute kinds GECCO needs: ``string``,
``int``, ``float``, ``boolean`` and ``date``.  Nested/list attributes
are flattened with a ``parent:child`` key convention on import and are
not re-nested on export, which is lossless for every log this package
produces.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from datetime import datetime, timezone
from typing import Any, IO

from repro.eventlog.events import CLASS_KEY, Event, EventLog, Trace
from repro.exceptions import XESParseError

_XES_TAGS = {"string", "int", "float", "boolean", "date", "id"}


def _strip_namespace(tag: str) -> str:
    """Drop an ``{namespace}`` prefix from an element tag."""
    return tag.rsplit("}", 1)[-1]


def _parse_value(tag: str, raw: str) -> Any:
    if tag == "string" or tag == "id":
        return raw
    if tag == "int":
        try:
            return int(raw)
        except ValueError as exc:
            raise XESParseError(f"invalid int attribute value {raw!r}") from exc
    if tag == "float":
        try:
            return float(raw)
        except ValueError as exc:
            raise XESParseError(f"invalid float attribute value {raw!r}") from exc
    if tag == "boolean":
        return raw.strip().lower() == "true"
    if tag == "date":
        text = raw.strip()
        if text.endswith("Z"):
            text = text[:-1] + "+00:00"
        try:
            stamp = datetime.fromisoformat(text)
        except ValueError as exc:
            raise XESParseError(f"invalid date attribute value {raw!r}") from exc
        if stamp.tzinfo is None:
            stamp = stamp.replace(tzinfo=timezone.utc)
        return stamp
    raise XESParseError(f"unsupported XES attribute tag {tag!r}")


def _collect_attributes(element: ET.Element, prefix: str = "") -> dict[str, Any]:
    """Collect (and flatten) the XES attributes below ``element``."""
    attributes: dict[str, Any] = {}
    for child in element:
        tag = _strip_namespace(child.tag)
        if tag not in _XES_TAGS:
            continue
        key = child.get("key")
        if key is None:
            raise XESParseError(f"XES attribute element <{tag}> without key")
        value = child.get("value")
        if value is None:
            raise XESParseError(f"XES attribute {key!r} without value")
        full_key = f"{prefix}{key}"
        attributes[full_key] = _parse_value(tag, value)
        if len(child):  # nested attributes -> flatten
            attributes.update(_collect_attributes(child, prefix=f"{full_key}:"))
    return attributes


def loads(text: str) -> EventLog:
    """Parse an XES document from a string into an :class:`EventLog`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XESParseError(f"malformed XML: {exc}") from exc
    return _log_from_root(root)


def load(source: str | os.PathLike | IO) -> EventLog:
    """Parse an XES document from a path or file object."""
    try:
        tree = ET.parse(source)
    except ET.ParseError as exc:
        raise XESParseError(f"malformed XML: {exc}") from exc
    except OSError as exc:
        raise XESParseError(f"cannot read XES source: {exc}") from exc
    return _log_from_root(tree.getroot())


def _log_from_root(root: ET.Element) -> EventLog:
    if _strip_namespace(root.tag) != "log":
        raise XESParseError(f"expected <log> root element, got <{root.tag}>")
    log_attributes = _collect_attributes(root)
    traces = []
    for trace_element in root:
        if _strip_namespace(trace_element.tag) != "trace":
            continue
        trace_attributes = _collect_attributes(trace_element)
        events = []
        for event_element in trace_element:
            if _strip_namespace(event_element.tag) != "event":
                continue
            event_attributes = _collect_attributes(event_element)
            event_class = event_attributes.pop(CLASS_KEY, None)
            if event_class is None:
                raise XESParseError("event without concept:name attribute")
            events.append(Event(str(event_class), event_attributes))
        traces.append(Trace(events, trace_attributes))
    return EventLog(traces, log_attributes)


def _attribute_element(key: str, value: Any) -> ET.Element:
    if isinstance(value, bool):
        tag, text = "boolean", "true" if value else "false"
    elif isinstance(value, int):
        tag, text = "int", str(value)
    elif isinstance(value, float):
        tag, text = "float", repr(value)
    elif isinstance(value, datetime):
        stamp = value if value.tzinfo else value.replace(tzinfo=timezone.utc)
        tag, text = "date", stamp.isoformat()
    else:
        tag, text = "string", str(value)
    return ET.Element(tag, {"key": key, "value": text})


def to_element(log: EventLog) -> ET.Element:
    """Serialize ``log`` into an XES ``<log>`` element tree."""
    root = ET.Element("log", {"xes.version": "1.0"})
    for key, value in sorted(log.attributes.items()):
        root.append(_attribute_element(key, value))
    for trace in log:
        trace_element = ET.SubElement(root, "trace")
        for key, value in sorted(trace.attributes.items()):
            trace_element.append(_attribute_element(key, value))
        for event in trace:
            event_element = ET.SubElement(trace_element, "event")
            event_element.append(_attribute_element(CLASS_KEY, event.event_class))
            for key, value in sorted(event.attributes.items()):
                event_element.append(_attribute_element(key, value))
    return root


def dumps(log: EventLog) -> str:
    """Serialize ``log`` to an XES document string."""
    element = to_element(log)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode", xml_declaration=True)


def dump(log: EventLog, target: str | os.PathLike | IO) -> None:
    """Serialize ``log`` to an XES file (path or binary file object)."""
    text = dumps(log)
    if hasattr(target, "write"):
        data = text
        try:
            target.write(data)
        except TypeError:
            target.write(data.encode("utf-8"))
        return
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(text)
