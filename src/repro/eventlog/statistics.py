"""Log-level descriptive statistics (the columns of the paper's Table III).

For each log the paper reports: the number of event classes ``|C_L|``,
the number of traces, the number of control-flow variants, the number of
events per variant-compressed log ``|E|`` (events of the *unique*
variants), and the average trace length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eventlog.events import EventLog
from repro.eventlog.variants import variant_counts


@dataclass(frozen=True)
class LogStatistics:
    """Descriptive statistics of an event log (one Table III row)."""

    num_classes: int
    num_traces: int
    num_variants: int
    num_variant_events: int
    avg_trace_length: float
    num_events: int

    def as_row(self) -> dict[str, float]:
        """The statistics as a Table III row dictionary."""
        return {
            "|CL|": self.num_classes,
            "Traces": self.num_traces,
            "Variants": self.num_variants,
            "|E|": self.num_variant_events,
            "Avg |sigma|": round(self.avg_trace_length, 2),
        }


def describe(log: EventLog) -> LogStatistics:
    """Compute the Table III statistics for ``log``.

    ``|E|`` follows the paper's convention of counting the events of the
    variant-compressed log (the sum of variant lengths): e.g. the credit
    log [20] with 10,035 traces of length 15 but a single variant is
    reported with ``|E| = 14`` edges-worth of distinct behavior — the
    paper's ``|E|`` column is in the hundreds even for logs with millions
    of events, which only matches the variant-compressed reading.
    """
    counts = variant_counts(log)
    num_traces = len(log)
    total_events = log.event_count
    return LogStatistics(
        num_classes=len(log.classes),
        num_traces=num_traces,
        num_variants=len(counts),
        num_variant_events=sum(len(variant) for variant in counts),
        avg_trace_length=(total_events / num_traces) if num_traces else 0.0,
        num_events=total_events,
    )
