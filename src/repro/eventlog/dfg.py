"""Directly-follows graphs (DFGs) over event logs.

A DFG has the event classes of a log as vertices and an edge ``a -> b``
whenever some trace contains an event of class ``a`` immediately
followed by one of class ``b`` (paper §III-A).  Edges carry their
directly-follows frequency, which the mining substrate and the spectral
partitioning baseline both need.

Beyond plain construction, this module provides the group-level
neighborhood operations used by Algorithm 3 (exclusive-candidate
merging): pre/post sets of groups, the ``equal_pre_post`` equivalence
that identifies *behavioral alternatives* (Fig. 6), and the
``exclusive`` edge check.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.eventlog.events import EventLog


@dataclass
class DirectlyFollowsGraph:
    """A weighted directly-follows graph.

    Attributes
    ----------
    nodes:
        Event classes of the underlying log (including classes that
        never participate in any directly-follows pair, e.g. in
        single-event traces).
    edge_counts:
        Mapping ``(a, b) -> frequency`` of the directly-follows relation.
    start_counts / end_counts:
        How often each class starts / ends a trace (needed by process
        discovery).
    """

    nodes: frozenset[str]
    edge_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    start_counts: dict[str, int] = field(default_factory=dict)
    end_counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self._successor_map: dict[str, frozenset[str]] | None = None
        self._predecessor_map: dict[str, frozenset[str]] | None = None

    def _adjacency(self) -> tuple[dict, dict]:
        """Cached successor/predecessor maps.

        Built once from ``edge_counts`` (which is never mutated after
        construction — filtering returns a new graph), so repeated
        neighborhood queries avoid rescanning the full edge dict.
        """
        if self._successor_map is None:
            successors: dict[str, set[str]] = {}
            predecessors: dict[str, set[str]] = {}
            for source, target in self.edge_counts:
                successors.setdefault(source, set()).add(target)
                predecessors.setdefault(target, set()).add(source)
            self._successor_map = {
                node: frozenset(members) for node, members in successors.items()
            }
            self._predecessor_map = {
                node: frozenset(members) for node, members in predecessors.items()
            }
        return self._successor_map, self._predecessor_map

    # -- basic queries -------------------------------------------------

    @property
    def edges(self) -> set[tuple[str, str]]:
        """The set of directly-follows edges."""
        return set(self.edge_counts)

    def has_edge(self, source: str, target: str) -> bool:
        """Return ``True`` iff ``source`` is ever directly followed by ``target``."""
        return (source, target) in self.edge_counts

    def frequency(self, source: str, target: str) -> int:
        """Directly-follows frequency of ``(source, target)`` (0 if absent)."""
        return self.edge_counts.get((source, target), 0)

    def successors(self, node: str) -> frozenset[str]:
        """Classes that ever directly follow ``node``."""
        return self._adjacency()[0].get(node, frozenset())

    def predecessors(self, node: str) -> frozenset[str]:
        """Classes that ``node`` ever directly follows."""
        return self._adjacency()[1].get(node, frozenset())

    # -- group-level neighborhoods (Algorithm 3) ------------------------

    def pre(self, group: Iterable[str]) -> frozenset[str]:
        """Preset of a group: external predecessors of its members."""
        members = frozenset(group)
        preset: set[str] = set()
        for node in members:
            preset.update(self.predecessors(node))
        return frozenset(preset - members)

    def post(self, group: Iterable[str]) -> frozenset[str]:
        """Postset of a group: external successors of its members."""
        members = frozenset(group)
        postset: set[str] = set()
        for node in members:
            postset.update(self.successors(node))
        return frozenset(postset - members)

    def exclusive(self, group_a: Iterable[str], group_b: Iterable[str]) -> bool:
        """Return ``True`` iff no DFG edge connects ``group_a`` and ``group_b``.

        This is the paper's efficient exclusiveness check of Alg. 3
        line 11: two groups are treated as exclusive when the DFG has
        no edge from one to the other in either direction.
        """
        members_a = frozenset(group_a)
        members_b = frozenset(group_b)
        if members_a & members_b:
            return False
        for a in members_a:
            for b in members_b:
                if (a, b) in self.edge_counts or (b, a) in self.edge_counts:
                    return False
        return True

    def equal_pre_post(
        self, group: Iterable[str], candidates: Iterable[frozenset[str]]
    ) -> list[frozenset[str]]:
        """Groups among ``candidates`` sharing ``group``'s pre- and postsets.

        Two groups with identical presets and postsets are *behavioral
        alternatives* (Fig. 6): merging them loses no behavioral
        information.  The comparison excludes the groups' own members,
        so e.g. ``{ckc}`` and ``{ckt}`` match when both are preceded by
        ``{rcp}`` and followed by ``{acc, rej}``.
        """
        group = frozenset(group)
        reference = (self.pre(group), self.post(group))
        matches = []
        for other in candidates:
            other = frozenset(other)
            if other == group:
                continue
            if (self.pre(other), self.post(other)) == reference:
                matches.append(other)
        return matches

    # -- filtered views --------------------------------------------------

    def filtered(self, keep_fraction: float) -> "DirectlyFollowsGraph":
        """Return a copy keeping only the ``keep_fraction`` most frequent edges.

        An 80/20 DFG (Fig. 1 / Fig. 8) is ``filtered(0.8)``.  Ties are
        broken deterministically by edge name.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        ranked = sorted(
            self.edge_counts.items(), key=lambda item: (-item[1], item[0])
        )
        kept = ranked[: max(1, round(len(ranked) * keep_fraction))] if ranked else []
        return DirectlyFollowsGraph(
            nodes=self.nodes,
            edge_counts=dict(kept),
            start_counts=dict(self.start_counts),
            end_counts=dict(self.end_counts),
        )

    def __repr__(self) -> str:
        return f"DirectlyFollowsGraph({len(self.nodes)} nodes, {len(self.edge_counts)} edges)"


def compute_dfg(log: EventLog) -> DirectlyFollowsGraph:
    """Compute the directly-follows graph of ``log`` (paper §III-A)."""
    edge_counts: dict[tuple[str, str], int] = {}
    start_counts: dict[str, int] = {}
    end_counts: dict[str, int] = {}
    for trace in log:
        classes = trace.classes
        if not classes:
            continue
        start_counts[classes[0]] = start_counts.get(classes[0], 0) + 1
        end_counts[classes[-1]] = end_counts.get(classes[-1], 0) + 1
        for current_cls, next_cls in zip(classes, classes[1:]):
            edge = (current_cls, next_cls)
            edge_counts[edge] = edge_counts.get(edge, 0) + 1
    return DirectlyFollowsGraph(
        nodes=log.classes,
        edge_counts=edge_counts,
        start_counts=start_counts,
        end_counts=end_counts,
    )
