"""Mining substrate: discovery (DFG-filtering + alpha), complexity, replay."""

from repro.mining.alpha import alpha_miner, order_relations
from repro.mining.complexity import (
    ComplexityReport,
    complexity_report,
    control_flow_complexity,
)
from repro.mining.discovery import DiscoveryParameters, discover_model
from repro.mining.inductive import inductive_miner, tree_size
from repro.mining.model import ProcessModel, SplitKind
from repro.mining.petri import (
    PetriNet,
    Place,
    ReplayResult,
    petri_to_dot,
    token_replay,
)

__all__ = [
    "alpha_miner",
    "order_relations",
    "ComplexityReport",
    "complexity_report",
    "control_flow_complexity",
    "DiscoveryParameters",
    "discover_model",
    "inductive_miner",
    "tree_size",
    "ProcessModel",
    "SplitKind",
    "PetriNet",
    "Place",
    "ReplayResult",
    "petri_to_dot",
    "token_replay",
]
