"""Control-flow complexity metrics over discovered process models.

The paper's C.red measure uses an established complexity measure
(Reijers & Mendling); the canonical such metric is Cardoso's
**control-flow complexity (CFC)**: the sum, over all splits, of the
number of states the split can induce —

* XOR-split with ``n`` branches: ``n`` states,
* AND-split: ``1`` state,
* OR-split with ``n`` branches: ``2^n - 1`` states.

We additionally expose the **coefficient of network connectivity**
(CNC, edges per node) and model size, which together cover the metric
families the understandability literature relates to complexity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mining.model import ProcessModel, SplitKind

#: Cap for the exponential OR-split term to keep scores comparable.
_MAX_OR_BRANCHES = 16


def split_contribution(kind: SplitKind, branches: int) -> int:
    """CFC contribution of one split with ``branches`` outgoing edges."""
    if branches <= 1 or kind is SplitKind.NONE:
        return 0
    if kind is SplitKind.XOR:
        return branches
    if kind is SplitKind.AND:
        return 1
    # OR-split: 2^n - 1, capped for pathological fan-outs.
    return (1 << min(branches, _MAX_OR_BRANCHES)) - 1


def control_flow_complexity(model: ProcessModel) -> int:
    """Cardoso's CFC of ``model``: sum of split contributions."""
    total = 0
    for activity in model.activities:
        branches = len(model.successors(activity))
        total += split_contribution(model.split_of(activity), branches)
    return total


def coefficient_of_connectivity(model: ProcessModel) -> float:
    """CNC: edges per activity (0 for the degenerate empty model)."""
    if not model.activities:
        return 0.0
    return len(model.edges) / len(model.activities)


@dataclass(frozen=True)
class ComplexityReport:
    """All complexity readings of one model."""

    cfc: int
    size: int
    cnc: float
    num_edges: int
    num_activities: int


def complexity_report(model: ProcessModel) -> ComplexityReport:
    """Compute every supported complexity metric for ``model``."""
    return ComplexityReport(
        cfc=control_flow_complexity(model),
        size=model.size,
        cnc=coefficient_of_connectivity(model),
        num_edges=len(model.edges),
        num_activities=len(model.activities),
    )
