"""DFG-filtering process discovery (Split Miner stand-in).

The paper measures complexity reduction on models discovered with
Split Miner.  Split Miner's defining stages — frequency-based DFG
filtering followed by concurrency detection that turns directly-follows
pairs into parallel relations — determine the gateway structure that
complexity metrics measure; this module implements those stages:

1. **Concurrency detection** (Split Miner §4.1): classes ``a`` and
   ``b`` are concurrent when both ``a > b`` and ``b > a`` occur, neither
   forms a length-two loop dominance, and their frequencies are
   balanced: ``|f(a,b) - f(b,a)| / (f(a,b) + f(b,a)) < epsilon``.
   Concurrent pairs' edges are removed from the control-flow graph.
2. **Edge filtering** (Split Miner §4.2, simplified): every node keeps
   its most frequent incoming and outgoing edge; additionally all edges
   whose frequency reaches the ``eta`` percentile of those
   must-keep frequencies are retained.
3. **Split/join classification**: an activity with several outgoing
   edges becomes an AND-split when all successor pairs are concurrent,
   an XOR-split when none are, and an OR-split otherwise (same for
   joins over predecessors).

The result is deterministic for a given log and parameterization, which
is all the C.red measure requires (the same algorithm is applied to the
original and the abstracted log).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eventlog.dfg import DirectlyFollowsGraph, compute_dfg
from repro.eventlog.events import EventLog
from repro.exceptions import DiscoveryError
from repro.mining.model import ProcessModel, SplitKind


@dataclass(frozen=True)
class DiscoveryParameters:
    """Tuning knobs of the discovery algorithm.

    Attributes
    ----------
    epsilon:
        Concurrency balance threshold in ``[0, 1]``; higher detects
        more concurrency (Split Miner's default is 1.0, meaning any
        mutual directly-follows pair with no loop evidence counts).
    eta:
        Frequency percentile in ``[0, 1]`` for retaining extra edges
        beyond each node's most frequent ones (0 keeps everything).
    """

    epsilon: float = 0.3
    eta: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.epsilon <= 1.0:
            raise DiscoveryError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if not 0.0 <= self.eta <= 1.0:
            raise DiscoveryError(f"eta must be in [0, 1], got {self.eta}")


def _detect_concurrency(
    dfg: DirectlyFollowsGraph, epsilon: float
) -> frozenset[frozenset[str]]:
    """Split Miner-style concurrency: mutual, balanced directly-follows."""
    concurrent: set[frozenset[str]] = set()
    for (a, b), forward in dfg.edge_counts.items():
        if a == b:
            continue
        backward = dfg.frequency(b, a)
        if backward == 0:
            continue
        balance = abs(forward - backward) / (forward + backward)
        if balance < epsilon:
            concurrent.add(frozenset({a, b}))
    return frozenset(concurrent)


def _filter_edges(
    dfg: DirectlyFollowsGraph,
    concurrency: frozenset[frozenset[str]],
    eta: float,
) -> dict[tuple[str, str], int]:
    """Drop concurrent pairs' edges, then keep the most frequent structure."""
    sequential = {
        edge: count
        for edge, count in dfg.edge_counts.items()
        if frozenset(edge) not in concurrency
    }
    if not sequential:
        return {}
    # Must-keep: each node's most frequent incoming and outgoing edge.
    keep: set[tuple[str, str]] = set()
    for node in dfg.nodes:
        outgoing = [(edge, count) for edge, count in sequential.items() if edge[0] == node]
        if outgoing:
            keep.add(max(outgoing, key=lambda item: (item[1], item[0]))[0])
        incoming = [(edge, count) for edge, count in sequential.items() if edge[1] == node]
        if incoming:
            keep.add(max(incoming, key=lambda item: (item[1], item[0]))[0])
    if eta > 0.0 and keep:
        kept_frequencies = sorted(sequential[edge] for edge in keep)
        position = min(
            len(kept_frequencies) - 1, int(eta * (len(kept_frequencies) - 1))
        )
        threshold = kept_frequencies[position]
        for edge, count in sequential.items():
            if count >= threshold:
                keep.add(edge)
    else:
        keep = set(sequential)
    return {edge: sequential[edge] for edge in keep}


def _classify(
    successors: frozenset[str], concurrency: frozenset[frozenset[str]]
) -> SplitKind:
    if len(successors) <= 1:
        return SplitKind.NONE
    pairs = [
        frozenset({a, b})
        for a in successors
        for b in successors
        if a < b
    ]
    concurrent_pairs = sum(1 for pair in pairs if pair in concurrency)
    if concurrent_pairs == len(pairs):
        return SplitKind.AND
    if concurrent_pairs == 0:
        return SplitKind.XOR
    return SplitKind.OR


def discover_model(
    log: EventLog,
    parameters: DiscoveryParameters | None = None,
    dfg: DirectlyFollowsGraph | None = None,
) -> ProcessModel:
    """Discover a process model from ``log``.

    Raises :class:`DiscoveryError` for empty logs.
    """
    if len(log) == 0:
        raise DiscoveryError("cannot discover a model from an empty log")
    parameters = parameters or DiscoveryParameters()
    graph = dfg or compute_dfg(log)

    concurrency = _detect_concurrency(graph, parameters.epsilon)
    edges = _filter_edges(graph, concurrency, parameters.eta)

    splits: dict[str, SplitKind] = {}
    joins: dict[str, SplitKind] = {}
    successor_map: dict[str, set[str]] = {node: set() for node in graph.nodes}
    predecessor_map: dict[str, set[str]] = {node: set() for node in graph.nodes}
    for a, b in edges:
        successor_map[a].add(b)
        predecessor_map[b].add(a)
    for node in graph.nodes:
        splits[node] = _classify(frozenset(successor_map[node]), concurrency)
        joins[node] = _classify(frozenset(predecessor_map[node]), concurrency)

    return ProcessModel(
        activities=graph.nodes,
        edges=edges,
        splits=splits,
        joins=joins,
        start_activities=frozenset(graph.start_counts),
        end_activities=frozenset(graph.end_counts),
        concurrency=concurrency,
    )
