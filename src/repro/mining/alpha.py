"""The alpha miner: discovering workflow nets from event logs.

The classic alpha algorithm (van der Aalst et al.) derives a Petri net
from the log's directly-follows relation:

1. order relations over classes: ``a -> b`` (causality: ``a > b`` and
   not ``b > a``), ``a # b`` (never follow each other), ``a || b``
   (both directions);
2. find all maximal pairs ``(A, B)`` with every ``a ∈ A``, ``b ∈ B``
   causally related and ``A``/``B`` internally ``#``-related;
3. one place per maximal pair, plus a source place before the start
   classes and a sink place after the end classes.

The alpha miner famously produces clean, structured nets on
well-behaved logs and degenerate ones on spaghetti logs — which is
precisely the before/after contrast log abstraction is meant to create,
making it a natural second discovery substrate next to the
DFG-filtering miner.
"""

from __future__ import annotations

import itertools

from repro.eventlog.dfg import compute_dfg
from repro.eventlog.events import EventLog
from repro.exceptions import DiscoveryError
from repro.mining.petri import PetriNet, Place


def order_relations(
    log: EventLog,
) -> tuple[set[tuple[str, str]], set[tuple[str, str]], set[frozenset[str]]]:
    """The alpha relations: causality (->), parallel (||) as pairs, and
    the directly-follows base.

    Returns ``(causal, follows, parallel)`` where ``causal`` and
    ``follows`` are directed pairs and ``parallel`` unordered pairs.
    """
    dfg = compute_dfg(log)
    follows = set(dfg.edge_counts)
    causal = {
        (a, b) for (a, b) in follows if (b, a) not in follows
    }
    parallel = {
        frozenset({a, b})
        for (a, b) in follows
        if (b, a) in follows and a != b
    }
    return causal, follows, parallel


def _pairwise_choice(classes: frozenset[str], follows: set[tuple[str, str]]) -> bool:
    """All distinct members never directly follow each other (``#``)."""
    for a, b in itertools.combinations(classes, 2):
        if (a, b) in follows or (b, a) in follows:
            return False
    return True


def alpha_miner(log: EventLog, max_pair_side: int = 3) -> PetriNet:
    """Discover a workflow net from ``log`` with the alpha algorithm.

    ``max_pair_side`` bounds the size of the A/B sets considered when
    building places (the classic algorithm enumerates all subsets; the
    bound keeps discovery polynomial on wide logs while rarely mattering
    in practice — published alpha implementations apply similar caps).
    """
    if len(log) == 0:
        raise DiscoveryError("cannot discover a net from an empty log")
    causal, follows, _parallel = order_relations(log)
    dfg = compute_dfg(log)
    classes = sorted(log.classes)

    # Candidate (A, B) pairs: start from causal singletons, grow sides.
    pairs: set[tuple[frozenset[str], frozenset[str]]] = {
        (frozenset({a}), frozenset({b})) for (a, b) in causal
    }
    grown = True
    while grown:
        grown = False
        for a_side, b_side in list(pairs):
            if len(a_side) < max_pair_side:
                for cls in classes:
                    if cls in a_side or cls in b_side:
                        continue
                    candidate = a_side | {cls}
                    if not _pairwise_choice(candidate, follows):
                        continue
                    if all((a, b) in causal for a in candidate for b in b_side):
                        if (candidate, b_side) not in pairs:
                            pairs.add((candidate, b_side))
                            grown = True
            if len(b_side) < max_pair_side:
                for cls in classes:
                    if cls in a_side or cls in b_side:
                        continue
                    candidate = b_side | {cls}
                    if not _pairwise_choice(candidate, follows):
                        continue
                    if all((a, b) in causal for a in a_side for b in candidate):
                        if (a_side, candidate) not in pairs:
                            pairs.add((a_side, candidate))
                            grown = True

    # Keep only maximal pairs.
    maximal = set(pairs)
    for pair in pairs:
        a_side, b_side = pair
        for other_a, other_b in pairs:
            if pair != (other_a, other_b) and a_side <= other_a and b_side <= other_b:
                maximal.discard(pair)
                break

    # Build the net.
    source = Place("start")
    sink = Place("end")
    places = {source, sink}
    inputs: dict[str, set[Place]] = {cls: set() for cls in classes}
    outputs: dict[str, set[Place]] = {cls: set() for cls in classes}

    for a_side, b_side in sorted(
        maximal, key=lambda pair: (sorted(pair[0]), sorted(pair[1]))
    ):
        name = "p_" + "+".join(sorted(a_side)) + "__" + "+".join(sorted(b_side))
        place = Place(name)
        places.add(place)
        for a in a_side:
            outputs[a].add(place)
        for b in b_side:
            inputs[b].add(place)

    for start in dfg.start_counts:
        inputs[start].add(source)
    for end in dfg.end_counts:
        outputs[end].add(sink)

    return PetriNet(
        transitions=frozenset(classes),
        places=frozenset(places),
        inputs={cls: frozenset(ps) for cls, ps in inputs.items()},
        outputs={cls: frozenset(ps) for cls, ps in outputs.items()},
        initial_place=source,
        final_place=sink,
    )
