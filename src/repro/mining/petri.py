"""Petri nets and token-based replay.

The paper's motivation is that abstracted logs yield *more structured
models* under process discovery.  Beyond the DFG-filtering miner used
for the complexity measure, this substrate provides the classic
workflow-net representation: places, transitions, arcs, marking
semantics, and token replay — enough to discover nets with the alpha
miner (:mod:`repro.mining.alpha`) and to quantify how well a model
fits a log (replay fitness).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.eventlog.events import EventLog
from repro.exceptions import DiscoveryError


@dataclass(frozen=True)
class Place:
    """A Petri-net place, identified by name."""

    name: str

    def __repr__(self) -> str:
        return f"({self.name})"


@dataclass
class PetriNet:
    """A labeled Petri net with a designated initial and final marking.

    Transitions are event-class labels (no silent transitions — the
    alpha miner does not produce them).  Arcs connect places to
    transitions and transitions to places.
    """

    transitions: frozenset[str]
    places: frozenset[Place] = frozenset()
    inputs: dict[str, frozenset[Place]] = field(default_factory=dict)
    outputs: dict[str, frozenset[Place]] = field(default_factory=dict)
    initial_place: Place = Place("start")
    final_place: Place = Place("end")

    def __post_init__(self):
        for transition in self.transitions:
            self.inputs.setdefault(transition, frozenset())
            self.outputs.setdefault(transition, frozenset())

    @property
    def num_arcs(self) -> int:
        """Total number of arcs in the net."""
        return sum(len(places) for places in self.inputs.values()) + sum(
            len(places) for places in self.outputs.values()
        )

    @property
    def size(self) -> int:
        """Net size: places + transitions (a model-complexity ingredient)."""
        return len(self.places) + len(self.transitions)

    def initial_marking(self) -> Counter:
        """One token on the initial place."""
        return Counter({self.initial_place: 1})

    def is_enabled(self, transition: str, marking: Counter) -> bool:
        """Whether ``transition`` can fire under ``marking``."""
        return all(marking[place] >= 1 for place in self.inputs[transition])

    def fire(self, transition: str, marking: Counter) -> Counter:
        """Fire ``transition``; raises when not enabled."""
        if not self.is_enabled(transition, marking):
            missing = [p.name for p in self.inputs[transition] if marking[p] < 1]
            raise DiscoveryError(
                f"transition {transition!r} not enabled; missing tokens on {missing}"
            )
        updated = Counter(marking)
        for place in self.inputs[transition]:
            updated[place] -= 1
        for place in self.outputs[transition]:
            updated[place] += 1
        return +updated  # drop zero/negative entries

    def __repr__(self) -> str:
        return (
            f"PetriNet({len(self.places)} places, {len(self.transitions)} "
            f"transitions, {self.num_arcs} arcs)"
        )


@dataclass(frozen=True)
class ReplayResult:
    """Token-replay fitness of a log on a net (Rozinat & van der Aalst).

    fitness = 1/2 (1 - missing/consumed) + 1/2 (1 - remaining/produced)
    """

    fitness: float
    produced: int
    consumed: int
    missing: int
    remaining: int
    fitting_traces: int
    total_traces: int


def token_replay(net: PetriNet, log: EventLog) -> ReplayResult:
    """Replay every trace of ``log`` on ``net`` with token counting.

    Events whose class is not a transition of the net are skipped (they
    cannot be replayed at all); a trace is *fitting* when it replays
    with no missing tokens and the final marking is exactly one token
    on the final place.
    """
    produced = consumed = missing = remaining = 0
    fitting = 0
    for trace in log:
        marking = net.initial_marking()
        produced_here = 1  # initial token
        consumed_here = 0
        missing_here = 0
        for event in trace:
            transition = event.event_class
            if transition not in net.transitions:
                continue
            for place in net.inputs[transition]:
                if marking[place] >= 1:
                    marking[place] -= 1
                else:
                    missing_here += 1  # conjure the missing token
                consumed_here += 1
            for place in net.outputs[transition]:
                marking[place] += 1
                produced_here += 1
        # Consume the final token.
        consumed_here += 1
        if marking[net.final_place] >= 1:
            marking[net.final_place] -= 1
        else:
            missing_here += 1
        remaining_here = sum((+marking).values())
        if missing_here == 0 and remaining_here == 0:
            fitting += 1
        produced += produced_here
        consumed += consumed_here
        missing += missing_here
        remaining += remaining_here

    if consumed == 0 or produced == 0:
        fitness = 0.0
    else:
        fitness = 0.5 * (1 - missing / consumed) + 0.5 * (1 - remaining / produced)
    return ReplayResult(
        fitness=fitness,
        produced=produced,
        consumed=consumed,
        missing=missing,
        remaining=remaining,
        fitting_traces=fitting,
        total_traces=len(log),
    )


def petri_to_dot(net: PetriNet, title: str = "PetriNet") -> str:
    """Render a Petri net as Graphviz DOT."""
    lines = [f'digraph "{title}" {{', "  rankdir=LR;"]
    for place in sorted(net.places, key=lambda p: p.name):
        lines.append(f'  "p:{place.name}" [label="", shape=circle];')
    for transition in sorted(net.transitions):
        lines.append(f'  "t:{transition}" [label="{transition}", shape=box];')
    for transition in sorted(net.transitions):
        for place in sorted(net.inputs[transition], key=lambda p: p.name):
            lines.append(f'  "p:{place.name}" -> "t:{transition}";')
        for place in sorted(net.outputs[transition], key=lambda p: p.name):
            lines.append(f'  "t:{transition}" -> "p:{place.name}";')
    lines.append("}")
    return "\n".join(lines)
